"""Counter folding: ``merge`` correctness and thread isolation."""

import threading

from repro.storage.database import Database
from repro.storage.stats import COUNTER_FIELDS, CostCounters, ThreadLocalCounters
from repro.par.runtime import ensure_thread_local_counters


def test_merge_accepts_another_block():
    a = CostCounters(inserts=3, tuples_scanned=10)
    b = CostCounters(inserts=2, index_lookups=7)
    a.merge(b)
    assert a.inserts == 5
    assert a.tuples_scanned == 10
    assert a.index_lookups == 7
    # The source block is untouched.
    assert b.inserts == 2


def test_merge_accepts_tuple_and_dict_snapshots():
    a = CostCounters()
    a.merge(CostCounters(inserts=4, deletes=1).as_tuple())
    a.merge({"inserts": 1, "dedup_removed": 2})
    assert a.inserts == 5
    assert a.deletes == 1
    assert a.dedup_removed == 2


def test_negative_merge_withdraws():
    # The coordinator withdraws a worker's task delta and re-deposits it;
    # a negated snapshot must cancel exactly.
    a = CostCounters(inserts=9, tuples_scanned=3)
    delta = CostCounters(inserts=9, tuples_scanned=3).as_tuple()
    a.merge(tuple(-d for d in delta))
    assert a.as_tuple() == CostCounters().as_tuple()


def test_concurrent_merges_lose_nothing():
    """Eight threads each fold many deltas into one shared facade.

    ``ThreadLocalCounters.merge`` lands on the calling thread's private
    block, so the per-thread folds never race; ``aggregate`` (which takes
    the facade's lock to snapshot the block list) must see every
    increment.
    """
    shared = ThreadLocalCounters()
    threads_n, merges_n = 8, 500
    delta = CostCounters(inserts=1, tuples_scanned=2, index_lookups=3).as_tuple()
    barrier = threading.Barrier(threads_n)

    def worker():
        barrier.wait()
        for _ in range(merges_n):
            shared.merge(delta)

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = shared.aggregate()
    assert total.inserts == threads_n * merges_n
    assert total.tuples_scanned == 2 * threads_n * merges_n
    assert total.index_lookups == 3 * threads_n * merges_n


def test_ensure_thread_local_counters_repoints_everything():
    db = Database()
    db.facts("edge", [(1, 2), (2, 3)])
    before = db.counters.as_tuple()
    assert any(before)  # the inserts counted
    wrapper = ensure_thread_local_counters(db)
    assert isinstance(db.counters, ThreadLocalCounters)
    # Previous totals seeded the calling thread's block.
    assert db.counters.as_tuple() == before
    # Existing relations count into the facade from now on.
    relation = db.get("edge", 2)
    assert relation.counters is wrapper
    db.facts("edge", [(3, 4)])
    assert db.counters.inserts == before[COUNTER_FIELDS.index("inserts")] + 1
    # Idempotent: a second call returns the same facade.
    assert ensure_thread_local_counters(db) is wrapper


def test_parallel_counter_fields_exist():
    assert "parallel_joins" in COUNTER_FIELDS
    assert "parallel_tasks" in COUNTER_FIELDS
