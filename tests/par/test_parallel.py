"""Differential tests: ``parallel_mode="partition"`` vs serial evaluation.

The partition-parallel layer promises *exactness*, not just set equality:
workers execute the same probes a serial run executes, so every workload
here must agree on result rows AND on every cost counter except the
``parallel_*`` pair (which exists only to say that fan-out happened).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.par import ParallelContext
from repro.storage.stats import COUNTER_FIELDS

# Counter positions that must match serial exactly (everything except the
# parallel-only bookkeeping pair).
_CORE = tuple(
    i for i, name in enumerate(COUNTER_FIELDS) if not name.startswith("parallel_")
)

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

UNREACHABLE = PATH + """
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
unreachable(X, Y) :- node(X) & node(Y) & !path(X, Y).
"""

DEGREE = """
deg(X, N) :- edge(X, _) & group_by(X) & N = count(X).
"""


def make_parallel(source="", workers=4, min_partition_rows=2, **kwargs):
    """A system whose parallel floor is low enough for test-sized data."""
    context = ParallelContext(workers=workers, min_partition_rows=min_partition_rows)
    system = GlueNailSystem(parallel=context, **kwargs)
    if source:
        system.load(source)
    return system


def make_serial(source="", **kwargs):
    system = GlueNailSystem(**kwargs)
    if source:
        system.load(source)
    return system


def core_counters(system):
    snapshot = system.counters.as_tuple()
    return tuple(snapshot[i] for i in _CORE)


def random_edges(nodes, edges, seed):
    rng = random.Random(seed)
    out = set()
    while len(out) < edges:
        out.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(out)


def run_pair(source, facts, out_preds, script=False, **kwargs):
    """Evaluate a workload serially and partition-parallel; assert both
    row sets and core counters agree; return the parallel system."""
    results = {}
    systems = {}
    for mode, factory in (("serial", make_serial), ("parallel", make_parallel)):
        system = factory(source, **kwargs)
        for name, rows in facts.items():
            system.facts(name, rows)
        if script:
            system.run_script()
        results[mode] = {
            (name, arity): sorted(
                rows_to_python(system.rows(name, arity).rows)
            )
            for name, arity in out_preds
        }
        systems[mode] = system
    assert results["parallel"] == results["serial"]
    assert core_counters(systems["parallel"]) == core_counters(systems["serial"])
    systems["parallel"].close()
    return systems["parallel"], results["parallel"]


# ------------------------------------------------------------------ #
# NAIL! fixpoints
# ------------------------------------------------------------------ #


class TestNailDifferential:
    def test_chain_closure(self):
        system, results = run_pair(
            PATH, {"edge": [(i, i + 1) for i in range(200)]}, [("path", 2)]
        )
        assert len(results[("path", 2)]) == 200 * 201 // 2
        # The differential is not vacuous: fan-out actually happened.
        assert system.counters.parallel_joins > 0

    def test_random_graph_closure(self):
        system, _ = run_pair(
            PATH, {"edge": random_edges(60, 300, seed=11)}, [("path", 2)]
        )
        assert system.counters.parallel_joins > 0

    def test_negation_stratum(self):
        system, results = run_pair(
            UNREACHABLE,
            {"edge": random_edges(40, 40, seed=5)},
            [("path", 2), ("unreachable", 2)],
        )
        assert results[("unreachable", 2)]
        assert system.counters.parallel_joins > 0

    def test_aggregates_fall_back_to_serial(self):
        system, results = run_pair(
            DEGREE, {"edge": random_edges(40, 400, seed=7)}, [("deg", 2)]
        )
        assert results[("deg", 2)]

    def test_incremental_repair(self):
        serial = make_serial(PATH)
        parallel = make_parallel(PATH)
        base = random_edges(40, 150, seed=13)
        extra = [(i + 40, i + 41) for i in range(80)]
        for system in (serial, parallel):
            system.facts("edge", base)
            system.rows("path", 2)  # materialize, then repair after deltas
            system.facts("edge", extra)
        first = sorted(rows_to_python(serial.rows("path", 2).rows))
        second = sorted(rows_to_python(parallel.rows("path", 2).rows))
        assert first == second
        assert core_counters(parallel) == core_counters(serial)
        assert parallel.counters.idb_delta_repairs > 0
        parallel.close()

    @settings(deadline=None, max_examples=20)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            min_size=0,
            max_size=40,
        ),
        with_negation=st.booleans(),
        workers=st.sampled_from([2, 3, 4, 8]),
    )
    def test_property_differential(self, edges, with_negation, workers):
        source = UNREACHABLE if with_negation else PATH
        preds = [("path", 2)] + ([("unreachable", 2)] if with_negation else [])
        run_pair(source, {"edge": sorted(set(edges))}, preds, workers=workers)


# ------------------------------------------------------------------ #
# Glue statement joins
# ------------------------------------------------------------------ #


class TestGlueDifferential:
    def test_two_way_statement_join(self):
        system, results = run_pair(
            "out(X, Z) := r(X, Y) & s(Y, Z).",
            {"r": random_edges(25, 200, seed=1), "s": random_edges(25, 200, seed=2)},
            [("out", 2)],
            script=True,
        )
        assert results[("out", 2)]
        assert system.counters.parallel_joins > 0

    def test_statement_negation(self):
        run_pair(
            "no_link(X, Y) := node(X) & node(Y) & !edge(X, Y).",
            {
                "node": [(i,) for i in range(25)],
                "edge": random_edges(25, 100, seed=4),
            },
            [("no_link", 2)],
            script=True,
        )

    def test_keyed_update_order_is_preserved(self):
        # `+=[K]` keeps the *last* writer per key; the chunked split is
        # order-preserving, so the parallel winner must equal the serial
        # winner even with many colliding keys.
        rows = [(i % 10, i) for i in range(500)]
        run_pair(
            "best(K, V) +=[K] src(K, V).",
            {"src": rows},
            [("best", 2)],
            script=True,
        )

    @settings(deadline=None, max_examples=15)
    @given(
        r=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
        s=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
    )
    def test_property_statement_join(self, r, s):
        run_pair(
            "out(X, Z) := r(X, Y) & s(Y, Z).",
            {"r": sorted(set(r)), "s": sorted(set(s))},
            [("out", 2)],
            script=True,
        )


# ------------------------------------------------------------------ #
# observability
# ------------------------------------------------------------------ #


class TestTracing:
    def test_exchange_and_partition_events(self):
        system = make_parallel(PATH, trace=True)
        system.facts("edge", [(i, i + 1) for i in range(150)])
        result = system.rows("path", 2)
        kinds = {event.kind for event in result.trace}
        assert "exchange" in kinds
        assert "parallel_partition" in kinds
        regions = [e for e in result.trace if e.kind == "parallel_partition"]
        for event in regions:
            assert event.attrs["partitions"] >= 2
            assert len(event.attrs["worker_touches"]) == event.attrs["partitions"]
        exchanges = [e for e in result.trace if e.kind == "exchange"]
        assert all(e.attrs["strategy"] in ("shuffle", "broadcast") for e in exchanges)
        system.close()

    def test_explain_analyze_renders_parallel_table(self):
        system = make_parallel(PATH)
        system.facts("edge", [(i, i + 1) for i in range(150)])
        report = system.explain_analyze("path(0, Y)?")
        assert "Parallel regions" in report
        system.close()


# ------------------------------------------------------------------ #
# failure and shutdown behavior
# ------------------------------------------------------------------ #


class TestRobustness:
    def test_worker_exception_propagates_and_pool_survives(self):
        context = ParallelContext(workers=3, min_partition_rows=1)

        def boom():
            raise ValueError("worker exploded")

        with pytest.raises(ValueError, match="worker exploded"):
            context.run_region([lambda: 1, boom, lambda: 3])
        # The pool is still usable for the next region...
        assert context.run_region([lambda: 10, lambda: 20]) == [10, 20]
        # ...and a real evaluation on top of the same context still works.
        system = GlueNailSystem(parallel=context)
        system.load(PATH)
        system.facts("edge", [(i, i + 1) for i in range(50)])
        assert len(system.rows("path", 2).rows) == 50 * 51 // 2
        system.close()

    def test_close_falls_back_to_serial(self):
        # An owned pool (parallel_mode=...) is shut down by close().
        system = GlueNailSystem(parallel_mode="partition", workers=4)
        system.load(PATH)
        system.facts("edge", [(i, i + 1) for i in range(100)])
        system.close()  # shuts the pool down
        assert not system.parallel.active
        # Queries still answer (serial fallback), with correct results.
        assert len(system.rows("path", 2).rows) == 100 * 101 // 2

    def test_no_fanout_inside_a_worker(self):
        context = ParallelContext(workers=2, min_partition_rows=1)
        inside = context.run_region([lambda: context.active, lambda: context.active])
        assert inside == [False, False]
        assert context.active  # back on the coordinator
        context.shutdown()

    def test_set_workers_switches_modes(self):
        system = GlueNailSystem()
        assert system.parallel is None
        system.set_workers(4)
        assert system.parallel is not None and system.parallel.workers == 4
        system.load(PATH)
        system.facts("edge", [(i, i + 1) for i in range(150)])
        assert len(system.rows("path", 2).rows) == 150 * 151 // 2
        system.set_workers(1)
        assert system.parallel is None and system.parallel_mode == "serial"
        assert len(system.rows("path", 2).rows) == 150 * 151 // 2
