"""The worker pool: ordering, error propagation, clean shutdown."""

import threading
import time

import pytest

from repro.par.pool import WorkerPool


def test_results_come_back_in_task_order():
    with WorkerPool(4) as pool:
        results = pool.run([(lambda i=i: i * i) for i in range(20)])
    assert results == [i * i for i in range(20)]


def test_single_task_runs_inline():
    with WorkerPool(4) as pool:
        thread_ids = []
        pool.run([lambda: thread_ids.append(threading.get_ident())])
    assert thread_ids == [threading.get_ident()]


def test_one_worker_runs_inline():
    pool = WorkerPool(1)
    thread_ids = []
    pool.run([lambda: thread_ids.append(threading.get_ident())] * 3)
    assert set(thread_ids) == {threading.get_ident()}
    pool.shutdown()


def test_tasks_actually_fan_out():
    # With enough slow tasks, more than one pool thread must get involved.
    barrier = threading.Barrier(2, timeout=5)
    with WorkerPool(2) as pool:
        results = pool.run([lambda: barrier.wait() >= 0] * 2)
    assert results == [True, True]


def test_first_exception_in_task_order_wins():
    ran = []

    def ok(i):
        ran.append(i)
        return i

    def boom(message):
        raise ValueError(message)

    pool = WorkerPool(3)
    with pytest.raises(ValueError, match="first"):
        pool.run([
            lambda: ok(0),
            lambda: boom("first"),
            lambda: ok(2),
            lambda: boom("second"),
        ])
    # Every task ran to completion before the error was re-raised: no
    # half-finished partitions left behind.
    assert sorted(ran) == [0, 2]
    pool.shutdown()


def test_pool_is_reusable_after_a_failure():
    pool = WorkerPool(2)
    with pytest.raises(RuntimeError):
        pool.run([lambda: (_ for _ in ()).throw(RuntimeError("x"))])
    assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
    pool.shutdown()


def test_shutdown_is_clean_and_idempotent():
    pool = WorkerPool(2)
    assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
    assert not pool.closed
    pool.shutdown()
    assert pool.closed
    pool.shutdown()  # second call is a no-op
    assert pool.closed


def test_worker_threads_exit_after_shutdown():
    pool = WorkerPool(2, name="pool-exit-test")
    pool.run([lambda: time.sleep(0.01)] * 4)
    pool.shutdown(wait=True)
    assert not [t for t in threading.enumerate() if t.name.startswith("pool-exit-test")]
