"""Partitioning and exchange policy."""

from repro.par.exchange import BROADCAST_MAX_ROWS, choose_exchange
from repro.par.partition import Partitioner, partition_count
from repro.storage.database import Database


def test_chunk_split_preserves_order_and_balance():
    p = Partitioner(3)
    parts = p.chunk_split(list(range(10)))
    assert [len(c) for c in parts] == [4, 3, 3]
    assert [x for chunk in parts for x in chunk] == list(range(10))


def test_chunk_split_fewer_items_than_parts():
    parts = Partitioner(4).chunk_split([1, 2])
    assert [x for chunk in parts for x in chunk] == [1, 2]
    assert all(len(c) <= 1 for c in parts)


def test_hash_split_is_deterministic_and_complete():
    p = Partitioner(4)
    items = [(i, i % 7) for i in range(100)]
    parts = p.hash_split(items, key_fn=lambda item: item[1])
    assert sorted(x for chunk in parts for x in chunk) == sorted(items)
    assert parts == p.hash_split(items, key_fn=lambda item: item[1])
    # Equal keys land in the same partition (the co-location invariant
    # that makes shuffled probes see exactly their partition's buckets).
    for chunk in parts:
        keys_here = {item[1] for item in chunk}
        for other in parts:
            if other is not chunk:
                assert keys_here.isdisjoint({item[1] for item in other})


def test_hash_split_matches_bucket_assignment():
    """``hash_split`` on the probe key and ``bucket_sizes`` on the stored
    index use the same ``hash(key) % parts`` rule, so probe rows and their
    matching bucket rows land in the same partition."""
    db = Database()
    rows = [(i % 5, i) for i in range(50)]
    db.facts("r", rows)
    relation = db.get("r", 2)
    index = relation.build_index((0,))
    p = Partitioner(3)
    sizes = p.bucket_sizes(index.buckets_view())
    assert sum(sizes) == len(rows)
    # Splitting the stored rows themselves on the key columns must land
    # every row in the partition its bucket was assigned to.
    parts = p.hash_split(relation.rows(), key_fn=lambda row: (row[0],))
    assert [len(c) for c in parts] == sizes


def test_partition_count_respects_floor():
    assert partition_count(10, workers=4, min_partition_rows=64) == 1
    assert partition_count(128, workers=4, min_partition_rows=64) == 2
    assert partition_count(10_000, workers=4, min_partition_rows=64) == 4
    assert partition_count(0, workers=4, min_partition_rows=64) == 1


def test_choose_exchange_broadcasts_small_sources():
    db = Database()
    db.facts("small", [(i,) for i in range(10)])
    source_rel = db.get("small", 1)

    class Source:
        relation = source_rel

        def __len__(self):
            return len(source_rel)

    decision = choose_exchange(Source(), probe_cols=(0,))
    assert decision.strategy == "broadcast"
    assert decision.source_rows == 10


def test_choose_exchange_shuffles_large_sources():
    db = Database()
    db.facts("big", [(i,) for i in range(BROADCAST_MAX_ROWS + 1)])
    source_rel = db.get("big", 1)

    class Source:
        relation = source_rel

        def __len__(self):
            return len(source_rel)

    assert choose_exchange(Source(), probe_cols=(0,)).strategy == "shuffle"
    # Without a probe key there is nothing to shuffle on.
    assert choose_exchange(Source(), probe_cols=()).strategy == "broadcast"
