"""Tests for the shared cost-based planner (``repro.opt``).

Covers the public ``optimize()`` facade, the differential guarantee that
``order_mode="cost"`` and ``order_mode="program"`` agree on results, the
cost collapse on adversarially ordered bodies, the unified join-event
schema both engines emit, the consistent statistics snapshot, and the
deprecated re-export shims left in ``repro.nail.rules``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.opt import (
    LiteralPlan,
    Plan,
    RelationSnapshot,
    classify_join_columns,
    compile_literal_plan,
    optimize,
)
from repro.storage.relation import Relation
from repro.terms.term import Atom, Num, Var
from tests.conftest import make_system

# --------------------------------------------------------------------- #
# the optimize() facade
# --------------------------------------------------------------------- #


def _body(source: str):
    """The body of the single rule in ``source``."""
    program = parse_program(source)
    return program.items[0].body


class TestOptimizeFacade:
    def test_program_mode_keeps_source_order(self):
        body = _body("q(X, Z) :- a(X, Y) & b(Y, Z) & X < Z.")
        plan = optimize(body, order_mode="program")
        assert isinstance(plan, Plan)
        assert plan.order == (0, 1, 2)
        assert plan.ordered_body == tuple(body)
        assert plan.passes == ()

    def test_unknown_order_mode_rejected(self):
        body = _body("q(X) :- a(X).")
        with pytest.raises(ValueError):
            optimize(body, order_mode="fastest")

    def test_cost_mode_schedules_small_relation_first(self):
        body = _body("q(X, Z) :- big(X, Y) & tiny(Y, Z).")
        sizes = {"big": 10_000, "tiny": 2}
        plan = optimize(body, stats=lambda pred, arity: sizes.get(str(pred)))
        assert plan.order == (1, 0)  # tiny drives the join

    def test_selection_pulled_forward(self):
        # The comparison only needs X, so it runs right after the literal
        # binding X instead of filtering after the whole join.
        body = _body("q(X, Z) :- a(X) & b(X, Z) & X < 5.")
        sizes = {"a": 100, "b": 100}
        plan = optimize(body, stats=lambda pred, arity: sizes.get(str(pred)))
        assert plan.order == (0, 2, 1)

    def test_estimates_use_distinct_counts(self):
        body = _body("q(X, Z) :- a(X, Y) & b(Y, Z).")
        stats = {
            "a": RelationSnapshot(name="a", arity=2, rows=10, distincts=(10, 5)),
            "b": RelationSnapshot(name="b", arity=2, rows=100, distincts=(5, 100)),
        }
        plan = optimize(body, stats=lambda pred, arity: stats.get(str(pred)))
        # a scans first (10 rows), then b is probed on its col-0 key:
        # 10 bindings * 100/5 matches per binding.
        step_b = plan.step_at(1)
        assert step_b.probe_cols == (0,)
        assert step_b.est_rows == pytest.approx(10 * 100 / 5)
        assert "est~" in plan.describe()[0]

    def test_pipeline_override_runs_named_passes_only(self):
        body = _body("q(X, Z) :- big(X, Y) & tiny(Y, Z).")
        sizes = {"big": 10_000, "tiny": 2}
        plan = optimize(
            body,
            stats=lambda pred, arity: sizes.get(str(pred)),
            pipeline=("pull-selections",),
        )
        assert plan.order == (0, 1)  # the join-order pass was not requested
        assert plan.passes == ("pull-selections",)


# --------------------------------------------------------------------- #
# differential: cost order and program order agree on results
# --------------------------------------------------------------------- #

LITERALS = ("e(X, Y)", "f(Y, Z)", "g(Z)")


def _answers(order_mode, body_literals, e_rows, f_rows, g_rows):
    source = "q(X, Z) :- " + " & ".join(body_literals) + "."
    system = make_system(source, order_mode=order_mode)
    system.facts("e", e_rows)
    system.facts("f", f_rows)
    system.facts("g", g_rows)
    return sorted(system.rows("q", 2).to_python())


small_ints = st.integers(min_value=0, max_value=6)
pairs = st.lists(st.tuples(small_ints, small_ints), min_size=0, max_size=12)
units = st.lists(st.tuples(small_ints), min_size=0, max_size=6)


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        perm=st.permutations(LITERALS),
        e_rows=pairs,
        f_rows=pairs,
        g_rows=units,
    )
    def test_cost_equals_program_on_random_bodies(self, perm, e_rows, f_rows, g_rows):
        cost = _answers("cost", perm, e_rows, f_rows, g_rows)
        program = _answers("program", perm, e_rows, f_rows, g_rows)
        assert cost == program

    @settings(max_examples=15, deadline=None)
    @given(
        perm=st.permutations(LITERALS),
        e_rows=pairs,
        f_rows=pairs,
        g_rows=units,
    )
    def test_agreement_with_comparison(self, perm, e_rows, f_rows, g_rows):
        # Cost mode hoists the trailing filter to its earliest admissible
        # slot; program mode runs it where written.  Same answers either way.
        body = tuple(perm) + ("X < Z",)
        cost = _answers("cost", body, e_rows, f_rows, g_rows)
        program = _answers("program", body, e_rows, f_rows, g_rows)
        assert cost == program

    def test_glue_statement_differential(self):
        source = "out(X, Z) := big_a(X, Y) & big_b(Y, Z) & tiny(Z)."
        results = {}
        for mode in ("cost", "program"):
            system = make_system(source, order_mode=mode)
            system.facts("big_a", [(i, i % 5) for i in range(60)])
            system.facts("big_b", [(j % 5, j) for j in range(60)])
            system.facts("tiny", [(7,)])
            system.run_script()
            results[mode] = sorted(system.rows("out", 2).to_python())
        assert results["cost"] == results["program"]
        assert results["cost"]  # non-vacuous


# --------------------------------------------------------------------- #
# cost collapse: the ordered body touches far fewer tuples
# --------------------------------------------------------------------- #


class TestCostCollapse:
    N = 800
    K = 20

    def _run(self, order_mode):
        # Program order joins the two big relations first (N*N/K
        # intermediate bindings) before the single-row tiny(Z) prunes; cost
        # order starts from tiny and probes backwards through the keys.
        system = make_system(
            "q(X, Z) :- big_a(X, Y) & big_b(Y, Z) & tiny(Z).",
            order_mode=order_mode,
        )
        system.facts("big_a", [(i, i % self.K) for i in range(self.N)])
        system.facts("big_b", [(j % self.K, j) for j in range(self.N)])
        system.facts("tiny", [(7,)])
        system.compile()
        system.reset_counters()
        rows = sorted(system.rows("q", 2).to_python())
        return rows, system.counters.total_tuple_touches

    def test_cost_order_touches_5x_fewer_tuples(self):
        cost_rows, cost_touches = self._run("cost")
        program_rows, program_touches = self._run("program")
        assert cost_rows == program_rows
        assert cost_rows  # the join is non-empty
        assert cost_touches * 5 <= program_touches, (
            f"cost={cost_touches} program={program_touches}"
        )


# --------------------------------------------------------------------- #
# unified join-event schema and plan observability
# --------------------------------------------------------------------- #

JOIN_EVENT_KEYS = {"strategy", "bindings", "source", "key", "est_rows", "actual_rows"}

LOOKUP_PROC = """
proc lookup(X:Y)
  return(X:Y) := a(X, V) & b(V, Y).
end
"""


class TestUnifiedJoinEvents:
    def test_nail_join_events_carry_the_schema(self):
        system = make_system("q(X, Z) :- a(X, Y) & b(Y, Z).", trace=True)
        system.facts("a", [(1, 2), (3, 4)])
        system.facts("b", [(2, 5), (4, 6)])
        result = system.query("q(X, Z)?")
        joins = result.joins
        assert joins, "tracing produced no join events"
        for join in joins:
            assert JOIN_EVENT_KEYS <= set(join)
        keyed = [j for j in joins if j["key"]]
        assert keyed and all(j["actual_rows"] is not None for j in keyed)

    def test_glue_join_events_carry_the_same_schema(self):
        system = make_system(LOOKUP_PROC, trace=True)
        system.facts("a", [(1, 2), (3, 4)])
        system.facts("b", [(2, 5), (4, 6)])
        result = system.call("lookup", [(1,)])
        assert result.to_python() == [(1, 5)]
        joins = result.joins
        assert joins, "tracing produced no join events"
        for join in joins:
            assert JOIN_EVENT_KEYS <= set(join)
        assert any(j["est_rows"] is not None for j in joins)

    def test_explain_analyze_renders_est_vs_actual_for_both_engines(self):
        nail = make_system("q(X, Z) :- a(X, Y) & b(Y, Z).")
        nail.facts("a", [(1, 2)])
        nail.facts("b", [(2, 3)])
        report = nail.explain_analyze("q(X, Z)?")
        assert "Joins (estimated vs actual)" in report
        assert "est" in report and "actual" in report

        glue = make_system(LOOKUP_PROC)
        glue.facts("a", [(1, 2)])
        glue.facts("b", [(2, 3)])
        report = glue.explain_analyze("lookup(1, Y)?")
        assert "Joins (estimated vs actual)" in report
        assert "est~" in report  # the plan lines carry the estimates too

    def test_query_result_exposes_chosen_join_order(self):
        system = make_system("q(X, Z) :- big(X, Y) & tiny(Y, Z).", trace=True)
        system.facts("big", [(i, i % 4) for i in range(100)])
        system.facts("tiny", [(2, 9)])
        result = system.query("q(X, Z)?")
        # The rendered plan shows the scheduled order with estimates ...
        assert "tiny" in result.plan and "est~" in result.plan
        # ... and the join events replay it: tiny was scanned first.
        assert result.joins[0]["name"] == "tiny/2"


# --------------------------------------------------------------------- #
# statistics snapshots
# --------------------------------------------------------------------- #


def _rel(rows):
    relation = Relation(Atom("r"), 2)
    relation.insert_new([(Num(a), Num(b)) for a, b in rows])
    return relation


class TestStatsSnapshot:
    def test_snapshot_rows_and_distincts(self):
        relation = _rel([(i, i % 3) for i in range(9)])
        snap = relation.stats_snapshot()
        assert snap.rows == 9
        assert snap.distincts == (9, 3)
        assert snap.est_matches(()) == pytest.approx(9.0)
        assert snap.est_matches((1,)) == pytest.approx(3.0)
        assert snap.est_matches((0, 1)) == pytest.approx(9 / (9 * 3))

    def test_snapshot_tracks_inserts(self):
        relation = _rel([(i, i % 3) for i in range(9)])
        first = relation.stats_snapshot()
        relation.insert((Num(100), Num(5)))
        second = relation.stats_snapshot()
        assert second.rows == 10
        assert second.distincts == (10, 4)
        assert second.version > first.version

    def test_snapshot_rebuilds_after_delete(self):
        relation = _rel([(i, i % 3) for i in range(9)])
        relation.stats_snapshot()
        relation.delete((Num(8), Num(2)))
        snap = relation.stats_snapshot()
        assert snap.rows == 8
        assert snap.distincts == (8, 3)

    def test_snapshot_is_value_stable(self):
        # Two reads without writes in between are equal: the ledgers are
        # read under one lock acquisition, not field by field.
        relation = _rel([(i, i) for i in range(5)])
        assert relation.stats_snapshot() == relation.stats_snapshot()


# --------------------------------------------------------------------- #
# deprecated shims
# --------------------------------------------------------------------- #


class TestDeprecatedShims:
    def test_classify_join_columns_shim_warns_and_delegates(self):
        from repro.nail.rules import classify_join_columns as shim

        args = (Var("X"), Num(1))
        with pytest.warns(DeprecationWarning, match="moved to repro.opt"):
            via_shim = shim(Atom("p"), args, frozenset())
        direct = classify_join_columns(Atom("p"), args, frozenset())
        assert isinstance(via_shim, LiteralPlan)
        assert via_shim == direct

    def test_compile_literal_plan_shim_warns_and_delegates(self):
        from repro.lang.ast import PredSubgoal
        from repro.nail.rules import compile_literal_plan as shim

        subgoal = PredSubgoal(pred=Atom("p"), args=(Var("X"), Var("Y")))
        with pytest.warns(DeprecationWarning, match="moved to repro.opt"):
            via_shim = shim(subgoal, frozenset({"X"}))
        assert via_shim == compile_literal_plan(subgoal, frozenset({"X"}))
