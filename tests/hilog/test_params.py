"""Tests for parameterized-predicate specialization (paper Section 5.2)."""

from repro.hilog.params import specialize_rule, specialize_rules
from repro.lang.parser import parse_program, parse_rule
from repro.nail.engine import NailEngine
from repro.storage.database import Database
from repro.terms.term import Atom, Num, Var

UNIVERSAL_TC = """
tc(E, X, X) :- E(X, _).
tc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).
"""


def rules_of(text):
    return list(parse_program(text).items)


class TestSpecializeRule:
    def test_substitutes_predicate_variable(self):
        rule = parse_rule("tc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).")
        special = specialize_rule(rule, {"E": "edge"})
        assert special.head_args[0] == Atom("edge")
        assert special.body[1].pred == Atom("edge")

    def test_preserves_other_variables(self):
        rule = parse_rule("tc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).")
        special = specialize_rule(rule, {"E": "edge"})
        assert special.head_args[1] == Var("X")

    def test_numbers_and_compounds(self):
        rule = parse_rule("p(K, X) :- data(K, X).")
        special = specialize_rule(rule, {"K": 42})
        assert special.head_args[0] == Num(42)

    def test_substitution_in_expressions(self):
        rule = parse_rule("p(X) :- q(Y) & X = Y + N.")
        special = specialize_rule(rule, {"N": 5})
        assert special.body[1].right.right == Num(5)


class TestSpecializedEvaluation:
    def test_universal_tc_specialized_to_edge(self):
        db = Database()
        db.facts("edge", [(1, 2), (2, 3)])
        db.facts("roads", [("sf", "la")])
        rules = specialize_rules(rules_of(UNIVERSAL_TC), {"E": "edge"})
        engine = NailEngine(db, rules)
        rows = engine.materialize(Atom("tc"), 3)
        closed = {(r[1].value, r[2].value) for r in rows.rows()}
        assert (1, 3) in closed
        assert all(r[0] == Atom("edge") for r in rows.rows())

    def test_two_specializations_coexist(self):
        db = Database()
        db.facts("edge", [(1, 2)])
        db.facts("roads", [("sf", "la")])
        rules = specialize_rules(rules_of(UNIVERSAL_TC), {"E": "edge"})
        rules += specialize_rules(rules_of(UNIVERSAL_TC), {"E": "roads"})
        engine = NailEngine(db, rules)
        rows = engine.materialize(Atom("tc"), 3)
        firsts = {str(r[0]) for r in rows.rows()}
        assert firsts == {"edge", "roads"}

    def test_specialized_matches_magic_on_same_query(self):
        from repro.nail.engine import magic_query

        db = Database()
        db.facts("edge", [(1, 2), (2, 3), (3, 4)])
        rules = rules_of("tc(E, X, X).\ntc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).")
        magic_answers, _ = magic_query(
            db, rules, Atom("tc"), (Atom("edge"), Num(1), Var("Z"))
        )
        special = specialize_rules(rules_of(UNIVERSAL_TC), {"E": "edge"})
        engine = NailEngine(db, special)
        full = engine.query(Atom("tc"), (Atom("edge"), Num(1), Var("Z")))
        # The magic variant includes the reflexive tuple from the unit
        # clause; the specialized variant seeds reflexivity from edges.
        assert {r[2].value for r in magic_answers} == {1, 2, 3, 4}
        assert {r[2].value for r in full} == {1, 2, 3, 4}
