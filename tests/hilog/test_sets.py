"""Tests for HiLog set-valued attributes (paper Section 5.1)."""

from repro.baselines.extensional_sets import make_set, sets_equal_extensional
from repro.hilog.sets import member_rows, set_eq, set_insert, set_name
from repro.storage.database import Database
from repro.terms.term import Atom, Compound


class TestSetNames:
    def test_plain_name(self):
        assert set_name("reds") == Atom("reds")

    def test_parameterized_name(self):
        assert set_name("students", "cs99") == Compound(
            Atom("students"), (Atom("cs99"),)
        )

    def test_multi_parameter_name(self):
        name = set_name("enrollment", "cs99", 2026)
        assert name.args[1].value == 2026

    def test_name_equality_is_term_equality(self):
        # "if two set valued attributes contain the same predicate name,
        # then the two sets are identical" -- O(name) comparison.
        assert set_name("students", "cs99") == set_name("students", "cs99")
        assert set_name("students", "cs99") != set_name("students", "cs1")


class TestMembership:
    def test_insert_and_read(self, db):
        name = set_name("students", "cs99")
        assert set_insert(db, name, "wilson")
        assert not set_insert(db, name, "wilson")  # sets: no duplicates
        set_insert(db, name, "green")
        assert sorted(str(r[0]) for r in member_rows(db, name)) == ["green", "wilson"]

    def test_unknown_set_is_empty(self, db):
        assert member_rows(db, set_name("nothing", "here")) == []

    def test_arity_checked(self, db):
        import pytest

        with pytest.raises(ValueError):
            set_insert(db, "pairs", ("a",), arity=2)


class TestSetEq:
    def test_same_name_fast_path(self, db):
        # No members needed: identical names are identical sets.
        name = set_name("students", "cs99")
        assert set_eq(db, name, name)

    def test_extensional_equality(self, db):
        set_insert(db, "s1", "a")
        set_insert(db, "s1", "b")
        set_insert(db, "s2", "b")
        set_insert(db, "s2", "a")
        assert set_eq(db, "s1", "s2")

    def test_extensional_inequality(self, db):
        set_insert(db, "s1", "a")
        set_insert(db, "s2", "a")
        set_insert(db, "s2", "b")
        assert not set_eq(db, "s1", "s2")

    def test_both_empty_equal(self, db):
        assert set_eq(db, "e1", "e2")

    def test_agrees_with_extensional_baseline(self, db):
        for members1, members2 in [
            (["a", "b"], ["b", "a"]),
            (["a"], ["a", "b"]),
            ([], []),
            (["x", "y", "z"], ["x", "y"]),
        ]:
            db2 = Database()
            for m in members1:
                set_insert(db2, "l", m)
            for m in members2:
                set_insert(db2, "r", m)
            hilog = set_eq(db2, "l", "r")
            extensional = sets_equal_extensional(make_set(members1), make_set(members2))
            assert hilog == extensional


class TestClassInfoExample:
    """The paper's class_info schema end to end through the system."""

    SOURCE = """
    class_info(ID, Instructor, Room, tas(ID), students(ID)) :-
      class_instructor(ID, Instructor) &
      class_room(ID, Room) &
      class_subject(ID, _).
    tas(ID)(TA) :-
      class_subject(ID, Subject) & failed_exam(TA, Subject).
    students(ID)(Student) :- attends(Student, ID).
    """

    def _system(self):
        from tests.conftest import make_system

        system = make_system(self.SOURCE)
        system.facts("class_instructor", [("cs99", "smith")])
        system.facts("class_room", [("cs99", "mjh460a")])
        system.facts("class_subject", [("cs99", "databases")])
        system.facts("failed_exam", [("jones", "databases")])
        system.facts("attends", [("wilson", "cs99"), ("green", "cs99")])
        return system

    def test_implied_idb_tuples(self):
        system = self._system()
        students = system.idb_rows(set_name("students", "cs99"), 1)
        assert sorted(str(r[0]) for r in students) == ["green", "wilson"]
        tas = system.idb_rows(set_name("tas", "cs99"), 1)
        assert [str(r[0]) for r in tas] == ["jones"]

    def test_class_info_carries_set_names(self):
        system = self._system()
        (row,) = system.query("class_info(cs99, I, R, T, S)?")
        assert row[3] == set_name("tas", "cs99")
        assert row[4] == set_name("students", "cs99")

    def test_typical_use_dereferences_sets(self):
        # class_info(C,I,R,T,S) & T(TA) & S(Student)  (paper Section 5.1)
        system = self._system()
        system.load(
            """
            proc staff_and_students(:TA, Student)
              return(:TA, Student) :=
                class_info(_, _, _, T, S) & T(TA) & S(Student).
            end
            """
        )
        rows = system.call("staff_and_students")
        pairs = sorted((str(r[0]), str(r[1])) for r in rows)
        assert pairs == [("jones", "green"), ("jones", "wilson")]
