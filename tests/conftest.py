"""Shared fixtures and hypothesis strategies for the Glue-Nail test suite."""

from __future__ import annotations

import os
import sys

# Make the suite runnable without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest
from hypothesis import strategies as st

from repro.storage.database import Database
from repro.terms.term import Atom, Compound, Num, Term


# --------------------------------------------------------------------- #
# hypothesis strategies for ground terms
# --------------------------------------------------------------------- #

atoms = st.one_of(
    st.sampled_from(["a", "b", "c", "foo", "bar", "x1", "hello world", "it's"]),
    st.text(min_size=0, max_size=6).map(lambda s: s.replace("\n", " ")),
).map(Atom)

numbers = st.one_of(
    st.integers(min_value=-1_000_000, max_value=1_000_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
).map(Num)


def _compounds(children):
    return st.builds(
        Compound,
        functor=st.one_of(atoms, children),
        args=st.lists(children, min_size=1, max_size=3).map(tuple),
    )


ground_terms: st.SearchStrategy[Term] = st.recursive(
    st.one_of(atoms, numbers), _compounds, max_leaves=8
)

ground_rows = st.lists(ground_terms, min_size=0, max_size=4).map(tuple)


# --------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------- #


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def chain_db() -> Database:
    """A database with a 10-node chain in relation ``edge``."""
    database = Database()
    database.facts("edge", [(i, i + 1) for i in range(10)])
    return database


def make_system(source: str = "", **kwargs):
    """Build a compiled GlueNailSystem from source (test helper)."""
    from repro.core.system import GlueNailSystem

    system = GlueNailSystem(**kwargs)
    if source:
        system.load(source)
    return system
