"""Systematic parse-error tests: every error path reports a position."""

import pytest

from repro.lang.parser import (
    ParseError,
    parse_ground_fact,
    parse_program,
    parse_query,
    parse_statement,
    parse_term,
)


def error_of(fn, text):
    with pytest.raises(ParseError) as excinfo:
        fn(text)
    return str(excinfo.value)


class TestStatementErrors:
    def test_missing_operator(self):
        message = error_of(parse_statement, "p(X) q(X).")
        assert "expected" in message

    def test_missing_terminator(self):
        error_of(parse_statement, "p(X) := q(X)")

    def test_trailing_garbage(self):
        message = error_of(parse_statement, "p(X) := q(X). extra")
        assert "trailing" in message

    def test_bad_modify_keys(self):
        message = error_of(parse_statement, "p(X) +=[foo] q(X).")
        assert "key variable" in message

    def test_unterminated_body_disjunction(self):
        error_of(parse_statement, "p(X) := { a(X) | b(X).")

    def test_colon_twice_in_head(self):
        message = error_of(parse_statement, "return(X:Y:Z) := q(X, Y, Z).")
        assert "duplicate ':'" in message

    def test_head_must_be_application(self):
        message = error_of(parse_statement, "p := q(X).")
        assert "application" in message

    def test_positions_in_messages(self):
        message = error_of(parse_statement, "p(X) :=\n q(X")
        assert "2:" in message  # line 2


class TestProcErrors:
    def test_missing_end(self):
        message = error_of(parse_program, "proc p(:X)\n return(:X) := q(X).")
        assert "end" in message

    def test_params_not_variables(self):
        message = error_of(parse_program, "proc p(foo:X)\nend")
        assert "parameter" in message

    def test_rels_needs_semicolon(self):
        error_of(parse_program, "proc p(:X)\nrels a(V)\n return(:X) := a(X).\nend")

    def test_nail_rule_in_proc(self):
        message = error_of(parse_program, "proc p(:X)\n q(X) :- r(X).\nend")
        assert "not allowed inside procedures" in message


class TestModuleErrors:
    def test_module_needs_semicolon(self):
        error_of(parse_program, "module m\nend")

    def test_import_needs_module_name(self):
        error_of(parse_program, "module m;\nfrom import p(:X);\nend")

    def test_export_needs_signature(self):
        error_of(parse_program, "module m;\nexport ;\nend")


class TestTermAndQueryErrors:
    def test_arithmetic_in_argument_position(self):
        message = error_of(parse_term, "f(X + 1)")
        assert "argument position" in message

    def test_unbalanced_parens(self):
        error_of(parse_term, "f(a, b")

    def test_query_must_be_application(self):
        message = error_of(parse_query, "42?")
        assert "application" in message

    def test_fact_must_be_ground(self):
        message = error_of(parse_ground_fact, "p(X).")
        assert "ground" in message

    def test_double_negation(self):
        message = error_of(parse_statement, "p(X) := !!q(X).")
        assert "negation" in message

    def test_unchanged_needs_pattern(self):
        message = error_of(parse_statement, "p(X) := q(X) & unchanged(foo).")
        assert "unchanged" in message

    def test_empty_needs_application(self):
        message = error_of(parse_statement, "p(X) := q(X) & empty(foo).")
        assert "empty" in message
