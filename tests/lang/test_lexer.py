"""Unit tests for the lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasics:
    def test_names_and_vars(self):
        tokens = tokenize("foo Bar _baz")
        assert tokens[0].kind is TokenKind.NAME
        assert tokens[1].kind is TokenKind.VARIABLE
        assert tokens[2].kind is TokenKind.VARIABLE

    def test_numbers(self):
        assert values("42 1.5 2e3 1.5e-2") == [42, 1.5, 2000.0, 0.015]

    def test_int_followed_by_statement_dot(self):
        # "p(2)." -- the dot terminates the statement, not a float.
        assert values("2.") == [2, "."]

    def test_float_literal(self):
        assert values("1.0") == [1.0]

    def test_quoted_atom(self):
        assert values("'hello world'") == ["hello world"]

    def test_quoted_atom_escapes(self):
        assert values(r"'it\'s a \\ test\n'") == ["it's a \\ test\n"]

    def test_unterminated_quote(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_quote_across_newline_rejected(self):
        with pytest.raises(LexError):
            tokenize("'line\nbreak'")

    def test_operators_longest_match(self):
        assert values(":= += -= :- != <= >= ++ --") == [
            ":=", "+=", "-=", ":-", "!=", "<=", ">=", "++", "--",
        ]

    def test_line_comment(self):
        assert values("a % comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_identifier_with_digits_and_underscores(self):
        assert values("tc_e x1 Max_T") == ["tc_e", "x1", "Max_T"]


class TestQuotedKeywords:
    def test_quoted_atom_flagged(self):
        from repro.lang.lexer import tokenize

        token = tokenize("'proc'")[0]
        assert token.quoted and token.value == "proc"
        assert not token.is_name("proc")

    def test_unquoted_keyword_matches(self):
        from repro.lang.lexer import tokenize

        assert tokenize("proc")[0].is_name("proc")

    def test_reserved_names_sync_with_printer(self):
        # terms/printer.py duplicates the reserved-name set (terms/ cannot
        # import lang/); this guards the duplication.
        from repro.lang.tokens import AGGREGATE_OPS, BUILTIN_FUNCTIONS, KEYWORDS
        from repro.terms.printer import _RESERVED_NAMES

        expected = set(KEYWORDS) | set(AGGREGATE_OPS) | set(BUILTIN_FUNCTIONS) | {"mod"}
        assert _RESERVED_NAMES == frozenset(expected)
