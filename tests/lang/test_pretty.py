"""Pretty-printer round-trip tests: parse(pretty(ast)) == ast."""

import pytest

from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty_program, pretty_statement

STATEMENTS = [
    "r(X, Y) += s(X, W) & t(f(W, X), Y).",
    "matrix(X, X, 1.0) := row(X).",
    "matrix(X, Y, 0.0) += row(X) & row(Y) & X != Y.",
    "max_temp(MaxT) := temperature(T) & MaxT = max(T).",
    "coldest(Name) := daily_temp(Name, T) & T = min(T).",
    "avg(C, A) := grades(C, S, G) & group_by(C) & A = mean(G).",
    "p(X) := q(X) & !r(X).",
    "p(X) := q(X) & --old(X) & ++new(X).",
    "p(X, Y) +=[X] q(X, Y).",
    "p(A, B, C) +=[A, C] q(A, B, C).",
    "return(X:Y) := connected(X, Y).",
    "return(:Key) := confirmed(Key).",
    "return(S, T:) := !different(S, T).",
    "students(ID)(Name) += attends(Name, ID).",
    "p(X) := sets(S) & S(X).",
    "p(D) := q(X, Y) & D = (X - Y) * (X - Y) + 1.",
    "p(N) := q(S) & N = length(S) & N >= 3.",
    "p(C) := q(A, B) & C = concat(A, B, 'suffix').",
    "flag() := true.",
    "p('a quoted atom') := q('with \\'escapes\\'').",
    "p(X) := q(X) & X = -5.",
    "w(X) := q(X) & write(X).",
]

PROGRAMS = [
    """
    proc tc_e(X:Y)
    rels connected(X, Y);
      connected(X, Y) := in(X) & e(X, Y).
      repeat
        connected(X, Y) += connected(X, Z) & e(Z, Y).
      until unchanged(connected(_, _));
      return(X:Y) := connected(X, Y).
    end
    """,
    """
    module m;
    export p(:X);
    from other import q(A:B);
    edb base(K, V);
    proc p(:X)
      return(:X) := base(X, _) & q(X, _).
    end
    derived(X) :- base(X, _).
    end
    """,
    """
    proc set_eq(S, T:)
    rels different(A, B);
      different(S, T) := in(S, T) & S(X) & !T(X).
      different(S, T) += in(S, T) & T(X) & !S(X).
      return(S, T:) := !different(S, T).
    end
    """,
    """
    anc(X, Y) :- par(X, Y).
    anc(X, Z) :- anc(X, Y) & par(Y, Z).
    single(X) :- person(X) & !married(X).
    tc(E, X, X).
    """,
    """
    proc looped(:)
      repeat
        a(X) := b(X).
        repeat
          c(X) += a(X).
        until unchanged(c(_));
      until { empty(b(X)) | unchanged(a(_)) };
      return(:) := true.
    end
    """,
]


@pytest.mark.parametrize("text", STATEMENTS)
def test_statement_roundtrip(text):
    stmt = parse_statement(text)
    assert parse_statement(pretty_statement(stmt)) == stmt


@pytest.mark.parametrize("text", PROGRAMS)
def test_program_roundtrip(text):
    program = parse_program(text)
    printed = pretty_program(program)
    assert parse_program(printed) == program


@pytest.mark.parametrize("text", PROGRAMS)
def test_pretty_is_stable(text):
    """pretty(parse(pretty(p))) == pretty(p): printing is a fixpoint."""
    once = pretty_program(parse_program(text))
    twice = pretty_program(parse_program(once))
    assert once == twice


UNION_STATEMENTS = [
    "out(X, V) := seed(X) & { a(X, V) | b(X, V) }.",
    "out(X) := { a(X) | b(X) | c(X) }.",
    "out(X, C) := n(X) & { X < 5 & C = small(X) | X >= 5 & C = big(X) }.",
    "out(X) := { a(X) | { b(X) | c(X) } }.",
]


@pytest.mark.parametrize("text", UNION_STATEMENTS)
def test_union_statement_roundtrip(text):
    stmt = parse_statement(text)
    assert parse_statement(pretty_statement(stmt)) == stmt


RESERVED_ATOMS = [
    "p('abs') := q('min', 'proc').",
    "p(X) := q(X) & X != 'mod'.",
    "'edb'(X) := q(X).",
    "p('abs'(1)) := q('end'(2, 3)).",
]


@pytest.mark.parametrize("text", RESERVED_ATOMS)
def test_reserved_name_atoms_roundtrip(text):
    stmt = parse_statement(text)
    assert parse_statement(pretty_statement(stmt)) == stmt
