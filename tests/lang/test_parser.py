"""Unit tests for the parser, driven by the paper's own examples."""

import pytest

from repro.lang.ast import (
    AggCall,
    AssignStmt,
    BinOp,
    CompareSubgoal,
    EdbDecl,
    EmptyCond,
    ExportDecl,
    GroupBySubgoal,
    ImportDecl,
    PredSubgoal,
    ProcDecl,
    RepeatStmt,
    RuleDecl,
    UnchangedCond,
    UpdateSubgoal,
)
from repro.lang.parser import (
    ParseError,
    parse_directive_rel,
    parse_ground_fact,
    parse_module,
    parse_program,
    parse_query,
    parse_rule,
    parse_statement,
    parse_term,
)
from repro.terms.term import Atom, Compound, Num, Var


class TestStatements:
    def test_basic_insert(self):
        # Section 3.1's first example.
        stmt = parse_statement("r(X,Y) += s(X,W) & t(f(W,X),Y).")
        assert stmt.op == "+="
        assert stmt.head_pred == Atom("r")
        assert len(stmt.body) == 2
        second = stmt.body[1]
        assert second.args[0] == Compound(Atom("f"), (Var("W"), Var("X")))

    def test_all_four_operators(self):
        assert parse_statement("p(X) := q(X).").op == ":="
        assert parse_statement("p(X) += q(X).").op == "+="
        assert parse_statement("p(X) -= q(X).").op == "-="
        modify = parse_statement("p(X, Y) +=[X] q(X, Y).")
        assert modify.op == "modify"
        assert modify.keys == (Var("X"),)

    def test_modify_multiple_keys(self):
        stmt = parse_statement("p(A, B, C) +=[A, B] q(A, B, C).")
        assert stmt.keys == (Var("A"), Var("B"))

    def test_identity_matrix_example(self):
        stmt = parse_statement("matrix(X, X, 1.0) := row(X).")
        assert stmt.head_args == (Var("X"), Var("X"), Num(1.0))

    def test_negation(self):
        stmt = parse_statement("p(X) := q(X) & !r(X).")
        assert stmt.body[1].negated

    def test_double_negation_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("p(X) := q(X) & !!r(X).")

    def test_update_subgoals(self):
        stmt = parse_statement("p(X) := q(X) & --old(X) & ++new(X).")
        assert isinstance(stmt.body[1], UpdateSubgoal)
        assert stmt.body[1].op == "--"
        assert stmt.body[2].op == "++"

    def test_comparison_subgoals(self):
        stmt = parse_statement("p(X) := q(X, Y) & X != Y & X < 10.")
        assert isinstance(stmt.body[1], CompareSubgoal)
        assert stmt.body[1].op == "!="
        assert stmt.body[2].op == "<"

    def test_arithmetic_expression(self):
        stmt = parse_statement("p(D) := q(X, Y) & D = (X - Y) * (X - Y).")
        binding = stmt.body[1]
        assert isinstance(binding.right, BinOp)
        assert binding.right.op == "*"

    def test_precedence(self):
        stmt = parse_statement("p(X) := q(A, B, C) & X = A + B * C.")
        expr = stmt.body[1].right
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_aggregation(self):
        # Section 3.3's max_temp example.
        stmt = parse_statement("max_temp(MaxT) := temperature(T) & MaxT = max(T).")
        agg = stmt.body[1]
        assert isinstance(agg.right, AggCall)
        assert agg.right.op == "max"

    def test_inline_aggregate_restriction(self):
        # "coldest_cities" with the combined form T = min(T).
        stmt = parse_statement("coldest(Name) := daily_temp(Name, T) & T = min(T).")
        assert isinstance(stmt.body[1].right, AggCall)

    def test_group_by(self):
        stmt = parse_statement(
            "avg(C, A) := grades(C, S, G) & group_by(C) & A = mean(G)."
        )
        assert isinstance(stmt.body[1], GroupBySubgoal)
        assert stmt.body[1].terms == (Var("C"),)

    def test_true_false_literals(self):
        stmt = parse_statement("p() := true.")
        assert stmt.body[0] == PredSubgoal(pred=Atom("true"), args=())

    def test_zero_arity_head(self):
        stmt = parse_statement("flag() := q(X).")
        assert stmt.head_args == ()

    def test_return_head_with_colon(self):
        stmt = parse_statement("return(X:Y) := connected(X, Y).")
        assert stmt.head_bound == 1
        assert stmt.head_args == (Var("X"), Var("Y"))

    def test_return_all_free(self):
        stmt = parse_statement("return(:Key) := confirmed(Key).")
        assert stmt.head_bound == 0

    def test_return_all_bound(self):
        stmt = parse_statement("return(S, T:) := !different(S, T).")
        assert stmt.head_bound == 2

    def test_hilog_head(self):
        stmt = parse_statement("students(ID)(Name) += attends(Name, ID).")
        assert stmt.head_pred == Compound(Atom("students"), (Var("ID"),))
        assert stmt.head_args == (Var("Name"),)

    def test_hilog_predicate_variable_subgoal(self):
        stmt = parse_statement("p(X) := sets(S) & S(X).")
        subgoal = stmt.body[1]
        assert subgoal.pred == Var("S")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("p(X) := q(X)")

    def test_builtin_function_call(self):
        stmt = parse_statement("p(N) := q(S) & N = length(S).")
        assert stmt.body[1].right.name == "length"

    def test_concat(self):
        stmt = parse_statement("p(C) := q(A, B) & C = concat(A, B).")
        assert stmt.body[1].right.name == "concat"


class TestRules:
    def test_basic_rule(self):
        rule = parse_rule("anc(X, Y) :- par(X, Y).")
        assert isinstance(rule, RuleDecl)

    def test_parameterized_tc(self):
        rule = parse_rule("tc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).")
        assert rule.body[1].pred == Var("E")

    def test_unit_clause(self):
        rule = parse_rule("tc(E, X, X).")
        assert rule.body == (PredSubgoal(pred=Atom("true"), args=()),)

    def test_ground_fact_as_unit_clause(self):
        rule = parse_rule("edge(1, 2).")
        assert rule.head_args == (Num(1), Num(2))

    def test_rule_with_arithmetic_comparison(self):
        rule = parse_rule(
            "near(K) :- element(K, X, Y) & t(T) & (X - 1) * (X - 1) + Y * Y < T."
        )
        assert rule.body[2].op == "<"

    def test_rule_head_colon_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X:Y) :- q(X, Y).")

    def test_rules_inside_procs_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc p(:X)\n q(X) :- r(X).\nend")


class TestProcs:
    PROC = """
    proc tc_e(X:Y)
    rels connected(X, Y);
      connected(X, Y) := in(X) & e(X, Y).
      repeat
        connected(X, Y) += connected(X, Z) & e(Z, Y).
      until unchanged(connected(_, _));
      return(X:Y) := connected(X, Y).
    end
    """

    def test_tc_e_structure(self):
        program = parse_program(self.PROC)
        (proc,) = program.items
        assert isinstance(proc, ProcDecl)
        assert proc.name == "tc_e"
        assert proc.bound_params == (Var("X"),)
        assert proc.free_params == (Var("Y"),)
        assert proc.locals == (EdbDecl(name="connected", attrs=("X", "Y")),)
        assert len(proc.body) == 3
        assert isinstance(proc.body[1], RepeatStmt)

    def test_repeat_until_unchanged(self):
        program = parse_program(self.PROC)
        repeat = program.items[0].body[1]
        (alt,) = repeat.until.alternatives
        assert isinstance(alt[0], UnchangedCond)
        assert alt[0].arity == 2

    def test_until_disjunction(self):
        source = """
        proc p(:K)
          repeat
            a(K) := b(K).
          until { confirmed(K) | empty(possible(K)) };
        end
        """
        proc = parse_program(source).items[0]
        repeat = proc.body[0]
        assert len(repeat.until.alternatives) == 2
        assert isinstance(repeat.until.alternatives[1][0], EmptyCond)

    def test_proc_keyword_alias(self):
        program = parse_program("procedure p(:X)\n return(:X) := q(X).\nend")
        assert program.items[0].name == "p"

    def test_zero_arity_proc(self):
        program = parse_program("proc init(:)\n return(:) := true.\nend")
        proc = program.items[0]
        assert proc.arity == 0 and proc.bound_arity == 0

    def test_params_need_colon(self):
        with pytest.raises(ParseError):
            parse_program("proc p(X)\n return(X) := q(X).\nend")

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_program("proc p(:X)\n return(:X) := q(X).")

    def test_multiple_rels_decls(self):
        source = """
        proc p(:X)
        rels a(U);
        rels b(V, W);
          return(:X) := a(X).
        end
        """
        proc = parse_program(source).items[0]
        assert len(proc.locals) == 2


class TestModules:
    def test_figure_1_module(self):
        source = """
        module example;
        export select(:Key);
        from windows import event(:Type, Data);
        from graphics import highlight(Key:), dehighlight(Key:);
        edb element(Key, Origin, P1, P2, DS), tolerance(T);

        proc select(:Key)
        rels possible(Key, D), try(Key), confirmed(Key);
          possible(Key, D) :=
            event(mouse, p(X, Y)) & graphic_search(p(X, Y), Key, D).
          repeat
            try(Key) := possible(Key, D) & D = min(D) & It = arbitrary(Key) &
                        --possible(It, D).
            confirmed(K) := try(K) & highlight(K) & write('This one?') &
                            event(keyboard, KeyBuffer) & dehighlight(K) &
                            KeyBuffer = 'y'.
          until { confirmed(K) | empty(possible(K)) };
          return(:Key) := confirmed(Key).
        end

        graphic_search(p(X, Y), Key, Dist) :-
          element(Key, _, p(Xmin, Ymin), _, _) & tolerance(T) &
          (X - Xmin) * (X - Xmin) + (Y - Ymin) * (Y - Ymin) < T.
        end
        """
        module = parse_module(source)
        assert module.name == "example"
        assert [sig.name for sig in module.exports] == ["select"]
        assert len(module.imports) == 2
        assert {d.name for d in module.edb_decls} == {"element", "tolerance"}
        assert [p.name for p in module.procs] == ["select"]
        assert len(module.rules) == 1

    def test_module_missing_end(self):
        with pytest.raises(ParseError):
            parse_program("module m;\nexport p(:X);")

    def test_multiple_modules(self):
        program = parse_program("module a;\nend\nmodule b;\nend")
        assert [m.name for m in program.modules] == ["a", "b"]

    def test_import_sig_binding_split(self):
        module = parse_module("module m;\nfrom g import highlight(Key:);\nend")
        sig = module.imports[0].sigs[0]
        assert sig.bound == ("Key",) and sig.free == ()

    def test_statement_count(self):
        program = parse_program(TestProcs.PROC)
        assert program.statement_count() == 3


class TestHelpers:
    def test_parse_query(self):
        q = parse_query("path(1, Y)?")
        assert q.pred == Atom("path")
        assert q.args == (Num(1), Var("Y"))

    def test_parse_query_without_question_mark(self):
        assert parse_query("path(1, Y)").args[0] == Num(1)

    def test_parse_ground_fact(self):
        name, row = parse_ground_fact("edge(1, 2).")
        assert name == Atom("edge") and row == (Num(1), Num(2))

    def test_parse_ground_fact_hilog(self):
        name, row = parse_ground_fact("students(cs99)(wilson).")
        assert name == Compound(Atom("students"), (Atom("cs99"),))

    def test_nonground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_ground_fact("edge(X, 2).")

    def test_parse_directive_rel(self):
        assert parse_directive_rel("% rel edge / 2") == (Atom("edge"), 2)
        assert parse_directive_rel("% not a directive") is None

    def test_parse_term_number_functor(self):
        # HiLog: arbitrary terms as functors.
        term = parse_term("0(a)")
        assert term == Compound(Num(0), (Atom("a"),))
