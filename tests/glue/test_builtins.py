"""Unit tests for builtin functions, comparison, arithmetic and I/O procs."""

import io

import pytest

from repro.errors import GlueRuntimeError
from repro.glue.builtins import (
    BUILTIN_PROCS,
    compare_terms,
    eval_function,
    term_arith,
)
from repro.terms.term import Atom, Compound, Num


class TestArith:
    def test_basic_ops(self):
        assert term_arith("+", Num(2), Num(3)) == Num(5)
        assert term_arith("-", Num(2), Num(3)) == Num(-1)
        assert term_arith("*", Num(2), Num(3)) == Num(6)

    def test_division_exact_stays_int(self):
        assert term_arith("/", Num(6), Num(3)) == Num(2)
        assert isinstance(term_arith("/", Num(6), Num(3)).value, int)

    def test_division_inexact_is_float(self):
        assert term_arith("/", Num(7), Num(2)) == Num(3.5)

    def test_division_by_zero(self):
        with pytest.raises(GlueRuntimeError):
            term_arith("/", Num(1), Num(0))

    def test_mod(self):
        assert term_arith("mod", Num(7), Num(3)) == Num(1)
        with pytest.raises(GlueRuntimeError):
            term_arith("mod", Num(7), Num(0))

    def test_non_numeric_rejected(self):
        with pytest.raises(GlueRuntimeError):
            term_arith("+", Atom("a"), Num(1))


class TestCompare:
    def test_equality_structural(self):
        t = Compound(Atom("f"), (Num(1),))
        assert compare_terms("=", t, Compound(Atom("f"), (Num(1),)))
        assert compare_terms("!=", t, Atom("f"))

    def test_numeric_order(self):
        assert compare_terms("<", Num(1), Num(2))
        assert compare_terms(">=", Num(2.0), Num(2))

    def test_atom_lexicographic(self):
        assert compare_terms("<", Atom("apple"), Atom("banana"))

    def test_mixed_types_total_order(self):
        # Numbers sort before atoms in the canonical order.
        assert compare_terms("<", Num(10**9), Atom("a"))
        assert not compare_terms("<", Atom("a"), Num(10**9))

    def test_unknown_op(self):
        with pytest.raises(GlueRuntimeError):
            compare_terms("~", Num(1), Num(2))


class TestFunctions:
    def test_concat(self):
        assert eval_function("concat", (Atom("ab"), Atom("cd"))) == Atom("abcd")

    def test_concat_many(self):
        assert eval_function("concat", (Atom("a"), Atom("b"), Atom("c"))) == Atom("abc")

    def test_length(self):
        assert eval_function("length", (Atom("hello"),)) == Num(5)

    def test_substring_one_based(self):
        assert eval_function("substring", (Atom("hello"), Num(2), Num(3))) == Atom("ell")

    def test_substring_bad_args(self):
        with pytest.raises(GlueRuntimeError):
            eval_function("substring", (Atom("x"), Num(0), Num(1)))

    def test_abs(self):
        assert eval_function("abs", (Num(-3),)) == Num(3)

    def test_to_string_number(self):
        assert eval_function("to_string", (Num(42),)) == Atom("42")

    def test_to_number(self):
        assert eval_function("to_number", (Atom("42"),)) == Num(42)
        assert eval_function("to_number", (Atom("2.5"),)) == Num(2.5)

    def test_to_number_bad(self):
        with pytest.raises(GlueRuntimeError):
            eval_function("to_number", (Atom("nope"),))

    def test_unknown_function(self):
        with pytest.raises(GlueRuntimeError):
            eval_function("frobnicate", (Num(1),))

    def test_arity_checked(self):
        with pytest.raises(GlueRuntimeError):
            eval_function("length", (Atom("a"), Atom("b")))


class _Ctx:
    def __init__(self, inp=""):
        self.out = io.StringIO()
        self.inp = io.StringIO(inp)


class TestIoProcs:
    def test_write_is_fixed(self):
        assert BUILTIN_PROCS[("write", 1)].fixed

    def test_write_set_at_a_time(self):
        # Called once on all bindings; output sorted for determinism.
        ctx = _Ctx()
        rows = [(Atom("b"),), (Atom("a"),)]
        result = BUILTIN_PROCS[("write", 1)].fn(ctx, rows)
        assert ctx.out.getvalue() == "ab"
        assert result == rows  # acts as identity, not a filter

    def test_writeln(self):
        ctx = _Ctx()
        BUILTIN_PROCS[("writeln", 1)].fn(ctx, [(Num(1),)])
        assert ctx.out.getvalue() == "1\n"

    def test_write_atom_unquoted(self):
        ctx = _Ctx()
        BUILTIN_PROCS[("write", 1)].fn(ctx, [(Atom("hello world"),)])
        assert ctx.out.getvalue() == "hello world"

    def test_nl(self):
        ctx = _Ctx()
        BUILTIN_PROCS[("nl", 0)].fn(ctx, [()])
        assert ctx.out.getvalue() == "\n"

    def test_read_line(self):
        ctx = _Ctx("typed input\nnext")
        result = BUILTIN_PROCS[("read_line", 1)].fn(ctx, [()])
        assert result == [(Atom("typed input"),)]
