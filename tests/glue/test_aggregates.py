"""Unit tests for the aggregate operators (paper Section 3.3)."""

import math

import pytest

from repro.errors import GlueRuntimeError
from repro.glue.aggregates import AGGREGATES, apply_aggregate
from repro.terms.term import Atom, Num


def nums(*values):
    return [Num(v) for v in values]


class TestOperators:
    def test_all_eight_present(self):
        assert set(AGGREGATES) == {
            "min", "max", "mean", "sum", "product", "arbitrary", "std_dev", "count",
        }

    def test_min_max_numeric(self):
        assert apply_aggregate("min", nums(3, 1, 2)) == Num(1)
        assert apply_aggregate("max", nums(3, 1, 2)) == Num(3)

    def test_min_max_on_atoms(self):
        values = [Atom("b"), Atom("a"), Atom("c")]
        assert apply_aggregate("min", values) == Atom("a")
        assert apply_aggregate("max", values) == Atom("c")

    def test_sum_and_product(self):
        assert apply_aggregate("sum", nums(1, 2, 3)) == Num(6)
        assert apply_aggregate("product", nums(2, 3, 4)) == Num(24)

    def test_mean(self):
        assert apply_aggregate("mean", nums(1, 2, 3, 4)) == Num(2.5)

    def test_mean_preserves_duplicates(self):
        # Duplicates in the value list are meaningful (the paper's
        # temperature example): mean([10, 10, 40]) != mean({10, 40}).
        assert apply_aggregate("mean", nums(10, 10, 40)) == Num(20)

    def test_std_dev_population(self):
        result = apply_aggregate("std_dev", nums(2, 4, 4, 4, 5, 5, 7, 9))
        assert math.isclose(result.value, 2.0)

    def test_count(self):
        assert apply_aggregate("count", nums(5, 5, 5)) == Num(3)

    def test_count_non_numeric(self):
        assert apply_aggregate("count", [Atom("a"), Atom("b")]) == Num(2)

    def test_arbitrary_deterministic(self):
        assert apply_aggregate("arbitrary", nums(7, 8, 9)) == Num(7)

    def test_single_value(self):
        for op in ("min", "max", "mean", "sum", "product", "std_dev"):
            result = apply_aggregate(op, nums(5))
            assert result.value in (5, 0)  # std_dev of one value is 0

    def test_numeric_ops_reject_atoms(self):
        for op in ("mean", "sum", "product", "std_dev"):
            with pytest.raises(GlueRuntimeError):
                apply_aggregate(op, [Atom("x")])

    def test_empty_group_rejected(self):
        with pytest.raises(GlueRuntimeError):
            apply_aggregate("min", [])

    def test_unknown_operator(self):
        with pytest.raises(GlueRuntimeError):
            apply_aggregate("median", nums(1))
