"""The tracing hub: spans, sinks, determinism and zero-cost-off."""

import io
import json

from repro.core.system import GlueNailSystem
from repro.obs.tracer import CollectingSink, JsonLinesSink, NULL_SPAN, Tracer
from repro.storage.stats import CostCounters


def _system(**kwargs):
    system = GlueNailSystem(**kwargs)
    system.load(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y) & edge(Y, Z).
        """
    )
    system.facts("edge", [(1, 2), (2, 3), (3, 4)])
    return system


class TestTracerCore:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("query", "q") is NULL_SPAN
        assert tracer.span("stmt", "s") is NULL_SPAN

    def test_events_only_reach_sinks_while_enabled(self):
        tracer = Tracer()
        sink = CollectingSink()
        tracer.event("step", "before-sink")  # dropped: disabled
        tracer.add_sink(sink)
        tracer.event("step", "counted")
        tracer.remove_sink(sink)
        tracer.event("step", "after-sink")  # dropped again
        assert [e.name for e in sink.events] == ["counted"]
        assert not tracer.enabled

    def test_span_nesting_assigns_seq_in_program_order(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectingSink())
        with tracer.span("query", "outer"):
            with tracer.span("stmt", "inner-1"):
                pass
            with tracer.span("stmt", "inner-2"):
                pass
        # Sinks see children first (exit order) ...
        assert [e.name for e in sink.events] == ["inner-1", "inner-2", "outer"]
        # ... but seq/depth reconstruct the program-order tree.
        ordered = sorted(sink.events, key=lambda e: e.seq)
        assert [(e.name, e.depth) for e in ordered] == [
            ("outer", 0),
            ("inner-1", 1),
            ("inner-2", 1),
        ]

    def test_span_records_counter_deltas(self):
        counters = CostCounters()
        tracer = Tracer(counters)
        sink = tracer.add_sink(CollectingSink())
        with tracer.span("stmt", "work"):
            counters.inserts += 3
            counters.tuples_scanned += 7
        (event,) = sink.events
        assert event.counters == {"inserts": 3, "tuples_scanned": 7}

    def test_json_lines_sink_emits_one_object_per_line(self):
        stream = io.StringIO()
        tracer = Tracer()
        tracer.add_sink(JsonLinesSink(stream))
        tracer.event("index_build", "r/2 cols=[0]", rows=5)
        with tracer.span("query", "q(X)?") as span:
            span.rows = 1
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["kind"] == "index_build"
        assert first["rows"] == 5
        assert second["kind"] == "query"
        assert second["seq"] > first["seq"]


class TestSystemTracing:
    def test_trace_events_cover_fixpoint_structure(self):
        system = _system(trace=True)
        result = system.query("path(1, Y)?")
        kinds = {e.kind for e in result.trace}
        assert {"query", "stratum", "round", "rule"} <= kinds
        query_events = [e for e in result.trace if e.kind == "query"]
        assert query_events[0].rows == len(result)
        assert query_events[0].attrs["resolution"] == "nail"

    def test_trace_slices_are_per_query(self):
        system = _system(trace=True)
        first = system.query("path(1, Y)?")
        second = system.query("edge(1, Y)?")
        assert first.trace and second.trace
        first_seqs = {e.seq for e in first.trace}
        assert all(e.seq not in first_seqs for e in second.trace)
        assert second.resolution == "edb"

    def test_event_structure_is_deterministic(self):
        def shape(events):
            return [
                (e.kind, e.name, e.rows, dict(e.counters))
                for e in sorted(events, key=lambda e: e.seq)
            ]

        runs = []
        for _ in range(2):
            system = _system(trace=True)
            runs.append(shape(system.query("path(1, Y)?").trace))
        assert runs[0] == runs[1]

    def test_tracing_disabled_leaves_counters_identical(self):
        """Tracing off must not perturb the deterministic cost model."""
        plain = _system()
        plain.query("path(1, Y)?")
        traced = _system(trace=True)
        traced.query("path(1, Y)?")
        assert plain.counters.snapshot() == traced.counters.snapshot()

    def test_disable_tracing_stops_collection(self):
        system = _system()
        system.enable_tracing()
        assert system.query("path(1, Y)?").trace
        system.disable_tracing()
        result = system.query("edge(1, Y)?")
        assert result.trace == []
        assert not system.tracer.enabled

    def test_index_build_emits_event(self):
        system = _system()
        collector = system.enable_tracing()
        relation = system.db.relation("edge", 2)
        relation.build_index((0,))
        (event,) = [e for e in collector.events if e.kind == "index_build"]
        assert event.rows == len(relation)
        assert "edge/2" in event.name and "[0]" in event.name

    def test_materialized_strategy_traces_steps_too(self):
        system = GlueNailSystem(strategy="materialized", trace=True)
        system.load(
            """
            module m;
            export pairs(:X, Y);
            proc pairs(:X, Y)
              return(:X, Y) := edge(X, Y).
            end
            end
            """
        )
        system.facts("edge", [(1, 2), (2, 3)])
        result = system.call("pairs")
        kinds = {e.kind for e in result.trace}
        assert {"call", "proc", "stmt", "step"} <= kinds
        steps = [e for e in result.trace if e.kind == "step"]
        assert all(e.rows is not None for e in steps)
