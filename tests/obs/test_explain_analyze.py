"""EXPLAIN ANALYZE, the CLI trace flags and the REPL profiling commands."""

import io
import json

from repro.core.cli import main as cli_main
from repro.core.repl import Repl
from repro.core.system import GlueNailSystem

RECURSIVE = """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y) & edge(Y, Z).
"""


def _system():
    system = GlueNailSystem()
    system.load(RECURSIVE)
    system.facts("edge", [(1, 2), (2, 3), (3, 4)])
    return system


class TestExplainAnalyze:
    def test_recursive_query_shows_rounds_rows_and_counters(self):
        report = _system().explain_analyze("path(1, Y)?")
        assert "EXPLAIN ANALYZE path(1, Y)?" in report
        assert "resolution: nail   rows: 3" in report
        # Static plan section: the defining rules.
        assert "path(X, Z) :- path(X, Y) & edge(Y, Z)." in report
        # Execution section: per-round / per-rule actual rows + deltas.
        assert "round 0" in report and "round 1" in report
        assert "rule#0 path/2" in report
        assert "rows=" in report and "inserts=" in report

    def test_procedure_query_shows_per_step_rows(self):
        system = GlueNailSystem()
        system.load(
            """
            module m;
            export pairs(:X, Y);
            proc pairs(:X, Y)
              gp(A, C) := parent(A, B) & parent(B, C).
              return(:X, Y) := gp(X, Y).
            end
            end
            """
        )
        system.facts("parent", [("a", "b"), ("b", "c")])
        report = system.explain_analyze("pairs(X, Y)?")
        assert "resolution: procedure" in report
        # The static plan and the execution tree share step labels.
        assert "ASSIGN gp/2" in report
        assert report.count("SCAN parent/2") >= 2  # plan line + step event
        step_lines = [
            line for line in report.splitlines() if line.strip().startswith("step")
        ]
        assert step_lines and all("rows=" in line for line in step_lines)

    def test_cached_second_run_says_so(self):
        system = _system()
        system.query("path(1, Y)?")  # populate the IDB cache
        report = system.explain_analyze("path(1, Y)?")
        assert "idb_cache_hit" in report

    def test_magic_mode(self):
        report = _system().explain_analyze("path(1, Y)?", magic=True)
        assert "resolution: magic" in report
        assert "magic" in report and "rewritten_rules=" in report

    def test_explain_analyze_leaves_tracing_off(self):
        system = _system()
        system.explain_analyze("path(1, Y)?")
        assert not system.tracer.enabled
        assert system.query("edge(1, Y)?").trace == []


class TestCli:
    def _program(self, tmp_path):
        path = tmp_path / "prog.glue"
        path.write_text(RECURSIVE + "edge(1, 2).\nedge(2, 3).\n")
        return str(path)

    def test_explain_analyze_flag(self, tmp_path, capsys):
        assert cli_main(["query", self._program(tmp_path), "path(1, Y)?",
                         "--explain-analyze"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "Execution" in out and "round 0" in out

    def test_trace_json_flag_writes_one_event_per_line(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        assert cli_main(["query", self._program(tmp_path), "path(1, Y)?",
                         "--trace-json", str(trace_file)]) == 0
        events = [json.loads(line) for line in trace_file.read_text().splitlines()]
        assert events
        assert {"seq", "depth", "kind", "name", "rows", "dur_ms", "counters"} <= set(
            events[0]
        )
        assert any(e["kind"] == "query" for e in events)


class TestReplProfiling:
    def _run(self, lines):
        out = io.StringIO()
        repl = Repl(out=out)
        for line in lines:
            repl.feed(line + "\n")
        return out.getvalue()

    def test_profile_and_last(self):
        output = self._run(
            [
                "edge(1, 2).",
                "edge(2, 3).",
                "path(X, Y) :- edge(X, Y).",
                "path(X, Z) :- path(X, Y) & edge(Y, Z).",
                ".profile on",
                "path(1, Y)?",
                ".last",
                ".profile off",
            ]
        )
        assert "profiling on" in output
        assert "resolution: nail" in output
        assert "trace:" in output and "round 0" in output
        assert "profiling off" in output

    def test_last_without_queries(self):
        assert "(no query has run yet)" in self._run([".last"])

    def test_last_without_profiling_shows_stats_only(self):
        output = self._run(["edge(1, 2).", "edge(X, Y)?", ".last"])
        assert "resolution: edb" in output
        assert "trace:" not in output

    def test_analyze_command(self):
        output = self._run(
            [
                "edge(1, 2).",
                "path(X, Y) :- edge(X, Y).",
                ".analyze path(X, Y)?",
            ]
        )
        assert "EXPLAIN ANALYZE" in output
        assert "Execution" in output
