"""Tests for the LDL-style extensional set baseline (paper Section 8.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.extensional_sets import (
    ExtensionalSetError,
    flatten_set_of_sets,
    ldl_group,
    make_set,
    set_elements,
    set_member,
    set_union,
    set_unify,
    sets_equal_extensional,
)
from repro.terms.term import Atom, Compound, Num, Var


class TestMakeSet:
    def test_canonical_sorted_dedup(self):
        assert make_set([3, 1, 3, 2]) == make_set([1, 2, 3])

    def test_empty_set(self):
        empty = make_set([])
        assert set_elements(empty) == ()

    def test_elements_must_be_ground(self):
        with pytest.raises(ExtensionalSetError):
            make_set([Var("X")])

    def test_mixed_types(self):
        s = make_set(["b", 1, "a"])
        assert len(set_elements(s)) == 3


class TestOperations:
    def test_member(self):
        s = make_set([1, 2, 3])
        assert set_member(2, s)
        assert not set_member(9, s)

    def test_union(self):
        assert set_union(make_set([1, 2]), make_set([2, 3])) == make_set([1, 2, 3])

    def test_extensional_equality(self):
        assert sets_equal_extensional(make_set([2, 1]), make_set([1, 2]))
        assert not sets_equal_extensional(make_set([1]), make_set([1, 2]))

    def test_flatten_set_of_sets(self):
        # "These sets of sets then have to be explicitly flattened."
        nested = make_set([make_set([1, 2]), make_set([2, 3])])
        assert flatten_set_of_sets(nested) == make_set([1, 2, 3])


class TestSetUnification:
    def test_ground_sets_unify_iff_equal(self):
        assert set_unify(make_set([1, 2]), make_set([2, 1])) == {}
        assert set_unify(make_set([1]), make_set([2])) is None

    def test_variable_binds_whole_set(self):
        s = make_set([1, 2])
        assert set_unify(Var("S"), s) == {"S": s}

    def test_element_variables(self):
        pattern = Compound(Atom("$set"), (Num(1), Var("X")))
        result = set_unify(pattern, make_set([1, 2]))
        assert result == {"X": Num(2)}

    def test_element_variable_backtracking(self):
        # X must avoid the element claimed by the constant 2.
        pattern = Compound(Atom("$set"), (Var("X"), Num(2)))
        result = set_unify(pattern, make_set([1, 2]))
        assert result == {"X": Num(1)}

    def test_cardinality_mismatch(self):
        pattern = Compound(Atom("$set"), (Var("X"),))
        assert set_unify(pattern, make_set([1, 2])) is None

    def test_shared_variables_constrain(self):
        pattern = Compound(Atom("$set"), (Var("X"), Var("X")))
        # Canonical ground sets never repeat elements, so this cannot match
        # a two-element set.
        assert set_unify(pattern, make_set([1, 2])) is None


class TestLdlGroup:
    def test_grouping(self):
        rows = [
            (Atom("cs1"), Atom("ann")),
            (Atom("cs1"), Atom("bob")),
            (Atom("cs2"), Atom("cat")),
        ]
        grouped = ldl_group(rows, key_positions=(0,), value_position=1)
        assert grouped == [
            (Atom("cs1"), make_set(["ann", "bob"])),
            (Atom("cs2"), make_set(["cat"])),
        ]

    def test_empty(self):
        assert ldl_group([], (0,), 1) == []

    def test_deterministic_order(self):
        rows = [(Num(2), Num(20)), (Num(1), Num(10))]
        grouped = ldl_group(rows, (0,), 1)
        assert [g[0] for g in grouped] == [Num(1), Num(2)]


@given(
    st.lists(st.integers(0, 8), max_size=10),
    st.lists(st.integers(0, 8), max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_property_equality_matches_python_sets(left, right):
    assert sets_equal_extensional(make_set(left), make_set(right)) == (
        set(left) == set(right)
    )


@given(st.lists(st.integers(0, 8), max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_ground_unification_is_equality(elements):
    s = make_set(elements)
    assert set_unify(s, s) == {}
