"""MVCC snapshot reads: copy-on-write freezing, the version store's
publish/pin protocol, the snapshot router, and the differential property
that a pinned snapshot's answers never change while writers commit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import GlueNailSystem
from repro.errors import GlueRuntimeError
from repro.mvcc import SnapshotRouter, VersionStore
from repro.storage.relation import Relation
from repro.storage.stats import COUNTER_FIELDS
from repro.terms.term import mk

PATH_RULES = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z)."

# Counter positions that must stay bit-identical across repeated snapshot
# queries (everything except the snapshot bookkeeping itself, which by
# design ticks once per pinned read).
_STABLE = tuple(
    i for i, name in enumerate(COUNTER_FIELDS) if not name.startswith("snapshot_")
)


def lift(*values):
    return tuple(mk(v) for v in values)


def stable_counters(system):
    snapshot = system.counters.as_tuple()
    return tuple(snapshot[i] for i in _STABLE)


class TestFreeze:
    def rel(self, rows=((1, 2), (2, 3))):
        rel = Relation(mk("edge"), 2)
        for row in rows:
            rel.insert(lift(*row))
        return rel

    def test_frozen_clone_is_immutable(self):
        frozen = self.rel().freeze()
        with pytest.raises(ValueError):
            frozen.insert(lift(9, 9))
        with pytest.raises(ValueError):
            frozen.delete(lift(1, 2))
        with pytest.raises(ValueError):
            frozen.clear()

    def test_mutating_live_does_not_change_the_clone(self):
        live = self.rel()
        frozen = live.freeze()
        live.insert(lift(3, 4))
        live.delete(lift(1, 2))
        assert frozen.sorted_rows() == [lift(1, 2), lift(2, 3)]
        assert live.sorted_rows() == [lift(2, 3), lift(3, 4)]

    def test_clone_shares_uid_and_version_with_the_live_relation(self):
        live = self.rel()
        frozen = live.freeze()
        # Same fingerprint => version-keyed caches (incremental IDB,
        # columnar kernels) treat the snapshot as live-at-that-version.
        assert frozen.fingerprint == live.fingerprint
        live.insert(lift(3, 4))
        assert frozen.fingerprint != live.fingerprint

    def test_freeze_is_cached_until_the_next_mutation(self):
        live = self.rel()
        first = live.freeze()
        assert live.freeze() is first
        live.insert(lift(3, 4))
        assert live.freeze() is not first


class TestVersionStore:
    def system(self):
        system = GlueNailSystem().load(PATH_RULES)
        system.facts("edge", [(1, 2), (2, 3)])
        return system

    def test_pin_outside_a_window_snapshots_now(self):
        system = self.system()
        store = VersionStore(system.db)
        snap = store.pin()
        assert snap is not None
        assert snap.db_version == system.db.version
        assert snap.get("edge", 2).sorted_rows() == [lift(1, 2), lift(2, 3)]
        assert system.counters.snapshot_pins == 1

    def test_pin_inside_a_window_serves_the_previous_version(self):
        system = self.system()
        store = VersionStore(system.db)
        before = store.pin()
        store.begin_window()
        system.facts("edge", [(3, 4)])
        mid = store.pin()
        assert mid is before, "mid-window pins see the last published state"
        assert mid.get("edge", 2).sorted_rows() == [lift(1, 2), lift(2, 3)]
        store.publish()
        after = store.pin()
        assert after is not before
        assert len(after.get("edge", 2)) == 3

    def test_pin_with_nothing_published_falls_back(self):
        system = self.system()
        store = VersionStore(system.db)
        store.begin_window()
        assert store.pin() is None
        assert system.counters.snapshot_fallbacks == 1
        store.publish()
        assert store.pin() is not None

    def test_windows_nest(self):
        system = self.system()
        store = VersionStore(system.db)
        store.begin_window()
        store.begin_window()
        store.publish()
        assert store.window_open()
        store.publish()
        assert not store.window_open()

    def test_stats_shape(self):
        store = VersionStore(self.system().db)
        store.pin()
        stats = store.stats()
        assert stats["published_relations"] >= 1
        assert stats["publishes"] >= 1
        assert stats["window_open"] is False


class TestSnapshotRouter:
    def pinned_router(self):
        system = GlueNailSystem()
        system.facts("edge", [(1, 2)])
        store = system.enable_snapshots()
        router = system.db
        assert isinstance(router, SnapshotRouter)
        return system, router, store

    def test_pinned_reads_resolve_against_the_snapshot(self):
        system, router, store = self.pinned_router()
        snap = store.pin()
        system.facts("edge", [(2, 3)])
        with router.pinned(snap):
            assert router.snapshot_active
            assert router.version == snap.db_version
            assert len(router.get("edge", 2)) == 1
            assert router.total_rows() == 1
        assert not router.snapshot_active
        assert len(router.get("edge", 2)) == 2

    def test_relations_born_after_the_snapshot_read_as_empty(self):
        system, router, store = self.pinned_router()
        snap = store.pin()
        system.facts("fresh", [(7,)])
        with router.pinned(snap):
            placeholder = router.get("fresh", 1)
            assert placeholder is not None and len(placeholder) == 0
            with pytest.raises(ValueError):
                placeholder.insert(lift(8))  # snapshots never absorb writes
            assert ("fresh", 1) not in router
        assert len(router.get("fresh", 1)) == 1

    def test_mutations_always_land_on_the_live_database(self):
        system, router, store = self.pinned_router()
        snap = store.pin()
        with router.pinned(snap):
            system.facts("edge", [(5, 6)])
            assert len(router.get("edge", 2)) == 1, "pin still reads v0"
        assert len(router.get("edge", 2)) == 2


class TestSystemSnapshots:
    def test_enable_snapshots_is_idempotent(self):
        system = GlueNailSystem()
        store = system.enable_snapshots()
        assert system.enable_snapshots() is store

    def test_snapshot_query_is_isolated_and_counted(self):
        system = GlueNailSystem().load(PATH_RULES)
        system.facts("edge", [(1, 2), (2, 3)])
        system.enable_snapshots()
        with system.snapshot():
            system.facts("edge", [(3, 4)])  # a "concurrent" writer
            result = system.query("path(1, X)?")
            assert set(result) == {lift(1, 2), lift(1, 3)}
            assert result.stats.counters["snapshot_reads"] == 1
        assert set(system.query("path(1, X)?")) == {
            lift(1, 2), lift(1, 3), lift(1, 4),
        }

    def test_snapshot_raises_while_a_window_is_open_unpublished(self):
        system = GlueNailSystem()
        system.facts("edge", [(1, 2)])
        store = system.enable_snapshots()
        # Drain the published snapshot, then open a window before anything
        # else publishes: nothing consistent exists to pin.
        store.begin_window()
        system.facts("edge", [(2, 3)])
        store._published = None
        with pytest.raises(GlueRuntimeError):
            with system.snapshot():
                pass
        store.publish()
        with system.snapshot():
            assert len(system.rows("edge", 2)) == 2


class TestDifferential:
    """Satellite: a pinned snapshot's query results -- rows AND cost
    counters -- are bit-identical before, during, and after concurrent
    writer commits; subscriptions agree on versions; rollbacks are
    invisible."""

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=12,
        ),
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.booleans(),  # True = insert, False = delete
                    st.integers(0, 6),
                    st.integers(0, 6),
                ),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(deadline=None, max_examples=20)
    def test_pinned_answers_never_move(self, edges, batches):
        system = GlueNailSystem().load(PATH_RULES)
        system.enable_transactions()
        system.facts("edge", edges)
        store = system.enable_snapshots()
        notes = []
        sub = system.subscribe(
            "edge", 2, callback=lambda note: notes.append(note)
        )

        snap = store.pin()
        with system.db.pinned(snap):
            baseline = set(system.query("path(X, Y)?"))
            # Second run hits the incremental-IDB cache; its counter
            # delta is the steady-state cost every later re-query under
            # this pin must reproduce exactly.
            before = stable_counters(system)
            assert set(system.query("path(X, Y)?")) == baseline
            steady = tuple(
                b - a for a, b in zip(before, stable_counters(system))
            )

        for batch in batches:
            system.begin()
            for insert, a, b in batch:
                if insert:
                    system.fact("edge", a, b)
                else:
                    system.db.relation(mk("edge"), 2).delete(lift(a, b))
            system.commit()
            with system.db.pinned(snap):
                before = stable_counters(system)
                assert set(system.query("path(X, Y)?")) == baseline
                delta = tuple(
                    b - a for a, b in zip(before, stable_counters(system))
                )
                assert delta == steady, "writer commits changed pinned costs"

        # Rolled-back work is invisible everywhere: snapshot, live, subs.
        live_before = set(system.query("path(X, Y)?"))
        seen_notes = len(notes)
        system.begin()
        system.facts("edge", [(5, 0), (6, 1)])
        system.rollback()
        assert set(system.query("path(X, Y)?")) == live_before
        assert len(notes) == seen_notes
        with system.db.pinned(snap):
            assert set(system.query("path(X, Y)?")) == baseline

        # Every committed notification is stamped with a published version
        # a reader could actually pin, and seqs are consecutive.
        assert [note.seq for note in notes] == list(range(1, len(notes) + 1))
        fresh = store.pin()
        for note in notes:
            assert 0 < note.version <= fresh.db_version
            assert note.payload()["version"] == note.version
        if notes:
            assert sub.version == notes[-1].version
