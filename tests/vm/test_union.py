"""Tests for body disjunction ``{ c1 | c2 }`` (the footnote-5 extension)."""

import pytest

from repro.core.query import rows_to_python
from repro.errors import CompileError
from tests.conftest import make_system


def run(source, facts=None, **kwargs):
    system = make_system(source, **kwargs)
    for name, rows in (facts or {}).items():
        system.facts(name, rows)
    system.compile()
    system.run_script()
    return system


class TestUnionSemantics:
    def test_basic_union(self):
        system = run(
            "contact(P, V) := person(P) & { email(P, V) | phone(P, V) }.",
            facts={
                "person": [("ann",), ("bob",)],
                "email": [("ann", "a@x")],
                "phone": [("ann", "555"), ("bob", "666")],
            },
        )
        assert sorted(rows_to_python(system.relation_rows("contact", 2))) == [
            ("ann", "555"), ("ann", "a@x"), ("bob", "666"),
        ]

    def test_overlapping_alternatives_dedup(self):
        system = run(
            "out(X) := seed(X) & { a(X) | b(X) }.",
            facts={"seed": [(1,), (2,)], "a": [(1,)], "b": [(1,), (2,)]},
        )
        assert rows_to_python(system.relation_rows("out", 1)) == [(1,), (2,)]

    def test_alternatives_with_filters(self):
        system = run(
            "sized(X, C) := n(X) & { X < 5 & C = small(X) | X >= 5 & C = big(X) }.",
            facts={"n": [(1,), (9,)]},
        )
        rows = sorted(rows_to_python(system.relation_rows("sized", 2)))
        assert rows == [(1, ("small", 1)), (9, ("big", 9))]

    def test_union_then_join(self):
        system = run(
            "out(X, Y) := { a(X) | b(X) } & follow(X, Y).",
            facts={"a": [(1,)], "b": [(2,)], "follow": [(1, 10), (2, 20), (3, 30)]},
        )
        assert sorted(rows_to_python(system.relation_rows("out", 2))) == [
            (1, 10), (2, 20),
        ]

    def test_three_alternatives(self):
        system = run(
            "out(X) := { a(X) | b(X) | c(X) }.",
            facts={"a": [(1,)], "b": [(2,)], "c": [(3,)]},
        )
        assert len(system.relation_rows("out", 1)) == 3

    def test_empty_alternative_contributes_nothing(self):
        system = run(
            "out(X) := { a(X) | never(X) }.",
            facts={"a": [(1,)]},
        )
        assert rows_to_python(system.relation_rows("out", 1)) == [(1,)]

    def test_strategies_agree(self):
        source = "out(X, V) := seed(X) & { a(X, V) | b(X, V) & V != 0 }."
        facts = {
            "seed": [(i,) for i in range(5)],
            "a": [(i, i * 2) for i in range(5)],
            "b": [(i, i % 2) for i in range(5)],
        }
        left = run(source, facts, strategy="pipelined")
        right = run(source, facts, strategy="materialized")
        assert left.relation_rows("out", 2) == right.relation_rows("out", 2)

    def test_nested_union(self):
        system = run(
            "out(X) := { a(X) | { b(X) | c(X) } }.",
            facts={"a": [(1,)], "b": [(2,)], "c": [(3,)]},
        )
        assert len(system.relation_rows("out", 1)) == 3

    def test_negation_inside_alternative(self):
        system = run(
            "out(X) := n(X) & { even_marker(X) | !even_marker(X) & X > 5 }.",
            facts={"n": [(2,), (3,), (7,)], "even_marker": [(2,)]},
        )
        assert sorted(rows_to_python(system.relation_rows("out", 1))) == [(2,), (7,)]


class TestUnionErrors:
    def test_alternatives_must_bind_same_vars(self):
        with pytest.raises(CompileError, match="same"):
            run("out(X, Y) := seed(X) & { a(X, Y) | b(X) }.", facts={"seed": []})

    def test_no_updates_inside(self):
        with pytest.raises(CompileError, match="disjunction"):
            run("out(X) := seed(X) & { ++log(X) | a(X) }.", facts={"seed": []})

    def test_no_aggregates_inside(self):
        with pytest.raises(CompileError):
            run("out(X, M) := seed(X) & { M = max(X) | a(X, M) }.", facts={"seed": []})

    def test_rejected_in_nail_rules(self):
        from repro.errors import UnsafeRuleError

        system = make_system("p(X) :- { a(X) | b(X) }.")
        with pytest.raises(UnsafeRuleError):
            system.idb_rows("p", 1)
