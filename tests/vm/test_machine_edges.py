"""Edge-case tests for the virtual machine runtime."""

import pytest

from repro.core.query import rows_to_python
from repro.errors import GlueRuntimeError
from repro.terms.term import Atom, Num
from repro.vm.machine import ExecContext, Frame
from tests.conftest import make_system


class TestExecContext:
    def test_strategy_validated(self):
        with pytest.raises(ValueError):
            ExecContext(strategy="quantum")

    def test_default_database_created(self):
        ctx = ExecContext()
        assert ctx.db is not None
        assert ctx.counters is ctx.db.counters


class TestFrames:
    def test_in_outside_procedure_is_an_ordinary_name(self):
        # 'in' and 'return' are special only inside procedures; at script
        # level they resolve like any other (implicitly EDB) relation.
        system = make_system("out(X) := in(X).")
        system.facts("in", [(7,)])
        system.run_script()
        assert rows_to_python(system.relation_rows("out", 1)) == [(7,)]

    def test_return_head_outside_procedure_rejected(self):
        from repro.errors import CompileError

        with pytest.raises(CompileError, match="outside"):
            make_system("return(:X) := a(X).").compile()

    def test_reading_return_inside_procedure(self):
        # Reading the return relation mid-procedure is legal.
        system = make_system(
            """
            proc accrete(:X)
            rels tmp(V);
              tmp(X) := seed(X).
              return(:X) := tmp(X).
              return(:X) += return(Y) & X = Y + 1.
            end
            """
        )
        system.facts("seed", [(1,)])
        rows = sorted(rows_to_python(system.call("accrete")))
        assert rows == [(1,)]  # first return already exited


class TestUpdateEdges:
    def test_insert_with_anonymous_rejected(self):
        system = make_system("out(X) := a(X) & ++log(X, _).")
        system.facts("a", [(1,)])
        with pytest.raises(GlueRuntimeError, match="ground"):
            system.run_script()

    def test_update_applies_once_per_distinct_instantiation(self):
        system = make_system("out(X) := a(X, _) & ++log(X).")
        system.facts("a", [(1, 10), (1, 20), (2, 30)])
        system.run_script()
        assert len(system.relation_rows("log", 1)) == 2

    def test_update_on_local_relation(self):
        system = make_system(
            """
            proc p(:X)
            rels mine(V);
              mine(1) := true.
              out__() := mine(V) & --mine(V).
              return(:X) := mine(X).
            end
            """
        )
        assert system.call("p") == []

    def test_cannot_update_nail_predicate(self):
        from repro.errors import CompileError

        system = make_system(
            """
            derived(X) :- base(X).
            out(X) := a(X) & ++derived(X).
            """
        )
        # Caught statically: NAIL! predicates are not updatable relations.
        with pytest.raises(CompileError, match="relation"):
            system.compile()


class TestNailViewFromGlue:
    def test_demand_only_rule_via_glue_subgoal(self):
        # graphic_search-style rule: only evaluable when the caller binds
        # the first argument -- through a Glue body subgoal.
        system = make_system(
            """
            shifted(X, Y) :- offset(D) & Y = X + D.
            proc probe(X:Y)
              return(X:Y) := in(X) & shifted(X, Y).
            end
            """
        )
        system.facts("offset", [(10,), (20,)])
        rows = sorted(rows_to_python(system.call("probe", [(1,), (2,)])))
        assert rows == [(1, 11), (1, 21), (2, 12), (2, 22)]

    def test_demand_rule_negated(self):
        system = make_system(
            """
            shifted(X, Y) :- offset(D) & Y = X + D.
            proc gaps(X:)
              return(X:) := in(X) & !shifted(X, 11).
            end
            """
        )
        system.facts("offset", [(10,)])
        rows = sorted(rows_to_python(system.call("gaps", [(1,), (2,)])))
        assert rows == [(2,)]  # 1+10=11 matches, so 1 is filtered out

    def test_full_materialization_of_demand_rule_rejected(self):
        system = make_system("shifted(X, Y) :- offset(D) & Y = X + D.")
        system.facts("offset", [(10,)])
        from repro.errors import UnsafeRuleError

        with pytest.raises(UnsafeRuleError):
            system.idb_rows("shifted", 2)

    def test_demand_cache_invalidated_on_edb_change(self):
        system = make_system(
            """
            shifted(X, Y) :- offset(D) & Y = X + D.
            """
        )
        system.facts("offset", [(10,)])
        assert rows_to_python(system.query("shifted(1, Y)?")) == [(1, 11)]
        system.facts("offset", [(100,)])
        rows = sorted(rows_to_python(system.query("shifted(1, Y)?")))
        assert rows == [(1, 11), (1, 101)]


class TestZeroArity:
    def test_zero_arity_proc_chain(self):
        system = make_system(
            """
            proc first(:)
              step(1) += true.
              return(:) := true.
            end
            proc second(:)
              step(2) += true.
              return(:) := true.
            end
            proc both(:)
            rels done();
              done() := first() & second().
              return(:) := done().
            end
            """
        )
        assert system.call("both") == [()]
        assert len(system.relation_rows("step", 1)) == 2

    def test_failed_zero_arity_call_stops_chain(self):
        system = make_system(
            """
            proc never(:)
            rels nothing();
              return(:) := nothing().
            end
            proc after(:)
              marker(1) += true.
              return(:) := true.
            end
            proc chain(:)
            rels done();
              done() := never() & after().
              return(:) := done().
            end
            """
        )
        assert system.call("chain") == []
        # after() never ran: the empty result stopped the conjunction.
        assert system.relation_rows("marker", 1) == []
