"""Pipelined vs. materialized execution (paper Section 9).

The two strategies must produce identical results; they differ only in
costs -- pipeline breaks, materializations, duplicate-elimination work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import rows_to_python
from repro.vm.plan import AggStep, CallStep, ScanStep, UpdateStep
from tests.conftest import make_system


def run_both(source, facts, check_rel, arity, procs=()):
    results = {}
    counters = {}
    for strategy in ("pipelined", "materialized"):
        system = make_system(source, strategy=strategy)
        for name, rows in facts.items():
            system.facts(name, rows)
        system.compile()
        system.reset_counters()
        for proc, inputs in procs:
            system.call(proc, inputs)
        if not procs:
            system.run_script()
        results[strategy] = sorted(rows_to_python(system.relation_rows(check_rel, arity)))
        counters[strategy] = system.counters.snapshot()
    return results, counters


CHAIN = {
    "a": [(i, i + 1) for i in range(12)],
    "b": [(i, i + 2) for i in range(12)],
    "c": [(i, i % 3) for i in range(12)],
}


class TestEquivalence:
    def test_join_chain(self):
        results, _ = run_both(
            "out(X, W) := a(X, Y) & b(Y, Z) & c(Z, W).", CHAIN, "out", 2
        )
        assert results["pipelined"] == results["materialized"]
        assert results["pipelined"]  # non-trivial

    def test_aggregate_statement(self):
        results, _ = run_both(
            "out(C, M) := c(X, C) & group_by(C) & M = count(X).", CHAIN, "out", 2
        )
        assert results["pipelined"] == results["materialized"]

    def test_procedure_with_loop(self):
        source = """
        proc tc_e(X:Y)
        rels connected(X, Y);
          connected(X, Y) := in(X) & e(X, Y).
          repeat
            connected(X, Y) += connected(X, Z) & e(Z, Y).
          until unchanged(connected(_, _));
          return(X:Y) := connected(X, Y).
        end
        out(X, Y) := start(X) & tc_e(X, Y).
        """
        facts = {"e": [(1, 2), (2, 3), (3, 1)], "start": [(1,)]}
        results, _ = run_both(source, facts, "out", 2)
        assert results["pipelined"] == results["materialized"]
        assert results["pipelined"] == [[1, 1], [1, 2], [1, 3]] or results[
            "pipelined"
        ] == [(1, 1), (1, 2), (1, 3)]

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_random_joins(self, a_rows, b_rows):
        source = """
        out(X, Z) := a(X, Y) & b(Y, Z) & X <= Z.
        agg(Y, N) := a(X, Y) & group_by(Y) & N = count(X).
        """
        facts = {"a": a_rows, "b": b_rows}
        results, _ = run_both(source, facts, "out", 2)
        assert results["pipelined"] == results["materialized"]


class TestCosts:
    def test_no_breaks_without_fixed_subgoals(self):
        _, counters = run_both(
            "out(X, W) := a(X, Y) & b(Y, Z) & c(Z, W).", CHAIN, "out", 2
        )
        assert counters["pipelined"]["pipeline_breaks"] == 0

    def test_aggregator_forces_break(self):
        _, counters = run_both(
            "out(M) := a(X, Y) & M = max(Y).", CHAIN, "out", 1
        )
        assert counters["pipelined"]["pipeline_breaks"] == 1

    def test_update_forces_break(self):
        _, counters = run_both(
            "out(X) := a(X, Y) & ++log(X).", CHAIN, "out", 1
        )
        assert counters["pipelined"]["pipeline_breaks"] >= 1

    def test_materialized_strategy_materializes_every_step(self):
        _, counters = run_both(
            "out(X, W) := a(X, Y) & b(Y, Z) & c(Z, W).", CHAIN, "out", 2
        )
        # Pipelined: one final materialization; materialized: one per step.
        assert (
            counters["materialized"]["materializations"]
            > counters["pipelined"]["materializations"]
        )

    def test_pipelined_cheaper_on_selective_chain(self):
        # A selective filter late in the chain: pipelining avoids storing
        # the intermediate join results.
        source = "out(X, W) := a(X, Y) & b(Y, Z) & c(Z, W) & W = 0."
        _, counters = run_both(source, CHAIN, "out", 2)
        assert (
            counters["pipelined"]["materialized_tuples"]
            < counters["materialized"]["materialized_tuples"]
        )


class TestDedupAtBreaks:
    SOURCE = "out(M) := pairs(X, _) & pairs(X, _) & M = count(X)."

    def test_dedup_flag_preserves_results(self):
        facts = {"pairs": [(1, i) for i in range(6)] + [(2, 0)]}
        for dedup in (True, False):
            system = make_system(self.SOURCE, dedup_on_break=dedup)
            system.facts("pairs", facts["pairs"])
            system.run_script()
            assert rows_to_python(system.relation_rows("out", 1)) == [(2,)]

    def test_dedup_removes_duplicates_at_break(self):
        facts = [(1, i) for i in range(6)]
        system = make_system(self.SOURCE, dedup_on_break=True)
        system.facts("pairs", facts)
        system.compile()
        system.reset_counters()
        system.run_script()
        assert system.counters.dedup_removed > 0


class TestPlanShapes:
    def test_plan_step_kinds(self):
        system = make_system(
            """
            proc p(:X)
              return(:X) := a(X, Y) & M = max(Y) & ++log(X) & helper(X, Z).
            end
            proc helper(X:Z)
              return(X:Z) := in(X) & Z = X.
            end
            """
        )
        compiled = system.compile()
        proc = compiled.find_proc("p", 1)
        plan = proc.body[0].plan
        kinds = [type(step).__name__ for step in plan]
        assert "ScanStep" in kinds      # in(...) and a(X, Y)
        assert "AggStep" in kinds
        assert "UpdateStep" in kinds
        assert "CallStep" in kinds

    def test_barriers_marked(self):
        assert AggStep.is_barrier and CallStep.is_barrier and UpdateStep.is_barrier
        assert not ScanStep.is_barrier
