"""Execution tests for HiLog features in Glue: predicate variables,
dynamic heads, compile-time dereferencing vs. run-time dispatch."""

import pytest

from repro.baselines.runtime_dispatch import make_runtime_dispatch_system
from repro.core.query import rows_to_python
from repro.errors import GlueRuntimeError
from repro.terms.term import Atom, Compound
from repro.vm.plan import DynamicStep, ScanStep
from tests.conftest import make_system


def set_name(base, param):
    return Compound(Atom(base), (Atom(param),))


class TestPredicateVariables:
    SOURCE = """
    proc members(S:X)
      return(S:X) := in(S) & S(X).
    end
    """

    def test_reads_named_relation(self):
        system = make_system(self.SOURCE)
        system.facts("reds", [("apple",), ("cherry",)])
        rows = system.call("members", [(Atom("reds"),)])
        assert sorted(rows_to_python(rows)) == [("reds", "apple"), ("reds", "cherry")]

    def test_reads_compound_named_relation(self):
        system = make_system(self.SOURCE)
        system.db.relation(set_name("students", "cs99"), 1).insert((Atom("wilson"),))
        rows = system.call("members", [(set_name("students", "cs99"),)])
        assert rows_to_python(rows) == [(("students", "cs99"), "wilson")]

    def test_two_sets_in_one_body(self):
        system = make_system(
            """
            proc common(S, T:X)
              return(S, T:X) := in(S, T) & S(X) & T(X).
            end
            """
        )
        system.facts("a", [(1,), (2,)])
        system.facts("b", [(2,), (3,)])
        rows = system.call("common", [(Atom("a"), Atom("b"))])
        assert rows_to_python(rows) == [("a", "b", 2)]

    def test_pred_var_over_nail_predicate(self):
        system = make_system(
            self.SOURCE
            + """
            doubled(X) :- base(X).
            """
        )
        system.facts("base", [(5,)])
        rows = system.call("members", [(Atom("doubled"),)])
        assert rows_to_python(rows) == [("doubled", 5)]

    def test_dynamic_call_to_procedure_rejected(self):
        system = make_runtime_dispatch_system()
        system.load(
            self.SOURCE
            + """
            proc victim(:X)
              return(:X) := true & X = 1.
            end
            """
        )
        with pytest.raises(GlueRuntimeError, match="dynamic call"):
            system.call("members", [(Atom("victim"),)])


class TestDispatchModes:
    SOURCE = """
    proc members(S:X)
      return(S:X) := in(S) & S(X).
    end
    """

    def _plan_step(self, system):
        compiled = system.compile()
        proc = compiled.find_proc("members", 2)
        return proc.body[0].plan[-1]

    def test_compile_time_deref_emits_scan(self):
        system = make_system(self.SOURCE)
        assert isinstance(self._plan_step(system), ScanStep)

    def test_runtime_dispatch_emits_dynamic(self):
        system = make_runtime_dispatch_system()
        system.load(self.SOURCE)
        assert isinstance(self._plan_step(system), DynamicStep)

    def test_both_modes_agree(self):
        fast = make_system(self.SOURCE)
        slow = make_runtime_dispatch_system()
        slow.load(self.SOURCE)
        for system in (fast, slow):
            system.facts("reds", [("apple",)])
        assert rows_to_python(fast.call("members", [(Atom("reds"),)])) == \
            rows_to_python(slow.call("members", [(Atom("reds"),)]))

    def test_dynamic_step_is_barrier(self):
        slow = make_runtime_dispatch_system()
        slow.load(self.SOURCE)
        slow.facts("reds", [("apple",)])
        slow.compile()
        slow.reset_counters()
        slow.call("members", [(Atom("reds"),)])
        assert slow.counters.pipeline_breaks >= 1


class TestDynamicHeads:
    def test_insert_into_computed_relation(self):
        system = make_system(
            """
            proc shard(:)
              bucket(K)(V) := data(K, V).
              return(:) := true.
            end
            """
        )
        system.facts("data", [("a", 1), ("a", 2), ("b", 3)])
        system.call("shard")
        a_rows = system.db.get(set_name("bucket", "a"), 1)
        b_rows = system.db.get(set_name("bucket", "b"), 1)
        assert len(a_rows) == 2 and len(b_rows) == 1

    def test_clearing_assignment_per_target(self):
        system = make_system(
            """
            proc reshard(:)
              bucket(K)(V) := data(K, V).
              return(:) := true.
            end
            """
        )
        stale = set_name("bucket", "a")
        system.db.relation(stale, 1).insert((Atom("stale"),))
        system.facts("data", [("a", 1)])
        system.call("reshard")
        rows = rows_to_python(system.db.get(stale, 1).sorted_rows())
        assert rows == [(1,)]  # stale tuple cleared by := on that target

    def test_variable_head_name_must_be_bound(self):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            system = make_system("S(X) := data(X).")
            system.compile()
