"""Tests for the flat-pattern fast scan path."""

import pytest

from repro.core.query import rows_to_python
from repro.vm.plan import ScanStep
from tests.conftest import make_system


def scan_steps(system, proc_name, arity):
    compiled = system.compile()
    proc = compiled.find_proc(proc_name, arity)
    return [s for s in proc.body[0].plan if isinstance(s, ScanStep)]


class TestFlatDetection:
    def test_plain_vars_are_flat(self):
        system = make_system(
            """
            proc p(:X, Y)
              return(:X, Y) := data(X, Y).
            end
            """
        )
        steps = scan_steps(system, "p", 2)
        data_scan = steps[-1]
        assert data_scan.flat_extract is not None

    def test_constants_and_bound_vars_are_flat(self):
        system = make_system(
            """
            proc p(X:Y)
              return(X:Y) := in(X) & data(X, 1, Y).
            end
            """
        )
        data_scan = scan_steps(system, "p", 2)[-1]
        assert data_scan.flat_extract is not None

    def test_anonymous_vars_are_flat(self):
        system = make_system(
            """
            proc p(:X)
              return(:X) := data(X, _, _).
            end
            """
        )
        assert scan_steps(system, "p", 1)[-1].flat_extract is not None

    def test_repeated_fresh_var_not_flat(self):
        system = make_system(
            """
            proc p(:X)
              return(:X) := data(X, X).
            end
            """
        )
        assert scan_steps(system, "p", 1)[-1].flat_extract is None

    def test_compound_with_vars_not_flat(self):
        system = make_system(
            """
            proc p(:X, Y)
              return(:X, Y) := data(p(X, Y), _).
            end
            """
        )
        assert scan_steps(system, "p", 2)[-1].flat_extract is None

    def test_ground_compound_is_flat(self):
        system = make_system(
            """
            proc p(:Y)
              return(:Y) := data(p(1, 2), Y).
            end
            """
        )
        assert scan_steps(system, "p", 1)[-1].flat_extract is not None


class TestFlatSemantics:
    def test_flat_and_general_paths_agree(self):
        # data(X, X) forces the general path; data(X, Y) & X = Y the flat
        # one.  Same answers.
        facts = [(1, 1), (1, 2), (2, 2), (3, 1)]
        a = make_system("out(X) := data(X, X).")
        b = make_system("out(X) := data(X, Y) & X = Y.", optimize=False)
        for system in (a, b):
            system.facts("data", facts)
            system.run_script()
        assert a.relation_rows("out", 1) == b.relation_rows("out", 1)

    def test_flat_path_with_constants(self):
        system = make_system("out(Y) := data(1, Y, 'tag').")
        system.facts(
            "data", [(1, 10, "tag"), (1, 20, "other"), (2, 30, "tag")]
        )
        system.run_script()
        assert rows_to_python(system.relation_rows("out", 1)) == [(10,)]
