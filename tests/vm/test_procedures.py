"""Execution tests for Glue procedures (paper Section 4)."""

import io

import pytest

from repro.core.query import rows_to_python
from repro.errors import GlueRuntimeError
from tests.conftest import make_system

TC_E = """
proc tc_e(X:Y)
rels connected(X, Y);
  connected(X, Y) := in(X) & e(X, Y).
  repeat
    connected(X, Y) += connected(X, Z) & e(Z, Y).
  until unchanged(connected(_, _));
  return(X:Y) := connected(X, Y).
end
"""


def call(system, name, inputs=((),), **kwargs):
    return sorted(rows_to_python(system.call(name, inputs, **kwargs)))


class TestTcE:
    def test_reachability_from_one_source(self):
        system = make_system(TC_E)
        system.facts("e", [(1, 2), (2, 3), (3, 4), (9, 10)])
        assert call(system, "tc_e", [(1,)]) == [(1, 2), (1, 3), (1, 4)]

    def test_called_once_on_all_inputs(self):
        # "it is called once on all of the bindings for its input
        # arguments" -- result covers every input tuple.
        system = make_system(TC_E)
        system.facts("e", [(1, 2), (9, 10)])
        assert call(system, "tc_e", [(1,), (9,)]) == [(1, 2), (9, 10)]

    def test_in_restricts_results(self):
        system = make_system(TC_E)
        system.facts("e", [(1, 2), (2, 3)])
        # Input {2}: tuples starting from 1 must not leak out.
        assert call(system, "tc_e", [(2,)]) == [(2, 3)]

    def test_cycle_terminates(self):
        system = make_system(TC_E)
        system.facts("e", [(1, 2), (2, 1)])
        assert call(system, "tc_e", [(1,)]) == [(1, 1), (1, 2)]

    def test_empty_input_returns_empty(self):
        system = make_system(TC_E)
        system.facts("e", [(1, 2)])
        assert call(system, "tc_e", []) == []


class TestProcSemantics:
    def test_locals_fresh_per_invocation(self):
        system = make_system(
            """
            proc accumulate(X:Y)
            rels seen(A);
              seen(X) := in(X).
              return(X:Y) := seen(Y) & in(X).
            end
            """
        )
        assert call(system, "accumulate", [(1,)]) == [(1, 1)]
        # A second invocation must not see the first's local tuples.
        assert call(system, "accumulate", [(2,)]) == [(2, 2)]

    def test_return_exits_immediately(self):
        system = make_system(
            """
            proc early(:X)
              return(:X) := a(X).
              marker(1) := true.
            end
            """
        )
        system.facts("a", [(5,)])
        assert call(system, "early") == [(5,)]
        # The statement after return never ran.
        assert system.relation_rows("marker", 1) == []

    def test_fall_off_end_returns_empty(self):
        system = make_system(
            """
            proc silent(:X)
            rels tmp(A);
              tmp(X) := a(X).
            end
            """
        )
        system.facts("a", [(5,)])
        assert call(system, "silent") == []

    def test_recursion(self):
        # Recursive descent: count down to zero via recursion.
        system = make_system(
            """
            proc countdown(N:M)
              return(N:M) := in(N) & N = 0 & M = 0.
              return(N:M) += in(N) & N > 0 & K = N - 1 & countdown(K, M).
            end
            """
        )
        assert call(system, "countdown", [(3,)]) == [(3, 0)]

    def test_procedure_calling_procedure(self):
        system = make_system(
            TC_E
            + """
            proc reach_two(X:Y)
              return(X:Y) := in(X) & tc_e(X, Y).
            end
            """
        )
        system.facts("e", [(1, 2), (2, 3)])
        assert call(system, "reach_two", [(1,)]) == [(1, 2), (1, 3)]

    def test_constant_output_filter(self):
        # A constant in an output position filters the results.
        system = make_system(TC_E)
        system.facts("e", [(1, 2), (2, 3)])
        system.load(
            """
            proc reaches_three(X:)
              return(X:) := in(X) & tc_e(X, 3).
            end
            """
        )
        assert call(system, "reaches_three", [(1,)]) == [(1,)]
        assert call(system, "reaches_three", [(3,)]) == []

    def test_set_eq_procedure(self):
        # The paper's set_eq (Section 5.1) through the full pipeline.
        from repro.hilog.sets import SET_EQ_GLUE_SOURCE

        system = make_system(SET_EQ_GLUE_SOURCE)
        system.facts("s1", [("a",), ("b",)])
        system.facts("s2", [("b",), ("a",)])
        system.facts("s3", [("a",)])
        from repro.terms.term import Atom

        assert call(system, "set_eq", [(Atom("s1"), Atom("s2"))]) == [("s1", "s2")]
        assert call(system, "set_eq", [(Atom("s1"), Atom("s3"))]) == []

    def test_input_arity_checked(self):
        system = make_system(TC_E)
        with pytest.raises(GlueRuntimeError):
            system.call("tc_e", [(1, 2)])

    def test_unknown_procedure(self):
        system = make_system(TC_E)
        with pytest.raises(GlueRuntimeError):
            system.call("nope")

    def test_proc_call_counted(self):
        system = make_system(TC_E)
        system.facts("e", [(1, 2)])
        system.reset_counters()
        system.call("tc_e", [(1,)])
        assert system.counters.proc_calls == 1


class TestRepeatUntil:
    def test_unchanged_false_first_time(self):
        # A loop whose body never changes anything still runs once and
        # needs a second pass for unchanged() to answer true.
        system = make_system(
            """
            proc once(:X)
            rels acc(A);
              repeat
                acc(X) := seed(X).
              until unchanged(acc(_));
              return(:X) := acc(X).
            end
            """
        )
        system.facts("seed", [(1,)])
        assert call(system, "once") == [(1,)]

    def test_until_disjunction_short_circuit(self):
        system = make_system(
            """
            proc drain(:X)
            rels taken(A);
              repeat
                taken(X) += queue(X) & --queue(X).
              until { empty(queue(_)) | unchanged(taken(_)) };
              return(:X) := taken(X).
            end
            """
        )
        system.facts("queue", [(1,), (2,)])
        assert call(system, "drain") == [(1,), (2,)]
        assert system.relation_rows("queue", 1) == []

    def test_nested_repeat(self):
        system = make_system(
            """
            proc nested(:X)
            rels outer(A), inner(A);
              repeat
                repeat
                  inner(X) += seed(X).
                until unchanged(inner(_));
                outer(X) += inner(X).
              until unchanged(outer(_));
              return(:X) := outer(X).
            end
            """
        )
        system.facts("seed", [(7,)])
        assert call(system, "nested") == [(7,)]

    def test_runaway_loop_guarded(self):
        system = make_system(
            """
            proc runaway(:)
            rels n(V);
              n(0) := true.
              repeat
                n(V) +=[V] n(W) & V = W + 1 & group_by(W) & V = max(V).
              until false;
              return(:) := true.
            end
            """,
            max_loop_iterations=50,
        )
        with pytest.raises(GlueRuntimeError, match="iterations"):
            system.call("runaway")


class TestIo:
    def test_write_inside_proc(self):
        out = io.StringIO()
        system = make_system(
            """
            proc announce(:)
              return(:) := msg(M) & writeln(M).
            end
            """,
            out=out,
        )
        system.facts("msg", [("hello",)])
        system.call("announce")
        assert out.getvalue() == "hello\n"

    def test_write_skipped_when_sup_empty(self):
        # "Execution stops whenever a supplementary relation is empty":
        # the write must not run.
        out = io.StringIO()
        system = make_system(
            """
            proc quiet(:)
              return(:) := nothing(M) & writeln(M).
            end
            """,
            out=out,
        )
        system.call("quiet")
        assert out.getvalue() == ""

    def test_read_line(self):
        system = make_system(
            """
            proc ask(:A)
              return(:A) := read_line(A).
            end
            """,
            inp=io.StringIO("fourty-two\n"),
        )
        assert call(system, "ask") == [("fourty-two",)]


class TestAggregateUntil:
    def test_until_with_aggregate_condition(self):
        # Conditions reuse the full body machinery, aggregates included:
        # loop until the accumulator holds at least 5 tuples.
        system = make_system(
            """
            proc grow(:N)
            rels acc(V);
              acc(0) := true.
              repeat
                acc(V) += acc(W) & V = W + 1.
              until acc(V) & C = count(V) & C >= 5;
              return(:N) := acc(V) & N = max(V).
            end
            """
        )
        rows = rows_to_python(system.call("grow"))
        assert rows and rows[0][0] >= 4
