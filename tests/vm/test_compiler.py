"""Tests for the compiler: plan structure, optimization flags, errors."""

import pytest

from repro.core.query import rows_to_python
from repro.errors import CompileError
from repro.vm.plan import (
    BindStep,
    CallStep,
    CompareStep,
    NegScanStep,
    ScanStep,
    TruthStep,
    UnchangedStep,
    UpdateStep,
)
from tests.conftest import make_system


def plan_of(source, proc_name, arity, stmt_index=0, **kwargs):
    system = make_system(source, **kwargs)
    compiled = system.compile()
    proc = compiled.find_proc(proc_name, arity)
    return proc.body[stmt_index].plan


class TestPlanStructure:
    def test_scan_columns_accumulate(self):
        plan = plan_of(
            """
            proc p(:X, W)
              return(:X, W) := a(X, A, B) & b(A, C) & c(B, C, W).
            end
            """,
            "p",
            2,
            optimize=False,
        )
        # Paper Section 3.2's supplementary columns (after the implicit in()).
        columns = [step.columns_out for step in plan if isinstance(step, ScanStep)]
        assert columns[1] == ("X", "A", "B")
        assert columns[2] == ("X", "A", "B", "C")
        assert columns[3] == ("X", "A", "B", "C", "W")

    def test_implicit_in_subgoal_prepended(self):
        plan = plan_of(
            """
            proc p(X:Y)
              return(X:Y) := data(X, Y).
            end
            """,
            "p",
            2,
        )
        first = plan[0]
        assert isinstance(first, ScanStep)
        assert first.ref.info.skeleton[0] == "in"

    def test_comparison_compiles_to_filter_or_binding(self):
        plan = plan_of(
            """
            proc p(:X, D)
              return(:X, D) := a(X) & D = X + 1 & D < 9.
            end
            """,
            "p",
            2,
            optimize=False,
        )
        kinds = [type(s).__name__ for s in plan]
        assert "BindStep" in kinds and "CompareStep" in kinds

    def test_negation_compiles_to_neg_scan(self):
        plan = plan_of(
            """
            proc p(:X)
              return(:X) := a(X) & !b(X).
            end
            """,
            "p",
            1,
        )
        assert any(isinstance(s, NegScanStep) for s in plan)

    def test_true_literal(self):
        plan = plan_of(
            """
            proc p(:X)
              return(:X) := true & a(X).
            end
            """,
            "p",
            1,
        )
        assert any(isinstance(s, TruthStep) and s.value for s in plan)

    def test_until_conditions_compiled_as_plans(self):
        system = make_system(
            """
            proc p(:)
            rels acc(V);
              repeat
                acc(X) += seed(X).
              until unchanged(acc(_));
              return(:) := true.
            end
            """
        )
        compiled = system.compile()
        repeat = compiled.find_proc("p", 0).body[0]
        (alt,) = repeat.until_alts
        assert isinstance(alt[0], UnchangedStep)


class TestOptimizerFlag:
    SOURCE = """
    proc p(:X)
      return(:X) := big(Y) & a(X) & X < 3 & !bad(X).
    end
    """

    def _run(self, optimize):
        system = make_system(self.SOURCE, optimize=optimize)
        system.facts("big", [(i,) for i in range(50)])
        system.facts("a", [(1,), (2,), (5,)])
        system.facts("bad", [(2,)])
        system.compile()
        system.reset_counters()
        rows = system.call("p")
        return rows_to_python(rows), system.counters.tuples_scanned

    def test_same_results_either_way(self):
        opt_rows, opt_cost = self._run(True)
        raw_rows, raw_cost = self._run(False)
        assert sorted(opt_rows) == sorted(raw_rows) == [(1,)]

    def test_optimizer_reduces_scanning(self):
        _, opt_cost = self._run(True)
        _, raw_cost = self._run(False)
        # Hoisting the X < 3 filter before joining against big/1 cuts work.
        assert opt_cost <= raw_cost


class TestErrors:
    def test_error_messages_carry_line_numbers(self):
        source = "\n\nout(X, Y) := a(X).\n"
        with pytest.raises(CompileError, match="line 3"):
            make_system(source).compile()

    def test_cannot_negate_procedure(self):
        source = """
        proc f(X:Y)
          return(X:Y) := in(X) & Y = X.
        end
        proc g(:X)
          return(:X) := a(X) & !f(X, X).
        end
        """
        with pytest.raises(CompileError, match="negate"):
            make_system(source).compile()

    def test_return_outside_procedure(self):
        with pytest.raises(CompileError, match="outside"):
            make_system("return(:X) := a(X).").compile()

    def test_return_arity_mismatch(self):
        source = """
        proc p(:X)
          return(:X, Y) := a(X, Y).
        end
        """
        with pytest.raises(CompileError, match="arity"):
            make_system(source).compile()

    def test_return_colon_position_checked(self):
        source = """
        proc p(X:Y)
          return(X, Y:) := in(X) & a(Y).
        end
        """
        with pytest.raises(CompileError, match="bound arity"):
            make_system(source).compile()

    def test_colon_in_non_return_head(self):
        with pytest.raises(CompileError, match="return"):
            make_system("out(X:Y) := a(X, Y).").compile()

    def test_unchanged_needs_static_predicate(self):
        source = """
        proc p(S:)
        rels acc(V);
          repeat
            acc(X) += seed(X).
          until unchanged(S(_));
          return(S:) := in(S).
        end
        """
        # Rejected either as a dynamic unchanged target or (because the
        # until-condition plan starts from no bindings) as an unbound name.
        with pytest.raises(CompileError, match="static|unbound"):
            make_system(source).compile()

    def test_proc_call_input_must_be_bound(self):
        source = """
        proc f(X:Y)
          return(X:Y) := in(X) & Y = X.
        end
        proc g(:Y)
          return(:Y) := f(Unbound, Y).
        end
        """
        with pytest.raises(CompileError):
            make_system(source, optimize=False).compile()
