"""Execution tests for assignment statements (paper Section 3)."""

import pytest

from repro.core.query import rows_to_python
from repro.errors import CompileError
from tests.conftest import make_system


def run(source, facts=None, script=True, **kwargs):
    system = make_system(source, **kwargs)
    for name, rows in (facts or {}).items():
        system.facts(name, rows)
    system.compile()
    if script:
        system.run_script()
    return system


def rel(system, name, arity):
    return sorted(rows_to_python(system.relation_rows(name, arity)))


class TestAssignmentOperators:
    def test_clearing_assignment_overwrites(self):
        system = run(
            "out(X) := a(X).",
            facts={"a": [(1,), (2,)], "out": [(99,)]},
        )
        assert rel(system, "out", 1) == [(1,), (2,)]

    def test_insertion_assignment_adds(self):
        system = run("out(X) += a(X).", facts={"a": [(1,)], "out": [(99,)]})
        assert rel(system, "out", 1) == [(1,), (99,)]

    def test_deletion_assignment_removes(self):
        system = run(
            "out(X) -= bad(X).",
            facts={"out": [(1,), (2,), (3,)], "bad": [(2,)]},
        )
        assert rel(system, "out", 1) == [(1,), (3,)]

    def test_deleting_absent_tuples_is_noop(self):
        system = run("out(X) -= bad(X).", facts={"out": [(1,)], "bad": [(9,)]})
        assert rel(system, "out", 1) == [(1,)]

    def test_modify_update_by_key(self):
        # +=[K]: like SQL UPDATE -- replace the tuple with key K.
        system = run(
            "account(K, V) +=[K] delta(K, V).",
            facts={"account": [("a", 10), ("b", 20)], "delta": [("a", 99)]},
        )
        assert rel(system, "account", 2) == [("a", 99), ("b", 20)]

    def test_modify_inserts_new_keys(self):
        system = run(
            "account(K, V) +=[K] delta(K, V).",
            facts={"account": [("a", 10)], "delta": [("c", 5)]},
        )
        assert rel(system, "account", 2) == [("a", 10), ("c", 5)]

    def test_modify_removes_all_old_tuples_with_key(self):
        system = run(
            "m(K, V) +=[K] delta(K, V).",
            facts={"m": [("a", 1), ("a", 2), ("b", 3)], "delta": [("a", 9)]},
        )
        assert rel(system, "m", 2) == [("a", 9), ("b", 3)]

    def test_modify_dedups_colliding_incoming_keys(self):
        # Regression: incoming rows that collide on the key used to BOTH
        # survive, leaving duplicate keys in a keyed relation.  The pinned
        # semantics: the last distinct result row (in plan-output order)
        # wins, so exactly one tuple remains per key.
        system = run(
            "m(K, V) +=[K] delta(K, V).",
            facts={"m": [("a", 0)], "delta": [("a", 1), ("a", 2)]},
        )
        assert rel(system, "m", 2) == [("a", 2)]

    def test_modify_collision_deterministic_last_wins(self):
        # Plan output follows the body relation's insertion order, so the
        # surviving tuple is determined by it -- not by set/hash order.
        system = run(
            "m(K, V) +=[K] delta(K, V).",
            facts={"m": [], "delta": [("k", 3), ("k", 1), ("k", 2)]},
        )
        assert rel(system, "m", 2) == [("k", 2)]

    def test_modify_collision_mixed_with_fresh_keys(self):
        system = run(
            "m(K, V) +=[K] delta(K, V).",
            facts={
                "m": [("a", 0), ("b", 0)],
                "delta": [("a", 1), ("c", 1), ("a", 2)],
            },
        )
        assert rel(system, "m", 2) == [("a", 2), ("b", 0), ("c", 1)]

    def test_modify_victims_via_index_not_full_scan(self):
        # The victim lookup must be keyed (index probes), not a walk over
        # every stored tuple.
        from repro.storage.adaptive import NeverIndexPolicy
        from repro.storage.database import Database

        from tests.conftest import make_system

        system = make_system(
            "m(K, V) +=[K] delta(K, V).", db=Database(index_policy=NeverIndexPolicy())
        )
        system.facts("m", [(i, "old") for i in range(500)])
        system.facts("delta", [(3, "new")])
        system.compile()
        system.reset_counters()
        system.run_script()
        assert rel(system, "m", 2)[3] == (3, "new")
        # The victims came from key-index probes (one per incoming key),
        # and no full-relation scan was charged for the update.
        assert system.counters.index_lookups >= 1
        assert system.db.get("m", 2).has_index((0,))
        assert system.counters.tuples_scanned < 100

    def test_empty_body_clears_on_clearing_assignment(self):
        system = run("out(X) := a(X).", facts={"out": [(1,)]})
        assert rel(system, "out", 1) == []


class TestBodies:
    def test_join(self):
        system = run(
            "r(X, Y) += s(X, W) & t(W, Y).",
            facts={"s": [(1, 10), (2, 20)], "t": [(10, "a"), (20, "b"), (10, "c")]},
        )
        assert rel(system, "r", 2) == [(1, "a"), (1, "c"), (2, "b")]

    def test_compound_term_join(self):
        # Section 3.1: r(X,Y) += s(X,W) & t(f(W,X),Y).
        system = run(
            "r(X, Y) += s(X, W) & t(f(W, X), Y).",
            facts={"s": [(1, 10)], "t": [(("f", 10, 1), "hit"), (("f", 9, 9), "miss")]},
        )
        assert rel(system, "r", 2) == [(1, "hit")]

    def test_identity_matrix(self):
        system = run(
            """
            matrix(X, X, 1.0) := row(X).
            matrix(X, Y, 0.0) += row(X) & row(Y) & X != Y.
            """,
            facts={"row": [(1,), (2,), (3,)]},
        )
        rows = rel(system, "matrix", 3)
        assert len(rows) == 9
        assert (1, 1, 1.0) in rows and (1, 2, 0.0) in rows

    def test_negation(self):
        system = run(
            "good(X) := all(X) & !bad(X).",
            facts={"all": [(1,), (2,), (3,)], "bad": [(2,)]},
        )
        assert rel(system, "good", 1) == [(1,), (3,)]

    def test_arithmetic_binding(self):
        system = run(
            "double(X, D) := n(X) & D = X * 2.",
            facts={"n": [(1,), (2,)]},
        )
        assert rel(system, "double", 2) == [(1, 2), (2, 4)]

    def test_comparison_filter(self):
        system = run("small(X) := n(X) & X < 3.", facts={"n": [(1,), (5,), (2,)]})
        assert rel(system, "small", 1) == [(1,), (2,)]

    def test_string_builtins(self):
        system = run(
            "greeting(G) := name(N) & G = concat('hi ', N).",
            facts={"name": [("ann",)]},
        )
        assert rel(system, "greeting", 1) == [("hi ann",)]

    def test_true_false(self):
        system = run("a() := true.\nb() := false.")
        assert rel(system, "a", 0) == [()]
        assert rel(system, "b", 0) == []

    def test_anonymous_variables(self):
        system = run(
            "firsts(X) := pair(X, _).",
            facts={"pair": [(1, "a"), (1, "b"), (2, "c")]},
        )
        assert rel(system, "firsts", 1) == [(1,), (2,)]

    def test_statement_order_matters(self):
        # Left-to-right execution: the second statement sees the first's
        # effect ("use the current value").
        system = run(
            """
            stage(X) := a(X).
            stage(X) += b(X).
            out(X) := stage(X).
            """,
            facts={"a": [(1,)], "b": [(2,)]},
        )
        assert rel(system, "out", 1) == [(1,), (2,)]

    def test_body_updates(self):
        system = run(
            "processed(X) := queue(X) & --queue(X) & ++log(X).",
            facts={"queue": [(1,), (2,)]},
        )
        assert rel(system, "processed", 1) == [(1,), (2,)]
        assert rel(system, "queue", 1) == []
        assert rel(system, "log", 1) == [(1,), (2,)]

    def test_wildcard_delete(self):
        system = run(
            "touched(X) := target(X) & --data(X, _).",
            facts={"target": [(1,)], "data": [(1, "a"), (1, "b"), (2, "c")]},
        )
        assert rel(system, "data", 2) == [(2, "c")]


class TestAggregates:
    def test_max_extends_every_tuple(self):
        # Section 3.3: max binds MaxT on every supplementary tuple.
        system = run(
            "pairs(T, MaxT) := temperature(T) & MaxT = max(T).",
            facts={"temperature": [(10,), (35,)]},
        )
        assert rel(system, "pairs", 2) == [(10, 35), (35, 35)]

    def test_coldest_city_with_join(self):
        system = run(
            """
            coldest(Name) :=
              daily_temp(Name, T) & MinT = min(T) & T = MinT.
            """,
            facts={"daily_temp": [("sf", 12), ("madang", 36), ("copenhagen", -2)]},
        )
        assert rel(system, "coldest", 1) == [("copenhagen",)]

    def test_coldest_city_inline(self):
        system = run(
            "coldest(Name) := daily_temp(Name, T) & T = min(T).",
            facts={"daily_temp": [("sf", 12), ("copenhagen", -2), ("oslo", -2)]},
        )
        # Ties: all minimal cities (footnote 6 in the paper).
        assert rel(system, "coldest", 1) == [("copenhagen",), ("oslo",)]

    def test_mean_sees_duplicates_across_tuples(self):
        # Two cities with the same temperature: both readings count.
        system = run(
            "avg(A) := daily_temp(Name, T) & A = mean(T).",
            facts={"daily_temp": [("a", 10), ("b", 10), ("c", 40)]},
        )
        assert rel(system, "avg", 1) == [(20.0,)]

    def test_group_by(self):
        system = run(
            """
            course_average(C, A) :=
              course_student_grade(C, S, G) & group_by(C) & A = mean(G).
            """,
            facts={
                "course_student_grade": [
                    ("cs1", "ann", 90), ("cs1", "bob", 80),
                    ("cs2", "cat", 60), ("cs2", "dan", 70), ("cs2", "eve", 80),
                ]
            },
        )
        assert rel(system, "course_average", 2) == [("cs1", 85.0), ("cs2", 70.0)]

    def test_group_by_cascade(self):
        # Cascading group_bys split groups further (Section 3.3.1).
        system = run(
            """
            by_dept_team(D, T, S) :=
              emp(D, T, _, Pay) & group_by(D) & group_by(T) & S = sum(Pay).
            """,
            facts={
                "emp": [
                    ("eng", "a", "e1", 10), ("eng", "a", "e2", 20),
                    ("eng", "b", "e3", 5), ("ops", "a", "e4", 7),
                ]
            },
        )
        assert rel(system, "by_dept_team", 3) == [
            ("eng", "a", 30), ("eng", "b", 5), ("ops", "a", 7),
        ]

    def test_count_per_group(self):
        system = run(
            "sizes(C, N) := enrolled(C, S) & group_by(C) & N = count(S).",
            facts={"enrolled": [("cs1", "a"), ("cs1", "b"), ("cs2", "c")]},
        )
        assert rel(system, "sizes", 2) == [("cs1", 2), ("cs2", 1)]

    def test_filter_against_group_aggregate(self):
        # T < mean(T): keep below-average readings per group.
        system = run(
            "cool(C, T) := reading(C, T) & group_by(C) & T < mean(T).",
            facts={"reading": [("x", 1), ("x", 3), ("y", 10), ("y", 10)]},
        )
        assert rel(system, "cool", 2) == [("x", 1)]

    def test_aggregate_on_empty_body_stops_statement(self):
        # An empty supplementary relation stops execution before the
        # aggregator; no error, no tuples.
        system = run("m(X) := nothing(Y) & X = max(Y).")
        assert rel(system, "m", 1) == []

    def test_arbitrary_picks_one(self):
        system = run(
            "one(X) := n(V) & X = arbitrary(V).",
            facts={"n": [(3,), (1,), (2,)]},
        )
        rows = rel(system, "one", 1)
        assert len({r[0] for r in rows}) == 1


class TestCompileErrors:
    def test_unbound_head_variable(self):
        with pytest.raises(CompileError):
            run("out(X, Y) := a(X).")

    def test_assign_to_nail_predicate(self):
        with pytest.raises(CompileError):
            run("p(X) :- q(X).\np(X) += r(X).", script=False)

    def test_unsafe_negation_reported(self):
        with pytest.raises(CompileError):
            run("out(X) := a(X) & !b(Y).")

    def test_statements_inside_module_rejected(self):
        with pytest.raises(CompileError):
            run("module m;\nout(X) := a(X).\nend", script=False)

    def test_modify_key_not_in_head(self):
        with pytest.raises(CompileError):
            run("out(X) +=[Z] a(X).")

    def test_strict_mode_requires_declarations(self):
        with pytest.raises(CompileError):
            run("out(X) := a(X).", strict=True, script=False)
