"""Focused tests of repeat/until and unchanged() semantics corners."""

import pytest

from repro.core.query import rows_to_python
from tests.conftest import make_system


class TestUnchangedSemantics:
    def test_per_occurrence_state(self):
        # Two unchanged() occurrences over the same relation keep separate
        # histories ("since the last time that particular unchanged
        # statement was executed").
        system = make_system(
            """
            proc two_loops(:N)
            rels acc(V), counter(C);
              acc(1) := true.
              repeat
                acc(V) += acc(W) & V = W + 1 & V <= 3.
              until unchanged(acc(_));
              repeat
                acc(V) += acc(W) & V = W + 1 & V <= 5.
              until unchanged(acc(_));
              return(:N) := acc(V) & N = max(V).
            end
            """
        )
        rows = rows_to_python(system.call("two_loops"))
        assert rows == [(5,)]

    def test_per_invocation_state(self):
        # A second call starts with fresh unchanged history.
        system = make_system(
            """
            proc grow(X:N)
            rels acc(V);
              acc(X) := in(X).
              repeat
                acc(V) += acc(W) & V = W + 1 & V <= 10.
              until unchanged(acc(_));
              return(X:N) := in(X) & acc(V) & N = max(V).
            end
            """
        )
        assert rows_to_python(system.call("grow", [(1,)])) == [(1, 10)]
        assert rows_to_python(system.call("grow", [(7,)])) == [(7, 10)]

    def test_content_based_not_assignment_based(self):
        # A := that rewrites identical content does not count as a change.
        system = make_system(
            """
            proc stable(:X)
            rels mirror(V);
              repeat
                mirror(V) := source(V).
              until unchanged(mirror(_));
              return(:X) := mirror(X).
            end
            """
        )
        system.facts("source", [(1,), (2,)])
        assert sorted(rows_to_python(system.call("stable"))) == [(1,), (2,)]

    def test_watches_edb_relations_too(self):
        system = make_system(
            """
            proc drain_to_fixpoint(:X)
              repeat
                sink(X) += feed(X) & --feed(X).
              until unchanged(feed(_));
              return(:X) := sink(X).
            end
            """
        )
        system.facts("feed", [(1,), (2,), (3,)])
        rows = sorted(rows_to_python(system.call("drain_to_fixpoint")))
        assert rows == [(1,), (2,), (3,)]
        assert system.relation_rows("feed", 1) == []


class TestUntilConditions:
    def test_plain_subgoal_condition(self):
        # Any conjunction works as a condition: true = non-empty.
        system = make_system(
            """
            proc fill(:N)
            rels acc(V);
              acc(0) := true.
              repeat
                acc(V) += acc(W) & V = W + 1.
              until acc(5);
              return(:N) := acc(V) & N = max(V).
            end
            """
        )
        assert rows_to_python(system.call("fill")) == [(5,)]

    def test_comparison_in_condition(self):
        system = make_system(
            """
            proc fill(:N)
            rels acc(V);
              acc(0) := true.
              repeat
                acc(V) += acc(W) & V = W + 1.
              until acc(V) & V >= 4;
              return(:N) := acc(V) & N = max(V).
            end
            """
        )
        assert rows_to_python(system.call("fill")) == [(4,)]

    def test_body_executes_before_first_check(self):
        # repeat/until is do-while: the body always runs at least once.
        system = make_system(
            """
            proc once(:X)
            rels mark(V);
              repeat
                mark(1) += true.
              until true;
              return(:X) := mark(X).
            end
            """
        )
        assert rows_to_python(system.call("once")) == [(1,)]

    def test_empty_condition_with_bound_pattern(self):
        system = make_system(
            """
            proc drain_reds(:X)
            rels taken(V);
              repeat
                taken(V) += item(red, V) & --item(red, V).
              until empty(item(red, _));
              return(:X) := taken(X).
            end
            """
        )
        system.facts("item", [("red", 1), ("red", 2), ("blue", 3)])
        assert sorted(rows_to_python(system.call("drain_reds"))) == [(1,), (2,)]
        assert len(system.relation_rows("item", 2)) == 1  # blue survives
