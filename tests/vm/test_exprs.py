"""Unit tests for expression/pattern compilation to row closures."""

import pytest

from repro.errors import CompileError
from repro.lang.parser import parse_statement, parse_term
from repro.terms.term import Atom, Compound, Num, Var
from repro.vm.exprs import compile_expr, compile_pattern, compile_term_code


def expr_of(statement_text):
    """The right-hand side of the statement's comparison subgoal."""
    stmt = parse_statement(statement_text)
    return stmt.body[-1].right


COLS = {"X": 0, "Y": 1, "S": 2}
ROW = (Num(4), Num(3), Atom("hi"))


class TestCompileExpr:
    def test_constant(self):
        fn = compile_expr(Num(7), COLS)
        assert fn(ROW) == Num(7)

    def test_variable_lookup(self):
        fn = compile_expr(Var("Y"), COLS)
        assert fn(ROW) == Num(3)

    def test_arithmetic(self):
        fn = compile_expr(expr_of("p(D) := q(X, Y) & D = X * 2 + Y."), COLS)
        assert fn(ROW) == Num(11)

    def test_unary_minus(self):
        fn = compile_expr(expr_of("p(D) := q(X, Y) & D = -X."), COLS)
        assert fn(ROW) == Num(-4)

    def test_builtin_function(self):
        fn = compile_expr(expr_of("p(D) := q(S) & D = length(S)."), COLS)
        assert fn(ROW) == Num(2)

    def test_nested_functions(self):
        fn = compile_expr(
            expr_of("p(D) := q(S) & D = concat(S, to_string(X))."), COLS
        )
        assert fn(ROW) == Atom("hi4")

    def test_unbound_variable_rejected(self):
        with pytest.raises(CompileError, match="unbound"):
            compile_expr(Var("Nope"), COLS)

    def test_anonymous_rejected(self):
        with pytest.raises(CompileError, match="anonymous"):
            compile_expr(Var("_"), COLS)

    def test_stray_aggregate_rejected(self):
        from repro.lang.ast import AggCall

        with pytest.raises(CompileError, match="aggregate"):
            compile_expr(AggCall(op="max", arg=Var("X")), COLS)


class TestCompileTermCode:
    def test_compound_instantiation(self):
        term = parse_term("f(X, g(Y))")
        fn = compile_term_code(term, COLS)
        assert fn(ROW) == Compound(
            Atom("f"), (Num(4), Compound(Atom("g"), (Num(3),)))
        )

    def test_hilog_functor_instantiation(self):
        term = Compound(Var("S"), (Var("X"),))
        fn = compile_term_code(term, COLS)
        assert fn(ROW) == Compound(Atom("hi"), (Num(4),))

    def test_ground_term_constant(self):
        term = parse_term("point(1, 2)")
        fn = compile_term_code(term, COLS)
        assert fn(ROW) == term


class TestCompilePattern:
    def test_bound_vars_substituted_new_vars_kept(self):
        patterns = compile_pattern((Var("X"), Var("New"), Var("_")), COLS)
        result = patterns(ROW)
        assert result[0] == Num(4)
        assert result[1] == Var("New")
        assert result[2] == Var("_")

    def test_compound_partial_pattern(self):
        pattern = compile_pattern((parse_term("f(X, Z)"),), COLS)
        (result,) = pattern(ROW)
        assert result == Compound(Atom("f"), (Num(4), Var("Z")))
