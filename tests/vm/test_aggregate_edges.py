"""Aggregation edge cases through the full pipeline."""

import pytest

from repro.core.query import rows_to_python
from tests.conftest import make_system


def run(source, facts=None, **kwargs):
    system = make_system(source, **kwargs)
    for name, rows in (facts or {}).items():
        system.facts(name, rows)
    system.run_script()
    return system


def rel(system, name, arity):
    return sorted(rows_to_python(system.relation_rows(name, arity)))


class TestAggregateEdges:
    def test_two_aggregates_in_sequence(self):
        # The second aggregator sees the supplementary relation extended by
        # the first (MaxV column included).
        system = run(
            "stats(Min, Max) := n(V) & Max = max(V) & Min = min(V).",
            facts={"n": [(3,), (1,), (2,)]},
        )
        assert rel(system, "stats", 2) == [(1, 3)]

    def test_aggregate_of_computed_expression(self):
        system = run(
            "total(T) := item(P, Q) & V = P * Q & T = sum(V).",
            facts={"item": [(2, 3), (4, 5)]},
        )
        assert rel(system, "total", 1) == [(26,)]

    def test_aggregate_argument_can_be_expression(self):
        system = run(
            "m(X) := n(V) & X = max(V * V).",
            facts={"n": [(-3,), (2,)]},
        )
        assert rel(system, "m", 1) == [(9,)]

    def test_filter_with_inequality_against_aggregate(self):
        system = run(
            "above(V) := n(V) & V > mean(V).",
            facts={"n": [(1,), (2,), (9,)]},
        )
        assert rel(system, "above", 1) == [(9,)]

    def test_group_by_then_global_aggregate_layering(self):
        # Aggregate after a group_by stays grouped: each group's count,
        # then per-group max over the (identical) count value.
        system = run(
            "per(K, C) := d(K, V) & group_by(K) & C = count(V) & C = max(C).",
            facts={"d": [("a", 1), ("a", 2), ("b", 3)]},
        )
        assert rel(system, "per", 2) == [("a", 2), ("b", 1)]

    def test_sum_of_floats_and_ints(self):
        system = run(
            "t(S) := n(V) & S = sum(V).",
            facts={"n": [(1,), (2.5,)]},
        )
        assert rel(system, "t", 1) == [(3.5,)]

    def test_group_key_can_be_output(self):
        system = run(
            "counts(K, C) := d(K, _) & group_by(K) & C = count(K).",
            facts={"d": [("x", 1), ("x", 2), ("y", 3)]},
        )
        # d(K,_) projects to distinct K per group: count is 1 per group.
        assert rel(system, "counts", 2) == [("x", 1), ("y", 1)]


class TestModifyEdges:
    def test_modify_with_computed_value(self):
        system = run(
            "stock(K, V) +=[K] stock(K, Old) & delta(K, D) & V = Old + D.",
            facts={"stock": [("a", 10), ("b", 5)], "delta": [("a", -3)]},
        )
        assert rel(system, "stock", 2) == [("a", 7), ("b", 5)]

    def test_modify_key_collision_within_result(self):
        # Two result rows with the same key: a keyed update is a *keyed*
        # relation write, so exactly one tuple survives per key -- the last
        # distinct result row in plan-output order wins.
        system = run(
            "m(K, V) +=[K] src(K, V).",
            facts={"m": [("k", 0)], "src": [("k", 1), ("k", 2)]},
        )
        assert rel(system, "m", 2) == [("k", 2)]

    def test_modify_all_columns_key(self):
        system = run(
            "m(A, B) +=[A, B] src(A, B).",
            facts={"m": [(1, 1)], "src": [(1, 1), (2, 2)]},
        )
        assert rel(system, "m", 2) == [(1, 1), (2, 2)]


class TestDynamicHeadEdges:
    def test_dynamic_head_modify(self):
        system = run(
            "bucket(K)(Id, V) +=[Id] data(K, Id, V).",
            facts={"data": [("a", 1, 10), ("a", 2, 20), ("b", 1, 30)]},
        )
        from repro.terms.term import mk

        a_rows = system.db.get(mk(("bucket", "a")), 2)
        assert len(a_rows) == 2

    def test_dynamic_head_delete(self):
        from repro.terms.term import mk

        system = make_system("bucket(K)(V) -= kill(K, V).")
        system.db.relation(mk(("bucket", "a")), 1).insert((mk(1),))
        system.db.relation(mk(("bucket", "a")), 1).insert((mk(2),))
        system.facts("kill", [("a", 1)])
        system.run_script()
        assert len(system.db.get(mk(("bucket", "a")), 1)) == 1
