"""Tests for the EXPLAIN facility."""

from repro.vm.explain import explain_proc, explain_program
from tests.conftest import make_system

SOURCE = """
proc analyse(:C, M)
rels tmp(A);
  tmp(X) := data(X, _) & ++audit(X).
  repeat
    tmp(X) += more(X).
  until unchanged(tmp(_));
  return(:C, M) := grades(C, G) & group_by(C) & M = mean(G) & !excluded(C).
end
derived(X) :- data(X, _).
"""


class TestExplain:
    def _text(self, **kwargs):
        system = make_system(SOURCE, **kwargs)
        return explain_program(system.compile())

    def test_proc_header(self):
        text = self._text()
        assert "proc analyse/2" in text
        assert "fixed=True" in text  # contains an update subgoal
        assert "locals: tmp/1" in text

    def test_step_kinds_rendered(self):
        text = self._text()
        for kind in ("SCAN", "UPDATE", "AGGREGATE", "GROUP_BY", "ANTIJOIN",
                     "UNCHANGED?", "REPEAT", "UNTIL"):
            assert kind in text, kind

    def test_barriers_marked(self):
        text = self._text()
        assert "<<BREAK>>" in text

    def test_predicate_classes_shown(self):
        text = self._text()
        assert "[LOCAL]" in text
        assert "[EDB]" in text or "[dynamic" in text

    def test_nail_rules_counted(self):
        assert "NAIL! rules: 1" in self._text()

    def test_column_layouts(self):
        text = self._text()
        assert "cols=(" in text

    def test_dynamic_reference_rendered(self):
        system = make_system(
            """
            proc members(S:X)
              return(S:X) := in(S) & S(X).
            end
            """
        )
        text = explain_program(system.compile())
        assert "dynamic" in text

    def test_script_section(self):
        system = make_system("out(X) := a(X).")
        text = explain_program(system.compile())
        assert "script:" in text
