"""Differential tests for the Glue VM's statement-level hash joins.

Every workload runs twice -- ``join_mode="hash"`` (the default, planned
set-at-a-time probing) and ``join_mode="nested"`` (the per-row baseline)
-- and the resulting relations must agree exactly.  A second group asserts
the *point* of the planner: ``tuples_scanned`` collapses on keyed joins,
and ``glue_hash_joins`` records the planned scans.  A final group is the
threaded regression test for adaptive-variant recompilation.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import rows_to_python
from tests.conftest import make_system


def build(source, facts=None, join_mode="hash", **kwargs):
    system = make_system(source, join_mode=join_mode, **kwargs)
    for name, rows in (facts or {}).items():
        system.facts(name, rows)
    system.compile()
    system.reset_counters()
    return system


def run_one(source, facts, join_mode, out_preds, **kwargs):
    system = build(source, facts, join_mode=join_mode, **kwargs)
    system.run_script()
    return {
        (name, arity): sorted(rows_to_python(system.relation_rows(name, arity)))
        for name, arity in out_preds
    }


def assert_modes_agree(source, facts, out_preds, **kwargs):
    hash_result = run_one(source, facts, "hash", out_preds, **kwargs)
    nested_result = run_one(source, facts, "nested", out_preds, **kwargs)
    assert hash_result == nested_result
    return hash_result


def random_edges(nodes, edges, seed):
    rng = random.Random(seed)
    out = set()
    while len(out) < edges:
        out.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(out)


class TestDifferential:
    def test_two_way_join(self):
        result = assert_modes_agree(
            "out(X, Z) := r(X, Y) & s(Y, Z).",
            {
                "r": random_edges(20, 60, seed=1),
                "s": random_edges(20, 60, seed=2),
            },
            [("out", 2)],
        )
        assert result[("out", 2)]  # non-degenerate workload

    def test_triangle_join(self):
        edges = random_edges(12, 50, seed=3)
        assert_modes_agree(
            "tri(X, Y, Z) := e1(X, Y) & e2(Y, Z) & e3(Z, X).",
            {"e1": edges, "e2": edges, "e3": edges},
            [("tri", 3)],
        )

    def test_negation(self):
        result = assert_modes_agree(
            "no_link(X, Y) := node(X) & node(Y) & !edge(X, Y).",
            {
                "node": [(i,) for i in range(10)],
                "edge": random_edges(10, 30, seed=4),
            },
            [("no_link", 2)],
        )
        assert result[("no_link", 2)]

    def test_negation_with_wildcards(self):
        # The anti-join key is only the bound column; the wildcard column
        # must stay out of the probe key.
        assert_modes_agree(
            "root(X) := node(X) & !edge(_, X).",
            {
                "node": [(i,) for i in range(10)],
                "edge": random_edges(10, 25, seed=5),
            },
            [("root", 1)],
        )

    def test_repeated_fresh_variable(self):
        # edge(Y, Y): a repeated fresh variable becomes an equality check
        # on the stored row, not a probe key.
        assert_modes_agree(
            "looped(X, Y) := edge(X, Y) & edge(Y, Y).",
            {"edge": random_edges(8, 30, seed=6) + [(2, 2), (5, 5)]},
            [("looped", 2)],
        )

    def test_repeated_bound_variable(self):
        # s(Y, Y) with Y bound: both positions are probe-key columns.
        assert_modes_agree(
            "out(X, Y) := r(X, Y) & s(Y, Y).",
            {"r": random_edges(10, 40, seed=7), "s": random_edges(10, 40, seed=7)},
            [("out", 2)],
        )

    def test_constants_in_pattern(self):
        assert_modes_agree(
            "picked(Y) := edge(3, Y) & edge(Y, 3).",
            {"edge": random_edges(8, 40, seed=8)},
            [("picked", 1)],
        )

    def test_fully_bound_membership(self):
        # Second scan is fully bound: degenerates to a membership test.
        assert_modes_agree(
            "mutual(X, Y) := edge(X, Y) & edge(Y, X).",
            {"edge": random_edges(10, 45, seed=9)},
            [("mutual", 2)],
        )

    def test_dynamic_predicate_name_scan(self):
        # HiLog: the scanned predicate's name comes from a set-valued
        # attribute, so the hash path keeps one join state per name.
        facts = {
            "which": [("p",), ("q",)],
            "p": [(1, "a"), (2, "b"), (3, "c")],
            "q": [(1, "x"), (4, "y")],
        }
        result = assert_modes_agree(
            "out(P, X, V) := which(P) & P(X, V).",
            facts,
            [("out", 3)],
        )
        assert len(result[("out", 3)]) == 5

    def test_nail_view_in_body(self):
        # A NAIL! predicate in a Glue body: the view's materialized
        # relation is indexable, so the scan still probes by key.
        source = """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y) & edge(Y, Z).
        reach(X, Y) := start(X) & path(X, Y).
        """
        assert_modes_agree(
            source,
            {"edge": [(i, i + 1) for i in range(15)], "start": [(0,), (7,)]},
            [("reach", 2)],
        )

    def test_join_inside_procedure_with_repeat(self):
        source = """
        proc close(X:Y)
        rels step(A, B);
          step(X, Y) := in(X) & edge(X, Y).
          repeat
            step(X, Y) += step(X, Z) & edge(Z, Y).
          until unchanged(step(_, _));
          return(X:Y) := step(X, Y).
        end
        """
        edges = [(i, i + 1) for i in range(12)]
        results = []
        for mode in ("hash", "nested"):
            system = build(source, {"edge": edges}, join_mode=mode)
            results.append(sorted(rows_to_python(system.call("close", [(0,)]))))
        assert results[0] == results[1]
        assert len(results[0]) == 12

    def test_keyed_assignment_agrees(self):
        assert_modes_agree(
            "m(K, V) +=[K] delta(K, V).",
            {"m": [(1, "old"), (2, "old")], "delta": [(2, "new"), (3, "new")]},
            [("m", 2)],
        )

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=0,
            max_size=25,
        ),
        marks=st.lists(st.integers(0, 6), min_size=0, max_size=5),
    )
    def test_property_differential(self, edges, marks):
        source = """
        hop(X, Z) := edge(X, Y) & edge(Y, Z).
        marked_hop(X, Z) := mark(X) & hop(X, Z).
        lonely(X) := mark(X) & !edge(X, _).
        """
        facts = {
            "edge": sorted(set(edges)),
            "mark": sorted({(m,) for m in marks}),
        }
        out_preds = [("hop", 2), ("marked_hop", 2), ("lonely", 1)]
        assert run_one(source, facts, "hash", out_preds) == run_one(
            source, facts, "nested", out_preds
        )


class TestCostCollapse:
    SOURCE = "out(A, D) := r(A, B) & s(B, C) & t(C, D)."

    def _facts(self, n):
        return {
            "r": [(i, i % 40) for i in range(n)],
            "s": [(i % 40, (i * 7) % 40) for i in range(n)],
            "t": [((i * 7) % 40, i) for i in range(n)],
        }

    def test_tuples_scanned_collapse(self):
        # The adaptive *index* policy eventually rescues the nested path on
        # its own; pinning NeverIndexPolicy isolates what the statement
        # planner contributes (explicit build_index calls are unaffected).
        from repro.storage.adaptive import NeverIndexPolicy
        from repro.storage.database import Database

        n = 400
        nested = build(
            self.SOURCE, self._facts(n), join_mode="nested",
            db=Database(index_policy=NeverIndexPolicy()),
        )
        nested.run_script()
        hashed = build(
            self.SOURCE, self._facts(n), join_mode="hash",
            db=Database(index_policy=NeverIndexPolicy()),
        )
        hashed.run_script()
        rows_to_python(nested.relation_rows("out", 2))  # sanity: both ran
        # The nested baseline re-matches s and t per accumulated row; the
        # planned join probes buckets, so full-relation scans collapse.
        assert hashed.counters.tuples_scanned * 5 < nested.counters.tuples_scanned
        assert (
            hashed.counters.total_tuple_touches * 5
            < nested.counters.total_tuple_touches
        )

    def test_glue_hash_joins_counted(self):
        system = build(self.SOURCE, self._facts(100), join_mode="hash")
        system.run_script()
        # r is a broadcast source, s and t are keyed probes: every scan
        # step builds exactly one join state.
        assert system.counters.glue_hash_joins == 3

    def test_nested_mode_counts_nothing(self):
        system = build(self.SOURCE, self._facts(100), join_mode="nested")
        system.run_script()
        assert system.counters.glue_hash_joins == 0

    def test_bad_join_mode_rejected(self):
        with pytest.raises(ValueError):
            make_system("out(X) := r(X).", join_mode="sideways")


class TestAdaptiveVariantRace:
    def test_concurrent_adaptation_single_variant(self):
        # Regression: _adapted_variant used to read/populate the shared
        # variants cache and call recompile_with_order without a lock, so
        # concurrent sessions could recompile the same ordering twice (and
        # race on the compile-time scope).  With the per-statement lock
        # exactly one variant per ordering may ever be published.
        system = make_system(
            "out(X, Y) := big(X, V) & small(V, Y).", adaptive_reorder=True
        )
        # Compile before the facts load so the compile-time planner can't
        # already pick the good order -- adaptation must kick in at run time.
        compiled = system.compile()
        (stmt,) = compiled.script
        system.facts("big", [(i, i % 50) for i in range(2000)])
        system.facts("small", [(3, "hit"), (7, "hit2")])

        start = threading.Barrier(8)
        errors = []

        def worker():
            try:
                start.wait()
                for _ in range(5):
                    system.run_script()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(stmt.variants) == 1
        assert sorted(rows_to_python(system.relation_rows("out", 2)))
