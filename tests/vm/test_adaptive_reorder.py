"""Tests for adaptive run-time re-optimization (paper Section 10)."""

import pytest

from repro.core.query import rows_to_python
from tests.conftest import make_system

JOIN = "out(X, Y) := big(X, V) & small(V, Y)."


def build(adaptive, big_rows, small_rows, source=JOIN, index=True):
    from repro.storage.adaptive import NeverIndexPolicy
    from repro.storage.database import Database

    # Indexing off isolates the join-order effect: otherwise the adaptive
    # *index* policy largely rescues a bad order on its own.  Compiling
    # *before* the facts load keeps the compile-time planner blind to the
    # cardinalities -- adaptation at run time is then the only fix.
    db = None if index else Database(index_policy=NeverIndexPolicy())
    system = make_system(source, adaptive_reorder=adaptive, db=db)
    system.compile()
    system.facts("big", big_rows)
    system.facts("small", small_rows)
    system.reset_counters()
    return system


BIG = [(i, i % 50) for i in range(2000)]
SMALL = [(3, "hit"), (7, "hit2")]


class TestAdaptiveReorder:
    def test_same_results(self):
        for adaptive in (False, True):
            system = build(adaptive, BIG, SMALL)
            system.run_script()
            rows = rows_to_python(system.relation_rows("out", 2))
            assert len(rows) == 2 * (2000 // 50)

    def test_adaptive_scans_less_when_source_order_is_bad(self):
        # The body names the big relation first; at run time the small
        # relation is 1000x smaller, so the adaptive pass flips the join.
        static = build(False, BIG, SMALL, index=False)
        static.run_script()
        adaptive = build(True, BIG, SMALL, index=False)
        adaptive.run_script()
        assert (
            adaptive.counters.tuples_scanned < static.counters.tuples_scanned * 0.75
        )

    def test_variant_cached_across_executions(self):
        system = build(True, BIG, SMALL)
        compiled = system.compile()
        (stmt,) = compiled.script
        system.run_script()
        assert len(stmt.variants) == 1
        system.run_script()
        assert len(stmt.variants) == 1  # second run reuses the variant

    def test_no_variant_when_order_already_best(self):
        system = build(True, SMALL, BIG, source="out(X, Y) := small(X, V) & big(V, Y).")
        compiled = system.compile()
        (stmt,) = compiled.script
        system.run_script()
        # Hmm: 'small' here holds SMALL? build() maps big_rows->big.
        # This test constructs the good order directly; no flip needed.
        assert rows_to_python(system.relation_rows("out", 2)) is not None

    def test_statements_with_unchanged_not_adapted(self):
        system = make_system(
            """
            proc fix(:X)
            rels acc(V);
              repeat
                acc(X) += seed(X).
              until unchanged(acc(_));
              return(:X) := acc(X).
            end
            """,
            adaptive_reorder=True,
        )
        system.facts("seed", [(1,)])
        assert rows_to_python(system.call("fix")) == [(1,)]

    def test_adaptive_inside_procedures(self):
        system = make_system(
            """
            proc lookup(:X, Y)
              return(:X, Y) := big(X, V) & small(V, Y).
            end
            """,
            adaptive_reorder=True,
        )
        system.facts("big", BIG)
        system.facts("small", SMALL)
        rows = system.call("lookup")
        assert len(rows) == 2 * (2000 // 50)

    def test_order_flips_when_sizes_flip(self):
        # Run once with big/small, then invert the data; the statement
        # should compile a second variant for the new best order.
        system = build(True, BIG, SMALL)
        compiled = system.compile()
        (stmt,) = compiled.script
        system.run_script()
        first_variants = len(stmt.variants)
        system.db.get("big", 2).clear()
        system.db.get("small", 2).clear()
        system.facts("big", [(1, 2)])
        system.facts("small", [(i, i) for i in range(3000)])
        system.run_script()
        assert len(stmt.variants) >= first_variants  # may reuse base order
        rows = rows_to_python(system.relation_rows("out", 2))
        assert rows == [(1, 2)]
