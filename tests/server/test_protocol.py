"""Wire protocol: JSON-lines encode/decode and payload shaping."""

import pytest

from repro.server.protocol import (
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    rows_payload,
    stats_payload,
)


class TestCodec:
    def test_round_trip(self):
        payload = {"op": "query", "q": "p(1, X)?", "id": 3}
        assert decode(encode(payload)) == payload

    def test_one_line(self):
        assert "\n" not in encode({"op": "load", "source": "a(1).\nb(2)."})

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError):
            decode("{not json")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode("[1, 2, 3]")

    def test_responses(self):
        ok = ok_response(7, rows=[])
        assert ok["ok"] is True and ok["id"] == 7
        err = error_response("nope", 7, kind="protocol")
        assert err["ok"] is False and err["kind"] == "protocol"


class TestPayloads:
    def test_rows_payload_carries_stats_and_resolution(self):
        from repro.core.system import GlueNailSystem

        system = GlueNailSystem()
        system.facts("edge", [(1, 2), (2, 3)])
        result = system.query("edge(1, X)?")
        payload = rows_payload(result)
        assert payload["rows"] == ["(1, 2)"]
        assert payload["values"] == [(1, 2)]
        assert payload["resolution"] == "edb"
        assert payload["stats"]["rows"] == 1
        assert "counters" in payload["stats"]

    def test_stats_payload_none(self):
        assert stats_payload(None) is None

    def test_payload_is_json_serializable(self):
        import json

        from repro.core.system import GlueNailSystem
        from repro.terms.term import Atom, Compound, Num

        system = GlueNailSystem()
        system.db.relation("point", 1).insert(
            (Compound(Atom("p"), (Num(3), Num(4))),)
        )
        payload = rows_payload(system.query("point(X)?"))
        text = json.dumps(payload)
        assert "p" in text
