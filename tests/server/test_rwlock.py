"""The readers-writer lock: concurrency for readers, exclusion for writers."""

import threading
import time

from repro.server.rwlock import RWLock


class TestRWLock:
    def test_two_readers_overlap(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                inside.append(1)
                barrier.wait()  # both readers must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 2

    def test_writer_excludes_readers(self):
        lock = RWLock()
        log = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                log.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        assert log == []  # reader blocked behind the writer
        log.append("write done")
        lock.release_write()
        thread.join(timeout=5)
        assert log == ["write done", "read"]

    def test_writer_excludes_writer(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def writer():
            with lock.write_locked():
                order.append("second")

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        order.append("first")
        lock.release_write()
        thread.join(timeout=5)
        assert order == ["first", "second"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()
        got_read = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            got_read.set()
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.05)
        # Writer preference: the late reader must queue behind the writer.
        assert not got_write.is_set() and not got_read.is_set()
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert got_write.is_set() and got_read.is_set()
