"""IDB cache behavior under the concurrent query server.

Each session owns a private NAIL! engine over the shared EDB, so these
tests pin down the cross-session contract of incremental maintenance:
writes by one session invalidate (or repair) exactly the derived
relations that depend on them in every other session, and nothing else.
"""

import threading

import pytest

from repro.server.client import Client
from repro.server.server import GlueNailServer

PATH_RULES = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z)."


@pytest.fixture
def server():
    with GlueNailServer(port=0).start() as srv:
        yield srv


@pytest.fixture
def pair(server):
    with Client(port=server.port) as writer, Client(port=server.port) as reader:
        yield writer, reader


def counters_of(result) -> dict:
    return result.stats["counters"]


class TestScopedInvalidation:
    def test_untouched_predicate_stays_cached(self, pair):
        writer, reader = pair
        writer.facts("edge", [(1, 2), (2, 3), (3, 4)])
        reader.load(PATH_RULES)
        warm = reader.query("path(X, Y)?")
        assert counters_of(warm)["inserts"] > 0  # first evaluation did work
        # A write to an unrelated relation...
        writer.facts("color", [(1, 10), (2, 20)])
        cached = reader.query("path(X, Y)?")
        stats = counters_of(cached)
        assert stats["idb_cache_hits"] >= 1
        assert stats["idb_invalidations"] == 0
        assert stats["idb_delta_repairs"] == 0
        assert stats["inserts"] == 0  # nothing re-derived
        assert sorted(cached.values) == sorted(warm.values)

    def test_touched_predicate_sees_new_facts_via_repair(self, pair):
        writer, reader = pair
        writer.facts("edge", [(1, 2), (2, 3)])
        reader.load(PATH_RULES)
        assert sorted(reader.query("path(1, X)?").values) == [(1, 2), (1, 3)]
        writer.fact("edge", 3, 4)
        result = reader.query("path(1, X)?")
        assert sorted(result.values) == [(1, 2), (1, 3), (1, 4)]
        stats = counters_of(result)
        assert stats["idb_delta_repairs"] == 1
        assert stats["idb_invalidations"] == 0

    def test_stats_op_reports_cache_state(self, pair):
        writer, reader = pair
        writer.facts("edge", [(1, 2)])
        reader.load(PATH_RULES)
        reader.query("path(X, Y)?")
        info = reader.stats()["idb_cache"]
        assert info["strata"] and info["strata"][0]["computed"]
        assert info["strata"][0]["support"] >= 1


class TestTransactions:
    def test_rollback_nets_to_no_invalidation(self, pair):
        writer, reader = pair
        writer.facts("edge", [(1, 2), (2, 3)])
        reader.load(PATH_RULES)
        warm = reader.query("path(X, Y)?")
        writer.begin()
        writer.fact("edge", 3, 4)
        writer.rollback()
        cached = reader.query("path(X, Y)?")
        stats = counters_of(cached)
        assert stats["idb_cache_hits"] >= 1
        assert stats["idb_delta_repairs"] == 0
        assert stats["idb_invalidations"] == 0
        assert sorted(cached.values) == sorted(warm.values)

    def test_committed_transaction_is_visible(self, pair):
        writer, reader = pair
        writer.facts("edge", [(1, 2)])
        reader.load(PATH_RULES)
        assert reader.query("path(1, X)?").values == [(1, 2)]
        writer.begin()
        writer.fact("edge", 2, 3)
        writer.commit()
        assert sorted(reader.query("path(1, X)?").values) == [(1, 2), (1, 3)]


class TestConcurrency:
    def test_concurrent_writer_and_cached_reader_agree(self, server):
        """A reader hammering a derived predicate while a writer streams
        single-fact inserts must always see a closure consistent with some
        prefix of the writes -- and the final answer must be exact."""
        n = 30
        errors = []

        with Client(port=server.port) as setup:
            setup.facts("edge", [(0, 1)])

        def write():
            try:
                with Client(port=server.port) as w:
                    for i in range(1, n):
                        w.fact("edge", i, i + 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def read():
            try:
                with Client(port=server.port) as r:
                    r.load(PATH_RULES)
                    for _ in range(n):
                        rows = r.query("path(0, Y)?").values
                        # Closure of a growing chain from 0: always a
                        # contiguous prefix 1..k.
                        got = sorted(y for (_, y) in rows)
                        assert got == list(range(1, len(got) + 1)), got
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=write), threading.Thread(target=read)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        with Client(port=server.port) as check:
            check.load(PATH_RULES)
            rows = check.query("path(0, Y)?").values
            assert sorted(y for (_, y) in rows) == list(range(1, n + 1))
