"""End-to-end tests for push subscriptions over the wire: real server,
real sockets, framed notifications interleaved with responses."""

import socket
import threading
import time

import pytest

from repro.server.client import Client, ConnectionClosed, RemoteError
from repro.server.server import GlueNailServer

PATH_RULES = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z)."


@pytest.fixture
def server():
    with GlueNailServer(port=0).start() as srv:
        yield srv


@pytest.fixture
def writer(server):
    with Client(port=server.port, timeout=10.0) as c:
        yield c


@pytest.fixture
def watcher(server):
    with Client(port=server.port, timeout=10.0) as c:
        yield c


def drain(sub, timeout=1.0):
    notes = []
    while True:
        note = sub.next(timeout=timeout)
        if note is None:
            return notes
        notes.append(note)


class TestSubscribeNotify:
    def test_edb_subscribe_notify_unsubscribe(self, writer, watcher):
        sub = watcher.subscribe("edge", 2)
        writer.facts("edge", [(1, 2)])
        note = sub.next(timeout=5.0)
        assert note.op == "insert"
        assert note.rows == [(1, 2)]
        assert note.predicate == "edge/2"
        assert note.txn > 0
        watcher.unsubscribe(sub)
        writer.facts("edge", [(3, 4)])
        assert sub.next(timeout=0.5) is None

    def test_snapshot_then_deltas(self, writer, watcher):
        writer.facts("edge", [(1, 2)])
        sub = watcher.subscribe("edge", 2, snapshot=True)
        assert sub.snapshot == [(1, 2)]
        writer.facts("edge", [(2, 3)])
        assert sub.next(timeout=5.0).rows == [(2, 3)]

    def test_pattern_filter_over_the_wire(self, writer, watcher):
        sub = watcher.subscribe("edge", 2, pattern=[1, None])
        writer.facts("edge", [(7, 8)])
        writer.facts("edge", [(1, 5)])
        note = sub.next(timeout=5.0)
        assert note.rows == [(1, 5)]
        assert sub.next(timeout=0.3) is None

    def test_idb_subscription_with_source(self, writer, watcher):
        writer.facts("edge", [(1, 2)])
        sub = watcher.subscribe("path", 2, source=PATH_RULES, snapshot=True)
        assert sub.kind == "idb"
        assert sub.snapshot == [(1, 2)]
        writer.facts("edge", [(2, 3)])
        rows = {row for note in drain(sub) for row in note.rows}
        assert rows == {(2, 3), (1, 3)}

    def test_subscription_stats_visible(self, writer, watcher):
        watcher.subscribe("edge", 2)
        writer.facts("edge", [(1, 2)])
        stats = writer.stats()["subscriptions"]
        assert stats["subscriptions_active"] == 1
        assert stats["notifications_pushed"] >= 1

    def test_unsubscribe_unknown_id_is_remote_error(self, watcher):
        with pytest.raises(RemoteError):
            watcher.request("unsubscribe", sub=999)


class TestTransactionDelivery:
    def test_rollback_pushes_nothing(self, writer, watcher):
        sub = watcher.subscribe("edge", 2)
        writer.begin()
        writer.facts("edge", [(1, 2)])
        writer.rollback()
        assert sub.next(timeout=0.5) is None

    def test_commit_pushes_one_netted_batch(self, writer, watcher):
        sub = watcher.subscribe("edge", 2)
        writer.begin()
        writer.facts("edge", [(1, 2), (3, 4)])
        writer.commit()
        note = sub.next(timeout=5.0)
        assert note.op == "insert"
        assert sorted(note.rows) == [(1, 2), (3, 4)]
        assert sub.next(timeout=0.3) is None


class TestOrderingUnderConcurrency:
    def test_seq_monotone_with_concurrent_writers(self, server, watcher):
        sub = watcher.subscribe("edge", 2)
        per_writer = 20

        def write(base):
            with Client(port=server.port, timeout=10.0) as c:
                for n in range(per_writer):
                    c.facts("edge", [(base, n)])

        threads = [threading.Thread(target=write, args=(b,)) for b in (1, 2)]
        for t in threads:
            t.start()
        rows, seqs = set(), []
        deadline = time.monotonic() + 30
        while len(rows) < 2 * per_writer and time.monotonic() < deadline:
            note = sub.next(timeout=2.0)
            if note is None:
                continue
            seqs.append(note.seq)
            rows.update(note.rows)
        for t in threads:
            t.join()
        assert rows == {(b, n) for b in (1, 2) for n in range(per_writer)}
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))


class TestSlowConsumer:
    def test_overflow_drops_with_resync_and_never_blocks_writer(
        self, server, writer, watcher
    ):
        sub = watcher.subscribe("edge", 2, capacity=2)
        # Stall the watcher session's pusher by holding its transport
        # lock (the test runs in-process), so the bounded queue must
        # absorb -- and then drop -- the burst.
        session = server.subscriptions._subs[sub.id].owner
        start = time.monotonic()
        with session._write_lock:
            for n in range(12):
                writer.facts("edge", [(n, n)])
            writer_elapsed = time.monotonic() - start
        notes = drain(sub)
        assert writer_elapsed < 5.0  # the writer never blocked on the consumer
        resyncs = [n for n in notes if n.op == "resync"]
        assert resyncs and resyncs[-1].dropped > 0
        seqs = [n.seq for n in notes]
        assert seqs == sorted(seqs)
        stats = writer.stats()["subscriptions"]
        assert stats["dropped"] > 0


class TestDisconnectCleanup:
    def test_disconnect_removes_subscriptions(self, server, writer):
        client = Client(port=server.port, timeout=10.0)
        client.subscribe("edge", 2)
        assert server.subscriptions.subscriptions_active == 1
        client.close()
        deadline = time.monotonic() + 5
        while server.subscriptions.subscriptions_active and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.subscriptions.subscriptions_active == 0
        # Commits keep flowing with nobody subscribed.
        assert writer.facts("edge", [(1, 2)]) == 1

    def test_abrupt_socket_close_removes_subscriptions(self, server):
        client = Client(port=server.port, timeout=10.0)
        client.subscribe("edge", 2)
        # No close op: simulate a dying consumer (shutdown sends FIN even
        # while the makefile writer still references the socket).
        client._sock.shutdown(socket.SHUT_RDWR)
        client._sock.close()
        deadline = time.monotonic() + 5
        while server.subscriptions.subscriptions_active and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.subscriptions.subscriptions_active == 0


class TestClientRecv:
    def test_next_times_out_cleanly(self, watcher):
        sub = watcher.subscribe("edge", 2)
        start = time.monotonic()
        assert sub.next(timeout=0.3) is None
        assert time.monotonic() - start < 2.0
        # The connection is still usable after the timeout.
        assert watcher.ping().startswith("session-")

    def test_closed_server_raises_connection_closed(self, server):
        client = Client(port=server.port, timeout=5.0)
        client.request("close")
        with pytest.raises(ConnectionClosed):
            client.ping()


@pytest.mark.stress
class TestSubscriptionSoak:
    def test_eight_subscribers_concurrent_writer_fanout(self, server):
        """8 subscribers over mixed committed/rolled-back traffic: each
        sees exactly the committed rows, in monotone seq order."""
        per_writer = 30
        writers = 2
        expected = {(b, n) for b in range(writers) for n in range(per_writer)}
        subscribers = []
        for _ in range(8):
            client = Client(port=server.port, timeout=10.0)
            subscribers.append((client, client.subscribe("edge", 2)))

        def write(base):
            with Client(port=server.port, timeout=10.0) as c:
                for n in range(per_writer):
                    c.begin()
                    c.facts("edge", [(base, n)])
                    c.commit()
                    # Rolled-back noise must reach nobody.
                    c.begin()
                    c.facts("edge", [(base + 100, n)])
                    c.rollback()

        threads = [threading.Thread(target=write, args=(b,)) for b in range(writers)]
        for t in threads:
            t.start()
        try:
            for client, sub in subscribers:
                rows, seqs = set(), []
                deadline = time.monotonic() + 60
                while len(rows) < len(expected) and time.monotonic() < deadline:
                    note = sub.next(timeout=2.0)
                    if note is None:
                        continue
                    assert note.op == "insert"
                    seqs.append(note.seq)
                    rows.update(note.rows)
                assert rows == expected
                assert seqs == sorted(seqs)
        finally:
            for t in threads:
                t.join()
            for client, _ in subscribers:
                client.close()
