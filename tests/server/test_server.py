"""End-to-end tests for the concurrent query server: a live server on an
ephemeral port, real sockets, real threads.

The ``stress`` marker selects the multi-threaded smoke test (its own CI
job); everything else here is fast enough for tier 1.
"""

import socket
import threading

import pytest

from repro.server.client import Client, RemoteError
from repro.server.server import GlueNailServer

PATH_RULES = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z)."


@pytest.fixture
def server():
    with GlueNailServer(port=0).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    with Client(port=server.port) as c:
        yield c


class TestBasicOps:
    def test_ping_names_the_session(self, client):
        assert client.ping().startswith("session-")

    def test_facts_query_round_trip(self, client):
        assert client.facts("edge", [(1, 2), (2, 3)]) == 2
        client.load(PATH_RULES)
        result = client.query("path(1, X)?")
        assert sorted(result.values) == [(1, 2), (1, 3)]
        assert result.resolution == "nail"
        assert result.stats["rows"] == 2

    def test_rows_and_rels(self, client):
        client.facts("edge", [(1, 2)])
        assert client.rows("edge", 2).values == [(1, 2)]
        assert {"name": "edge", "arity": 2, "rows": 1} in client.rels()

    def test_error_comes_back_as_remote_error(self, client):
        with pytest.raises(RemoteError):
            client.query("edge(")  # parse error crosses the wire intact

    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(RemoteError) as info:
            client.request("frobnicate")
        assert info.value.kind == "protocol"

    def test_base_program_preloaded(self):
        with GlueNailServer(port=0, program=PATH_RULES).start() as srv:
            with Client(port=srv.port) as c:
                c.facts("edge", [(1, 2), (2, 3)])
                assert len(c.query("path(1, X)?")) == 2

    def test_trace_round_trip(self, client):
        client.facts("edge", [(1, 2)])
        client.trace(True)
        result = client.query("edge(1, X)?")
        assert result.trace, "tracing on: events should ride along"
        client.trace(False)
        assert client.query("edge(1, X)?").trace == []


class TestSessionIsolation:
    def test_rules_are_private_edb_is_shared(self, server):
        with Client(port=server.port) as writer, Client(port=server.port) as reader:
            writer.facts("edge", [(1, 2), (2, 3)])
            writer.load(PATH_RULES)
            # The reader sees the shared facts...
            assert reader.rows("edge", 2).values == [(1, 2), (2, 3)]
            # ...but not the writer's private rules: for the reader the
            # predicate simply does not resolve.
            unresolved = reader.query("path(1, X)?")
            assert unresolved.values == [] and unresolved.resolution == "none"
            assert sorted(writer.query("path(1, X)?").values) == [(1, 2), (1, 3)]

    def test_per_session_stats_are_isolated(self, server):
        with Client(port=server.port) as a, Client(port=server.port) as b:
            a.facts("edge", [(i, i + 1) for i in range(50)])
            a.query("edge(1, X)?")
            idle = b.stats()["counters"]
            busy = a.stats()["counters"]
            assert busy.get("inserts", 0) == 50
            assert idle.get("inserts", 0) == 0
            # The server-wide aggregate still sees everything.
            assert a.stats()["server_counters"].get("inserts", 0) == 50


class TestTransactionsOverTheWire:
    def test_commit_publishes_rollback_discards(self, server):
        with Client(port=server.port) as a, Client(port=server.port) as b:
            a.begin()
            a.facts("edge", [(1, 2)])
            a.commit()
            assert b.rows("edge", 2).values == [(1, 2)]
            a.begin()
            a.facts("edge", [(9, 9)])
            a.rollback()
            assert b.rows("edge", 2).values == [(1, 2)]

    def test_writer_transaction_does_not_block_snapshot_readers(self, server):
        # MVCC (the default): a reader arriving mid-transaction pins the
        # last published snapshot and answers immediately -- it neither
        # blocks behind the writer nor sees uncommitted rows.
        with Client(port=server.port) as writer:
            writer.facts("edge", [(1, 2)])
            writer.begin()
            writer.facts("edge", [(2, 3)])
            seen = []
            done = threading.Event()

            def read():
                with Client(port=server.port) as reader:
                    seen.extend(reader.rows("edge", 2).values)
                done.set()

            thread = threading.Thread(target=read)
            thread.start()
            assert done.wait(5), "snapshot reader must not block behind the txn"
            thread.join(timeout=5)
            assert seen == [(1, 2)]  # the published version; (2, 3) invisible
            writer.commit()
            with Client(port=server.port) as reader:
                assert sorted(reader.rows("edge", 2).values) == [(1, 2), (2, 3)]

    def test_writer_transaction_blocks_readers_in_lock_mode(self):
        # mvcc=False is the lock-serialized baseline: the old behavior.
        with GlueNailServer(port=0, mvcc=False).start() as server:
            with Client(port=server.port) as writer:
                writer.facts("edge", [(1, 2)])
                writer.begin()
                writer.facts("edge", [(2, 3)])
                seen = []
                done = threading.Event()

                def read():
                    with Client(port=server.port) as reader:
                        seen.extend(reader.rows("edge", 2).values)
                    done.set()

                thread = threading.Thread(target=read)
                thread.start()
                assert not done.wait(0.2), "reader should block behind the transaction"
                writer.commit()
                thread.join(timeout=5)
                assert sorted(seen) == [(1, 2), (2, 3)]

    def test_disconnect_rolls_back(self, server):
        abandoned = Client(port=server.port)
        abandoned.facts("edge", [(1, 2)])
        abandoned.begin()
        abandoned.facts("edge", [(9, 9)])
        # Drop the connection mid-transaction.  shutdown() sends the FIN
        # immediately (close() alone defers it while makefile refs live).
        abandoned._sock.shutdown(socket.SHUT_RDWR)
        abandoned._sock.close()
        with Client(port=server.port) as fresh:
            assert fresh.rows("edge", 2).values == [(1, 2)]

    def test_double_begin_is_an_error(self, client):
        client.begin()
        with pytest.raises(RemoteError):
            client.begin()
        client.rollback()

    def test_commit_without_begin_is_an_error(self, client):
        with pytest.raises(RemoteError):
            client.commit()


class TestReplProxy:
    def test_repl_lines_round_trip(self, client):
        assert client.repl("edge(1, 2).") == "ok\n"
        out = client.repl("edge(1, X)?")
        assert "(1, 2)" in out
        assert "edge/2" in client.repl(".rels")

    def test_repl_transactions(self, client):
        client.repl("edge(1, 2).")
        assert "transaction open" in client.repl(".begin")
        client.repl("edge(9, 9).")
        assert "transaction rolled back" in client.repl(".rollback")
        assert "(9, 9)" not in client.repl(".dump edge/2")

    def test_repl_rule_definition(self, client):
        client.repl("edge(1, 2).")
        client.repl("edge(2, 3).")
        client.repl("path(X, Y) :- edge(X, Y).")
        client.repl("path(X, Z) :- path(X, Y) & edge(Y, Z).")
        out = client.repl("path(1, X)?")
        assert "(1, 2)" in out and "(1, 3)" in out


class TestDurableServer:
    def test_commits_survive_server_restart(self, tmp_path):
        with GlueNailServer(db_dir=str(tmp_path), port=0).start() as srv:
            with Client(port=srv.port) as c:
                c.facts("edge", [(1, 2), (2, 3)])
                assert c.stats()["wal_commits"] >= 1
                assert c.checkpoint() == 2
                c.facts("edge", [(3, 4)])
        with GlueNailServer(db_dir=str(tmp_path), port=0).start() as srv:
            with Client(port=srv.port) as c:
                assert len(c.rows("edge", 2)) == 3


@pytest.mark.stress
class TestStress:
    def test_concurrent_readers_see_no_torn_writes(self, server):
        """One writer commits pairs ("pair", i, 0)/("pair", i, 1) per write
        op; N readers poll.  Every snapshot must hold an even row count
        (both halves of each pair) and per-session stats must stay intact."""
        rounds = 40
        readers = 4
        stop = threading.Event()
        failures = []

        def read_loop():
            try:
                with Client(port=server.port, timeout=30) as c:
                    snapshots = 0
                    while not stop.is_set():
                        rows = c.rows("pair", 2).values
                        if len(rows) % 2 != 0:
                            failures.append(f"torn read: {len(rows)} rows")
                            return
                        snapshots += 1
                    # This session only ever read: its write counters are 0.
                    counters = c.stats()["counters"]
                    if counters.get("inserts", 0) != 0:
                        failures.append("reader session counted inserts")
                    if snapshots == 0:
                        failures.append("reader made no progress")
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                failures.append(f"reader died: {exc!r}")

        with Client(port=server.port) as writer:
            writer.facts("pair", [(0, 0), (0, 1)])
            threads = [threading.Thread(target=read_loop) for _ in range(readers)]
            for t in threads:
                t.start()
            try:
                for i in range(1, rounds):
                    writer.facts("pair", [(i, 0), (i, 1)])
            finally:
                stop.set()
            for t in threads:
                t.join(timeout=30)
            assert not failures, failures
            assert len(writer.rows("pair", 2)) == 2 * rounds
            assert writer.stats()["counters"]["inserts"] == 2 * rounds
