"""Server-side MVCC: snapshot routing of read requests, the
classify-then-pin upgrade race, stats surfacing, and notification
version stamping.  Uses in-process sessions (``server._new_session()``)
so the races are deterministic, plus real sockets where the wire format
matters."""

import pytest

from repro.server.client import Client
from repro.server.server import GlueNailServer

PROC_PROGRAM = """
module m;
export q(X:);
proc q(X:)
  return(X:) := in(X) & aux(X).
end
end
"""


@pytest.fixture
def server():
    with GlueNailServer(port=0).start() as srv:
        yield srv


class TestSnapshotRouting:
    def test_reads_pin_instead_of_locking(self, server):
        session = server._new_session()
        session.dispatch({"op": "facts", "name": "edge", "rows": [[1, 2]]})
        before = server.mvcc_store.stats()["publishes"]
        reply = session.dispatch({"op": "rows", "name": "edge", "arity": 2})
        assert reply["values"] == [[1, 2]] or reply["values"] == [(1, 2)]
        stats = session.dispatch({"op": "stats"})
        assert stats["counters"]["snapshot_pins"] >= 1
        assert stats["mvcc"]["publishes"] >= before
        assert stats["mvcc"]["window_open"] is False

    def test_durable_server_reports_fsyncs(self, tmp_path):
        with GlueNailServer(db_dir=str(tmp_path), port=0).start() as srv:
            session = srv._new_session()
            session.dispatch({"op": "facts", "name": "edge", "rows": [[1, 2]]})
            stats = session.dispatch({"op": "stats"})
            assert stats["wal_commits"] >= 1
            assert stats["wal_fsyncs"] >= 1

    def test_query_read_is_counted_as_snapshot_read(self, server):
        session = server._new_session()
        session.dispatch({"op": "facts", "name": "edge", "rows": [[1, 2]]})
        reply = session.dispatch({"op": "query", "q": "edge(1, X)?"})
        assert reply["values"] == [(1, 2)]
        counters = session.dispatch({"op": "stats"})["counters"]
        assert counters["snapshot_reads"] >= 1

    def test_lock_mode_has_no_version_store(self):
        with GlueNailServer(port=0, mvcc=False).start() as srv:
            assert srv.mvcc_store is None
            session = srv._new_session()
            session.dispatch({"op": "facts", "name": "edge", "rows": [[1, 2]]})
            reply = session.dispatch({"op": "rows", "name": "edge", "arity": 2})
            assert reply["values"] == [(1, 2)]
            stats = session.dispatch({"op": "stats"})
            assert "mvcc" not in stats
            assert stats["counters"].get("snapshot_pins", 0) == 0


class TestClassifyUpgradeRace:
    """Regression: a query classified read-only against the live catalog
    can be flipped by a concurrent drop onto the mutating
    procedure-fallback path.  The re-validation under the pin must route
    it back through the write lock -- never run it pinned and unlocked."""

    def race_drop_into_gap(self, server, session):
        """Install a classify hook that drops ``q/1`` (and publishes) in
        the classify->pin window, then starts counting write-lock
        acquisitions."""
        state = {"write_acquires": 0, "fired": False}

        def hook(_session):
            if state["fired"]:
                return
            state["fired"] = True
            with server.write_window():
                server.db.drop("q", 1)
            original = server.lock.acquire_write

            def counting():
                state["write_acquires"] += 1
                original()

            server.lock.acquire_write = counting

        server._classify_hook = hook
        return state

    def test_flipped_verdict_reruns_under_the_write_lock(self, server):
        session = server._new_session()
        session.dispatch({"op": "facts", "name": "q", "rows": [[1], [7]]})
        session.dispatch({"op": "facts", "name": "aux", "rows": [[1], [2]]})
        session.dispatch({"op": "load", "source": PROC_PROGRAM})
        state = self.race_drop_into_gap(server, session)

        reply = session.dispatch({"op": "query", "q": "q(1)?"})

        assert state["fired"], "the classify hook never ran"
        assert reply["resolution"] == "procedure"
        assert reply["values"] == [(1,)]
        assert state["write_acquires"] >= 1, (
            "a mutating fallback ran outside the write lock"
        )

    def test_flip_to_nothing_resolves_none_not_crash(self, server):
        # Same race, but with no procedure to fall back to: the re-run
        # under the write window answers "none" instead of crashing or
        # serving the dropped relation.
        session = server._new_session()
        session.dispatch({"op": "facts", "name": "q", "rows": [[1]]})
        state = self.race_drop_into_gap(server, session)
        reply = session.dispatch({"op": "query", "q": "q(1)?"})
        assert state["fired"]
        assert reply["resolution"] == "none"
        assert reply["values"] == []


class TestNotificationVersions:
    def test_pushed_frames_carry_the_published_version(self, server):
        with Client(port=server.port) as subscriber, \
                Client(port=server.port) as writer:
            sub = subscriber.subscribe("edge", 2)
            writer.facts("edge", [(1, 2)])
            note = sub.next(timeout=5)
            assert note is not None and note.op == "insert"
            assert note.version > 0
            assert note.version <= server.mvcc_store.pin().db_version
