"""Unit tests for the term model."""

import pytest

from repro.terms.term import (
    Atom,
    Compound,
    Num,
    Var,
    fresh_var,
    is_ground,
    mk,
    sort_key,
    variables,
)


class TestConstruction:
    def test_atom(self):
        assert Atom("foo").name == "foo"

    def test_atom_empty_string_is_legal(self):
        assert Atom("").name == ""

    def test_atom_rejects_non_str(self):
        with pytest.raises(TypeError):
            Atom(3)

    def test_num_int_and_float(self):
        assert Num(3).value == 3
        assert Num(2.5).value == 2.5

    def test_num_rejects_bool(self):
        with pytest.raises(TypeError):
            Num(True)

    def test_num_rejects_str(self):
        with pytest.raises(TypeError):
            Num("3")

    def test_var_rejects_empty_name(self):
        with pytest.raises(TypeError):
            Var("")

    def test_compound_functor_may_be_compound(self):
        # HiLog: students(cs99) can itself be a functor.
        inner = Compound(Atom("students"), (Atom("cs99"),))
        outer = Compound(inner, (Atom("wilson"),))
        assert outer.functor == inner
        assert outer.arity == 1

    def test_compound_rejects_empty_args(self):
        with pytest.raises(TypeError):
            Compound(Atom("f"), ())

    def test_compound_rejects_non_term_args(self):
        with pytest.raises(TypeError):
            Compound(Atom("f"), (1,))


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert Compound(Atom("f"), (Num(1),)) == Compound(Atom("f"), (Num(1),))

    def test_atoms_and_strings_are_one_type(self):
        # Paper Section 2: no separate string type.
        assert Atom("hello world") == Atom("hello world")

    def test_terms_are_hashable(self):
        terms = {Atom("a"), Num(1), Compound(Atom("f"), (Atom("a"),))}
        assert len(terms) == 3

    def test_int_float_num_equality(self):
        # 2 and 2.0 are the same database value (numeric matching).
        assert Num(2) == Num(2.0)
        assert hash(Num(2)) == hash(Num(2.0))

    def test_different_functor_not_equal(self):
        assert Compound(Atom("f"), (Num(1),)) != Compound(Atom("g"), (Num(1),))


class TestVariables:
    def test_variables_in_order(self):
        term = Compound(Atom("f"), (Var("X"), Compound(Atom("g"), (Var("Y"), Var("X")))))
        assert [v.name for v in variables(term)] == ["X", "Y", "X"]

    def test_variables_in_functor_position(self):
        term = Compound(Var("P"), (Var("X"),))
        assert {v.name for v in variables(term)} == {"P", "X"}

    def test_anonymous_flag(self):
        assert Var("_").is_anonymous
        assert Var("_foo").is_anonymous
        assert not Var("X").is_anonymous

    def test_fresh_var_not_anonymous(self):
        assert not fresh_var().is_anonymous

    def test_fresh_vars_distinct(self):
        assert fresh_var() != fresh_var()


class TestGroundness:
    def test_ground(self):
        assert is_ground(Compound(Atom("f"), (Num(1), Atom("a"))))

    def test_not_ground_with_var(self):
        assert not is_ground(Compound(Atom("f"), (Var("X"),)))

    def test_not_ground_with_var_functor(self):
        assert not is_ground(Compound(Var("P"), (Num(1),)))


class TestMk:
    def test_mk_string(self):
        assert mk("a") == Atom("a")

    def test_mk_numbers(self):
        assert mk(3) == Num(3)
        assert mk(2.5) == Num(2.5)

    def test_mk_tuple_builds_compound(self):
        assert mk(("f", 1, "a")) == Compound(Atom("f"), (Num(1), Atom("a")))

    def test_mk_nested(self):
        term = mk(("f", ("g", 1), "a"))
        assert term.args[0] == Compound(Atom("g"), (Num(1),))

    def test_mk_passthrough(self):
        atom = Atom("x")
        assert mk(atom) is atom

    def test_mk_rejects_bool(self):
        with pytest.raises(TypeError):
            mk(True)

    def test_mk_rejects_short_tuple(self):
        with pytest.raises(TypeError):
            mk(("f",))


class TestSortKey:
    def test_numbers_before_atoms_before_compounds(self):
        ordering = sorted(
            [Compound(Atom("f"), (Num(1),)), Atom("a"), Num(5)], key=sort_key
        )
        assert isinstance(ordering[0], Num)
        assert isinstance(ordering[1], Atom)
        assert isinstance(ordering[2], Compound)

    def test_numeric_order_mixed_int_float(self):
        values = sorted([Num(2.5), Num(2), Num(3)], key=sort_key)
        assert [v.value for v in values] == [2, 2.5, 3]

    def test_atoms_lexicographic(self):
        values = sorted([Atom("b"), Atom("a")], key=sort_key)
        assert [v.name for v in values] == ["a", "b"]

    def test_compounds_by_arity_then_functor(self):
        small = Compound(Atom("z"), (Num(1),))
        big = Compound(Atom("a"), (Num(1), Num(2)))
        assert sorted([big, small], key=sort_key) == [small, big]
