"""Unit tests for matching and substitution."""

import pytest

from repro.terms.matching import (
    MatchError,
    instantiate,
    match,
    match_tuple,
    rename_apart,
    substitute,
)
from repro.terms.term import Atom, Compound, Num, Var


def c(functor, *args):
    return Compound(Atom(functor) if isinstance(functor, str) else functor, args)


class TestMatch:
    def test_var_binds(self):
        assert match(Var("X"), Num(1)) == {"X": Num(1)}

    def test_constant_matches_itself(self):
        assert match(Atom("a"), Atom("a")) == {}

    def test_constant_mismatch(self):
        assert match(Atom("a"), Atom("b")) is None

    def test_num_matches_across_int_float(self):
        assert match(Num(2), Num(2.0)) == {}

    def test_compound_recursive(self):
        pattern = c("f", Var("X"), Atom("a"))
        ground = c("f", Num(1), Atom("a"))
        assert match(pattern, ground) == {"X": Num(1)}

    def test_compound_arity_mismatch(self):
        assert match(c("f", Var("X")), c("f", Num(1), Num(2))) is None

    def test_repeated_var_must_agree(self):
        pattern = c("f", Var("X"), Var("X"))
        assert match(pattern, c("f", Num(1), Num(1))) == {"X": Num(1)}
        assert match(pattern, c("f", Num(1), Num(2))) is None

    def test_anonymous_matches_anything_without_binding(self):
        pattern = c("f", Var("_"), Var("_"))
        result = match(pattern, c("f", Num(1), Num(2)))
        assert result == {}

    def test_existing_bindings_respected(self):
        assert match(Var("X"), Num(2), {"X": Num(1)}) is None
        assert match(Var("X"), Num(1), {"X": Num(1)}) == {"X": Num(1)}

    def test_input_bindings_not_mutated(self):
        base = {}
        match(Var("X"), Num(1), base)
        assert base == {}

    def test_hilog_functor_variable_position(self):
        # Matching a pattern with a variable functor against ground data.
        pattern = Compound(Var("S"), (Var("X"),))
        ground = Compound(c("students", Atom("cs99")), (Atom("wilson"),))
        result = match(pattern, ground)
        assert result["S"] == c("students", Atom("cs99"))
        assert result["X"] == Atom("wilson")


class TestMatchTuple:
    def test_positional(self):
        result = match_tuple((Var("X"), Atom("a")), (Num(1), Atom("a")))
        assert result == {"X": Num(1)}

    def test_length_mismatch(self):
        assert match_tuple((Var("X"),), (Num(1), Num(2))) is None

    def test_cross_position_consistency(self):
        assert match_tuple((Var("X"), Var("X")), (Num(1), Num(2))) is None

    def test_empty(self):
        assert match_tuple((), ()) == {}


class TestSubstitute:
    def test_bound_replaced_unbound_kept(self):
        term = c("f", Var("X"), Var("Y"))
        out = substitute(term, {"X": Num(1)})
        assert out == c("f", Num(1), Var("Y"))

    def test_identity_when_nothing_bound(self):
        term = c("f", Var("X"))
        assert substitute(term, {}) is term

    def test_functor_substitution(self):
        term = Compound(Var("S"), (Var("X"),))
        out = substitute(term, {"S": Atom("p")})
        assert out == Compound(Atom("p"), (Var("X"),))


class TestInstantiate:
    def test_full_instantiation(self):
        term = c("f", Var("X"))
        assert instantiate(term, {"X": Num(1)}) == c("f", Num(1))

    def test_unbound_raises(self):
        with pytest.raises(MatchError):
            instantiate(Var("X"), {})


class TestRenameApart:
    def test_renames_all_vars(self):
        term = c("f", Var("X"), c("g", Var("Y")))
        out = rename_apart(term, "_1")
        assert out == c("f", Var("X_1"), c("g", Var("Y_1")))

    def test_ground_unchanged(self):
        term = c("f", Num(1))
        assert rename_apart(term, "_1") == term
