"""Property-based tests over the term model (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_term
from repro.terms.matching import match, substitute
from repro.terms.printer import term_to_str
from repro.terms.term import Compound, Term, Var, is_ground, sort_key
from tests.conftest import ground_terms


@given(ground_terms)
def test_printer_parser_roundtrip(term):
    """parse(print(t)) == t for every ground term."""
    assert parse_term(term_to_str(term)) == term


@given(ground_terms)
def test_ground_terms_are_ground(term):
    assert is_ground(term)


@given(ground_terms)
def test_match_reflexive(term):
    """A ground term matches itself with the empty bindings."""
    assert match(term, term) == {}


@given(ground_terms, ground_terms)
def test_match_iff_equal_for_ground(left, right):
    """Ground-vs-ground matching is exactly equality."""
    result = match(left, right)
    assert (result is not None) == (left == right)


@given(ground_terms)
def test_substitute_then_match_roundtrip(ground):
    """Replacing a subterm with a variable and matching recovers it."""
    pattern = Compound(ground, (Var("X"),)) if not isinstance(ground, Var) else ground
    target = Compound(ground, (ground,))
    bindings = match(pattern, target)
    assert bindings == {"X": ground}
    assert substitute(pattern, bindings) == target


@given(st.lists(ground_terms, min_size=0, max_size=20))
def test_sort_key_total_and_deterministic(terms):
    """Sorting is stable across runs and consistent with equality."""
    once = sorted(terms, key=sort_key)
    twice = sorted(list(reversed(terms)), key=sort_key)
    assert once == twice
    for a, b in zip(once, once[1:]):
        assert sort_key(a) <= sort_key(b)


@given(ground_terms, ground_terms)
def test_sort_key_consistent_with_equality(a, b):
    if a == b:
        assert sort_key(a) == sort_key(b)


@given(ground_terms)
def test_hashable_and_stable(term):
    assert hash(term) == hash(term)
    assert term in {term}
