"""Executable versions of the paper's prose claims, one test per claim."""

import io

import pytest

from repro.core.query import rows_to_python
from repro.errors import GlueRuntimeError
from tests.conftest import make_system


class TestUniformSubgoalSemantics:
    """Section 2: "a subgoal in Glue or NAIL! can reference an EDB
    relation, a NAIL! predicate, or a Glue procedure, and the syntax and
    semantics are identical in all three cases."""

    SOURCE = """
    % the same binary 'source of pairs' implemented three ways
    nail_pairs(X, Y) :- seeds(X) & Y = X + 100.
    proc proc_pairs(:X, Y)
      return(:X, Y) := seeds(X) & Y = X + 100.
    end
    proc consume_edb(:X, Y)
      return(:X, Y) := edb_pairs(X, Y) & X < 3.
    end
    proc consume_nail(:X, Y)
      return(:X, Y) := nail_pairs(X, Y) & X < 3.
    end
    proc consume_proc(:X, Y)
      return(:X, Y) := proc_pairs(X, Y) & X < 3.
    end
    """

    def test_same_syntax_same_answers(self):
        system = make_system(self.SOURCE)
        system.facts("seeds", [(1,), (2,), (5,)])
        system.facts("edb_pairs", [(1, 101), (2, 102), (5, 105)])
        edb = sorted(rows_to_python(system.call("consume_edb")))
        nail = sorted(rows_to_python(system.call("consume_nail")))
        proc = sorted(rows_to_python(system.call("consume_proc")))
        assert edb == nail == proc == [(1, 101), (2, 102)]


class TestCurrentValueSemantics:
    """Section 2: "The meaning is always: use the current value." """

    def test_nail_sees_glue_updates(self):
        system = make_system(
            """
            big(X) :- data(X) & X > 10.
            proc grow(:X)
              data(50) += true.
              return(:X) := big(X).
            end
            """
        )
        system.facts("data", [(5,), (20,)])
        # First call: the update lands before the NAIL! subgoal reads.
        rows = sorted(rows_to_python(system.call("grow")))
        assert rows == [(20,), (50,)]

    def test_derived_values_track_deletes(self):
        system = make_system("big(X) :- data(X) & X > 10.")
        system.facts("data", [(20,), (30,)])
        assert len(system.query("big(X)?")) == 2
        from repro.terms.term import Num

        system.db.get("data", 1).delete((Num(30),))
        assert len(system.query("big(X)?")) == 1


class TestNoDuplicates:
    """Section 2: "Predicates do not have duplicates." """

    def test_joins_never_create_duplicates(self):
        system = make_system("out(X) := a(X, _) & b(X, _).")
        system.facts("a", [(1, i) for i in range(5)])
        system.facts("b", [(1, i) for i in range(5)])
        system.run_script()
        assert len(system.relation_rows("out", 1)) == 1


class TestStringsFirstClass:
    """Section 2: strings are atoms, with builtin operators."""

    def test_string_pipeline(self):
        system = make_system(
            """
            proc abbreviate(:Name, Abbrev)
              return(:Name, Abbrev) :=
                city(Name) & length(Name) > 4 &
                Abbrev = concat(substring(Name, 1, 3), '.').
            end
            """
        )
        system.facts("city", [("copenhagen",), ("rome",)])
        rows = rows_to_python(system.call("abbreviate"))
        assert rows == [("copenhagen", "cop.")]


class TestOperationalNotLogical:
    """Section 3.1: "Glue assignment statements are not logical rules,
    they are operational directives."""

    def test_statements_do_not_re_fire(self):
        # Unlike a rule, an executed statement is done: later EDB changes
        # do not retroactively update the head relation.
        system = make_system("snapshot(X) := live(X).")
        system.facts("live", [(1,)])
        system.run_script()
        system.facts("live", [(2,)])
        assert rows_to_python(system.relation_rows("snapshot", 1)) == [(1,)]

    def test_left_to_right_side_effects(self):
        # Fixed subgoals run in order: the write happens between updates.
        out = io.StringIO()
        system = make_system(
            """
            proc steps(:)
              return(:) := ++first(1) & write('mid') & ++second(2).
            end
            """,
            out=out,
        )
        system.call("steps")
        assert out.getvalue() == "mid"
        assert system.relation_rows("first", 1) and system.relation_rows("second", 1)


class TestMatchingNotUnification:
    """Section 2: ground relations mean matching suffices."""

    def test_nonground_insert_rejected(self):
        system = make_system("keep(X) := src(X).")
        from repro.terms.term import Var

        with pytest.raises(ValueError):
            system.db.relation("src", 1).insert((Var("X"),))


class TestFailureModes:
    """Errors surface as exceptions, not silent wrong answers."""

    def test_arithmetic_type_error(self):
        system = make_system("out(D) := pair(X, Y) & D = X + Y.")
        system.facts("pair", [("a", 1)])
        with pytest.raises(GlueRuntimeError, match="numbers"):
            system.run_script()

    def test_division_by_zero(self):
        system = make_system("out(D) := pair(X, Y) & D = X / Y.")
        system.facts("pair", [(1, 0)])
        with pytest.raises(GlueRuntimeError, match="zero"):
            system.run_script()

    def test_mean_of_atoms(self):
        system = make_system("out(M) := names(N) & M = mean(N).")
        system.facts("names", [("a",)])
        with pytest.raises(GlueRuntimeError, match="numeric"):
            system.run_script()

    def test_errors_leave_system_usable(self):
        system = make_system(
            """
            bad(D) := pair(X, Y) & D = X / Y.
            """
        )
        system.facts("pair", [(1, 0)])
        with pytest.raises(GlueRuntimeError):
            system.run_script()
        # The system still answers queries afterwards.
        assert rows_to_python(system.query("pair(X, Y)?")) == [(1, 0)]
