"""Determinism: identical inputs give identical outputs, runs, and dumps."""

import os
import sys

from repro.core.system import GlueNailSystem
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

PROGRAM = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).

proc spread(:X, Y)
rels acc(A, B);
  acc(X, Y) := edge(X, Y).
  repeat
    acc(X, Y) += acc(X, Z) & edge(Z, Y).
  until unchanged(acc(_, _));
  return(:X, Y) := acc(X, Y) & group_by(X) & C = count(Y) & C >= 1.
end
"""

FACTS = [(3, 1), (1, 2), (2, 3), (0, 1), (5, 0)]


def run_once():
    system = GlueNailSystem()
    system.load(PROGRAM)
    system.facts("edge", FACTS)
    query = [tuple(map(str, row)) for row in system.query("path(1, Y)?")]
    called = [tuple(map(str, row)) for row in system.call("spread")]
    counters = system.counters.snapshot()
    return query, called, counters


class TestDeterminism:
    def test_repeated_runs_identical(self):
        first = run_once()
        second = run_once()
        assert first == second

    def test_dump_identical_across_runs(self, tmp_path):
        paths = []
        for i in range(2):
            system = GlueNailSystem()
            system.load(PROGRAM)
            system.facts("edge", FACTS)
            system.call("spread")
            path = str(tmp_path / f"run{i}.gnd")
            system.save_edb(path)
            paths.append(path)
        with open(paths[0]) as a, open(paths[1]) as b:
            assert a.read() == b.read()

    def test_generated_program_pretty_stable(self):
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks"))
        from _workloads import generate_program

        source = generate_program(120, seed=11)
        program = parse_program(source)
        once = pretty_program(program)
        assert parse_program(once) == program
        assert pretty_program(parse_program(once)) == once

    def test_counters_stable_across_strategies_for_reads(self):
        # Same strategy, same program, same work: counters are exact.
        snapshots = []
        for _ in range(2):
            system = GlueNailSystem(strategy="materialized")
            system.load(PROGRAM)
            system.facts("edge", FACTS)
            system.compile()
            system.reset_counters()
            system.query("path(X, Y)?")
            snapshots.append(system.counters.snapshot())
        assert snapshots[0] == snapshots[1]
