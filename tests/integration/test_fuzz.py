"""Cross-engine fuzzing: random programs, four evaluators, one answer.

Generates small random stratified Datalog programs and random EDBs, then
checks the system-level invariants across evaluation routes:

* seminaive == naive (fixpoint identity)
* pipelined == materialized (Glue strategy identity)
* NAIL!->Glue generated code == native engine
* magic == full evaluation restricted to the query
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine, magic_query
from repro.nail.nail2glue import compile_rules_to_glue
from repro.storage.database import Database
from repro.terms.term import Atom, Num, Var

# ---------------------------------------------------------------- #
# random-program generator
# ---------------------------------------------------------------- #

edb_rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=15
)


@st.composite
def datalog_programs(draw):
    """A small stratified program over EDB preds e0/2, e1/2.

    Shape: one recursive predicate (p), one derived filter predicate (q),
    optionally a negation stratum (r).
    """
    lines = ["p(X, Y) :- e0(X, Y)."]
    if draw(st.booleans()):
        lines.append("p(X, Y) :- e1(X, Y).")
    recursive = draw(st.sampled_from([
        "p(X, Z) :- p(X, Y) & e0(Y, Z).",
        "p(X, Z) :- e0(X, Y) & p(Y, Z).",
        "p(X, Z) :- p(X, Y) & p(Y, Z).",
    ]))
    lines.append(recursive)
    if draw(st.booleans()):
        lines.append("q(X) :- p(X, Y) & X < Y.")
    if draw(st.booleans()):
        lines.append("r(X) :- e1(X, _) & !p(X, X).")
    return "\n".join(lines)


def load_db(e0, e1):
    db = Database()
    db.facts("e0", e0)
    db.facts("e1", e1)
    return db


def idb_snapshot(engine: NailEngine):
    engine.materialize_all()
    out = {}
    for (name, arity) in sorted(engine.idb.keys(), key=str):
        out[str(name), arity] = engine.idb.get(name, arity).sorted_rows()
    return out


@given(datalog_programs(), edb_rows, edb_rows)
@settings(max_examples=25, deadline=None)
def test_seminaive_equals_naive_random_programs(source, e0, e1):
    rules = list(parse_program(source).items)
    left = idb_snapshot(NailEngine(load_db(e0, e1), rules, strategy="seminaive"))
    right = idb_snapshot(NailEngine(load_db(e0, e1), rules, strategy="naive"))
    assert left == right


@given(datalog_programs(), edb_rows, edb_rows)
@settings(max_examples=15, deadline=None)
def test_nail2glue_equals_native_random_programs(source, e0, e1):
    rules = list(parse_program(source).items)
    result = compile_rules_to_glue(rules)
    system = GlueNailSystem()
    system.load(result.source)
    system.facts("e0", e0)
    system.facts("e1", e1)
    system.call(result.driver_proc)
    engine = NailEngine(load_db(e0, e1), rules)
    for name, arity in result.output_preds:
        generated = system.relation_rows(name, arity)
        native = engine.materialize(Atom(name), arity).sorted_rows()
        assert generated == native, (name, arity)


@given(edb_rows, edb_rows, st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_magic_equals_full_random_edb(e0, e1, source_node):
    rules = list(parse_program(
        "p(X, Y) :- e0(X, Y).\np(X, Y) :- e1(X, Y).\n"
        "p(X, Z) :- p(X, Y) & e0(Y, Z)."
    ).items)
    db = load_db(e0, e1)
    full = NailEngine(db, rules).query(Atom("p"), (Num(source_node), Var("Y")))
    magic, _ = magic_query(db, rules, Atom("p"), (Num(source_node), Var("Y")))
    assert sorted(map(str, full)) == sorted(map(str, magic))


GLUE_BODY_TEMPLATE = """
out(X, Z) := e0(X, Y) & e1(Y, Z) & X <= Z.
agg(Y, N) := e0(X, Y) & group_by(Y) & N = count(X).
chain(A, D) := e0(A, B) & e0(B, C) & e0(C, D) & A != D.
"""


@given(edb_rows, edb_rows, st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_strategies_and_optimizer_agree_random_edb(e0, e1, optimize, dedup):
    snapshots = []
    for strategy in ("pipelined", "materialized"):
        system = GlueNailSystem(
            strategy=strategy, optimize=optimize, dedup_on_break=dedup
        )
        system.load(GLUE_BODY_TEMPLATE)
        system.facts("e0", e0)
        system.facts("e1", e1)
        system.run_script()
        snapshots.append(
            tuple(
                tuple(system.relation_rows(name, arity))
                for name, arity in (("out", 2), ("agg", 2), ("chain", 2))
            )
        )
    assert snapshots[0] == snapshots[1]


@given(edb_rows, edb_rows)
@settings(max_examples=25, deadline=None)
def test_vm_and_rule_evaluator_agree(e0, e1):
    """The positional Glue VM and the bindings-based NAIL! evaluator are
    independent implementations of the same body semantics: running the
    same conjunction through both must give the same tuples."""
    body = "a(X, Y) & b(Y, Z) & X != Z & W = X + Z"
    # Route 1: a Glue statement.
    glue = GlueNailSystem()
    glue.load(f"out(X, Z, W) := {body}.")
    glue.facts("a", e0)
    glue.facts("b", e1)
    glue.run_script()
    glue_rows = glue.relation_rows("out", 3)
    # Route 2: a NAIL! rule.
    nail = GlueNailSystem()
    nail.load(f"out(X, Z, W) :- {body}.")
    nail.facts("a", e0)
    nail.facts("b", e1)
    nail_rows = nail.idb_rows("out", 3)
    assert glue_rows == nail_rows


@given(edb_rows)
@settings(max_examples=20, deadline=None)
def test_vm_and_rule_evaluator_agree_on_aggregates(rows):
    body = "a(K, V) & group_by(K) & S = sum(V)"
    glue = GlueNailSystem()
    glue.load(f"out(K, S) := {body}.")
    glue.facts("a", rows)
    glue.run_script()
    nail = GlueNailSystem()
    nail.load(f"out(K, S) :- {body}.")
    nail.facts("a", rows)
    assert glue.relation_rows("out", 2) == nail.idb_rows("out", 2)
