"""A medium-sized application, end to end.

The paper (Section 9) reports undergraduates writing "medium sized test
applications in Glue" to shake out the design.  This is that exercise for
the reproduction: a library-circulation system spanning two modules, NAIL!
views, Glue workflows with keyed updates and loops, a foreign clock,
HiLog per-member loan sets, persistence, and demand queries -- one program,
one EDB, every subsystem.
"""

import io

import pytest

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.terms.term import mk

LIBRARY = """
module catalog;
export available(:Book), overdue(:Member, Book), holdings_report(:Genre, N);
edb book(Book, Genre), copy(Copy, Book), loan(Copy, Member, Due);
from clockmod import clock(:Now);

% --- NAIL! views ------------------------------------------------------
on_loan(Copy) :- loan(Copy, _, _).
available_copy(Copy, Book) :- copy(Copy, Book) & !on_loan(Copy).
available(Book) :- available_copy(_, Book).

proc overdue(:Member, Book)
  return(:Member, Book) :=
    clock(Now) & loan(Copy, Member, Due) & Due < Now & copy(Copy, Book).
end

proc holdings_report(:Genre, N)
  return(:Genre, N) :=
    book(Book, Genre) & copy(C, Book) & group_by(Genre) & N = count(C).
end
end

module circulation;
export checkout(Member, Book:Copy), return_copy(Copy:), member_loans(Member:Book);
from catalog import available(:Book);
from clockmod import clock(:Now);
edb copy(Copy, Book), loan(Copy, Member, Due), loan_log(Copy, Member, Action);

% Each member's loan history is a HiLog set named history(Member).
history(Member)(Book) :- loan_log(Copy, Member, out) & copy(Copy, Book).

proc checkout(Member, Book:Copy)
rels pick(C);
  pick(C) := in(Member, Book) & copy(C, Book) & !loan(C, _, _) &
             Chosen = arbitrary(C) & C = Chosen.
  loan(C, Member, Due) += pick(C) & in(Member, _) & clock(Now) &
                          Due = Now + 14.
  loan_log(C, Member, out) += pick(C) & in(Member, _).
  return(Member, Book:Copy) := in(Member, Book) & pick(Copy).
end

proc return_copy(Copy:)
  loan_log(Copy, M, back) += in(Copy) & loan(Copy, M, _).
  loan(Copy, M, D) -= in(Copy) & loan(Copy, M, D).
  return(Copy:) := in(Copy) & !loan(Copy, _, _).
end

proc member_loans(Member:Book)
  return(Member:Book) := in(Member) & H = history(Member) & H(Book).
end
end
"""


class Clock:
    def __init__(self, now=100):
        self.now = now

    def fn(self, ctx, rows):
        return [(mk(self.now),)]


@pytest.fixture
def app():
    clock = Clock(now=100)
    system = GlueNailSystem(out=io.StringIO())
    system.register_foreign("clockmod", "clock", 1, 0, clock.fn)
    system.load(LIBRARY)
    system.facts(
        "book",
        [("dune", "scifi"), ("emma", "classic"), ("tripods", "scifi")],
    )
    system.facts(
        "copy",
        [("c1", "dune"), ("c2", "dune"), ("c3", "emma"), ("c4", "tripods")],
    )
    return system, clock


class TestLibraryApp:
    def test_initial_availability(self, app):
        system, _ = app
        books = sorted(r[0] for r in rows_to_python(system.query("available(B)?")))
        assert books == ["dune", "emma", "tripods"]

    def test_checkout_updates_views(self, app):
        system, _ = app
        (row,) = system.call("checkout", [("ann", "emma")])
        assert str(row[2]) == "c3"
        # The view reflects the new loan immediately ("current value").
        books = sorted(r[0] for r in rows_to_python(system.query("available(B)?")))
        assert books == ["dune", "tripods"]

    def test_checkout_picks_one_copy(self, app):
        system, _ = app
        (first,) = system.call("checkout", [("ann", "dune")])
        (second,) = system.call("checkout", [("bob", "dune")])
        assert {str(first[2]), str(second[2])} == {"c1", "c2"}
        assert system.call("checkout", [("cat", "dune")]) == []  # none left

    def test_due_dates_use_the_clock(self, app):
        system, clock = app
        clock.now = 250
        system.call("checkout", [("ann", "emma")])
        rows = rows_to_python(system.relation_rows("loan", 3))
        assert rows == [("c3", "ann", 264)]

    def test_overdue_report(self, app):
        system, clock = app
        system.call("checkout", [("ann", "emma")])  # due 114
        clock.now = 200
        rows = rows_to_python(system.call("overdue"))
        assert rows == [("ann", "emma")]
        clock.now = 105
        assert system.call("overdue") == []

    def test_return_frees_the_copy(self, app):
        system, _ = app
        system.call("checkout", [("ann", "emma")])
        assert system.call("return_copy", [("c3",)]) == [(mk("c3"),)]
        books = sorted(r[0] for r in rows_to_python(system.query("available(B)?")))
        assert "emma" in books

    def test_hilog_history_sets(self, app):
        system, _ = app
        system.call("checkout", [("ann", "emma")])
        system.call("return_copy", [("c3",)])
        system.call("checkout", [("ann", "tripods")])
        rows = sorted(r[1] for r in rows_to_python(system.call("member_loans", [("ann",)])))
        assert rows == ["emma", "tripods"]

    def test_holdings_report_groups(self, app):
        system, _ = app
        rows = sorted(rows_to_python(system.call("holdings_report")))
        assert rows == [("classic", 1), ("scifi", 3)]

    def test_demand_query_on_view(self, app):
        system, _ = app
        rows = system.query_magic("on_loan(C)?")
        assert rows == []
        system.call("checkout", [("ann", "emma")])
        rows = system.query("on_loan(c3)?")
        assert len(rows) == 1

    def test_persistence_round_trip(self, app, tmp_path):
        system, clock = app
        system.call("checkout", [("ann", "emma")])
        path = str(tmp_path / "library.gnd")
        system.save_edb(path)

        fresh_clock = Clock(now=500)
        fresh = GlueNailSystem(out=io.StringIO())
        fresh.register_foreign("clockmod", "clock", 1, 0, fresh_clock.fn)
        fresh.load(LIBRARY)
        fresh.load_edb(path)
        # ann's loan (due 114) is long overdue at t=500.
        rows = rows_to_python(fresh.call("overdue"))
        assert rows == [("ann", "emma")]
        # Histories (loan_log + HiLog set) survived too.
        loans = rows_to_python(fresh.call("member_loans", [("ann",)]))
        assert loans == [("ann", "emma")]
