"""Toolchain composition: the output of one tool feeds the next."""

import pytest

from repro.core.cli import main

PROGRAM = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
edge(1, 2).
edge(2, 3).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.glue"
    path.write_text(PROGRAM)
    return str(path)


class TestToolchain:
    def test_nail2glue_output_passes_check(self, program_file, tmp_path, capsys):
        # nail2glue | check: the generated module is a valid program.
        assert main(["nail2glue", program_file]) == 0
        generated = capsys.readouterr().out
        gen_file = tmp_path / "generated.glue"
        gen_file.write_text(generated)
        assert main(["check", str(gen_file)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_nail2glue_output_runs_and_matches_query(self, program_file, tmp_path, capsys):
        assert main(["nail2glue", program_file]) == 0
        generated = capsys.readouterr().out
        gen_file = tmp_path / "generated.glue"
        gen_file.write_text(generated)
        # Run the generated driver, dump the EDB, then query the dump.
        dump = str(tmp_path / "state.gnd")
        assert main(
            ["run", str(gen_file), "--call", "nail_eval_all", "--save", dump]
        ) == 0
        capsys.readouterr()
        assert main(["query", program_file, "path(1, Y)?", "--edb", dump]) == 0
        out = capsys.readouterr().out
        assert "(1, 3)" in out

    def test_fmt_output_passes_check(self, program_file, tmp_path, capsys):
        assert main(["fmt", program_file]) == 0
        formatted = capsys.readouterr().out
        fmt_file = tmp_path / "formatted.glue"
        fmt_file.write_text(formatted)
        assert main(["check", str(fmt_file)]) == 0

    def test_explain_of_generated_code(self, program_file, tmp_path, capsys):
        assert main(["nail2glue", program_file]) == 0
        generated = capsys.readouterr().out
        gen_file = tmp_path / "generated.glue"
        gen_file.write_text(generated)
        assert main(["explain", str(gen_file)]) == 0
        out = capsys.readouterr().out
        assert "proc nail_stratum_0/0" in out
        assert "ANTIJOIN" in out  # the seminaive negation-as-difference
