"""Guard the runnable examples: each runs cleanly and prints its headline
results.  Run as subprocesses so they exercise exactly what a user gets."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)

CASES = {
    "quickstart.py": ["ancestor(alice, X)?", "family_tree", "saved 5 facts"],
    "cad_select.py": ["user selected: line_17", "user selected: circle_3",
                      "nothing selected"],
    "university.py": ["students(cs99)", "wilson (student)", "set_eq"],
    "payroll.py": ["ann -> 110", "removed: ['bob', 'eve']", "headcount=2"],
    "graph_analysis.py": ["seminaive (full)", "magic (demand)", "True"],
    "bill_of_materials.py": ["spoke  x 64", "SHORT tube by 1"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(EXAMPLES_DIR), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    for marker in CASES[script]:
        assert marker in result.stdout, f"{script}: missing {marker!r}"


def test_every_example_is_covered():
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(CASES), "new example? add its markers to CASES"
