"""Figure 1 end-to-end: the micro-CAD ``select`` module.

The paper's windowing I/O is substituted by scripted foreign procedures
(mouse/keyboard event queue, highlight/dehighlight recorders) per the
reproduction's substitution policy; the module text itself follows
Figure 1.
"""

import io

import pytest

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.terms.term import mk

CAD_MODULE = """
module example;
export select(:Key);
from windows import event(:Type, Data);
from graphics import highlight(Key:), dehighlight(Key:);
edb element(Key, Origin, P1, P2, DS), tolerance(T);

proc select(:Key)
rels possible(Key, D), try(Key), confirmed(Key);
  possible(Key, D) :=
    event(mouse, p(X, Y)) & graphic_search(p(X, Y), Key, D).
  repeat
    try(Key) :=
      possible(Key, D) & D = min(D) & It = arbitrary(Key) &
      --possible(It, D).
    confirmed(K) :=
      try(K) & highlight(K) & write('This one?') &
      event(keyboard, KeyBuffer) & dehighlight(K) & KeyBuffer = 'y'.
  until { confirmed(K) | empty(possible(K, _)) };
  return(:Key) := confirmed(Key).
end

graphic_search(p(X, Y), Key, Dist) :-
  element(Key, _, p(Xmin, Ymin), _, _) & tolerance(T) &
  Dist = (X - Xmin) * (X - Xmin) + (Y - Ymin) * (Y - Ymin) &
  Dist < T.
end
"""


class Harness:
    """Scripted window system: an event queue plus highlight recorders."""

    def __init__(self, events):
        self.events = list(events)
        self.highlighted = []
        self.dehighlighted = []
        self.out = io.StringIO()

    def event_fn(self, ctx, rows):
        if not self.events:
            return []
        kind, data = self.events.pop(0)
        return [(mk(kind), mk(data))]

    def highlight_fn(self, ctx, rows):
        self.highlighted.extend(str(r[0]) for r in rows)
        return rows

    def dehighlight_fn(self, ctx, rows):
        self.dehighlighted.extend(str(r[0]) for r in rows)
        return rows

    def build(self):
        system = GlueNailSystem(out=self.out)
        system.register_foreign("windows", "event", 2, 0, self.event_fn)
        system.register_foreign("graphics", "highlight", 1, 1, self.highlight_fn)
        system.register_foreign("graphics", "dehighlight", 1, 1, self.dehighlight_fn)
        system.load(CAD_MODULE)
        # Three elements at increasing distance from the click point (5,5).
        system.facts(
            "element",
            [
                ("near", "o1", ("p", 5, 6), ("p", 0, 0), "ds"),    # dist 1
                ("mid", "o2", ("p", 7, 5), ("p", 0, 0), "ds"),     # dist 4
                ("far", "o3", ("p", 9, 8), ("p", 0, 0), "ds"),     # dist 25
                ("offscreen", "o4", ("p", 90, 90), ("p", 0, 0), "ds"),
            ],
        )
        system.facts("tolerance", [(50,)])
        return system


class TestSelect:
    def test_first_candidate_accepted(self):
        harness = Harness([("mouse", ("p", 5, 5)), ("keyboard", "y")])
        system = harness.build()
        rows = rows_to_python(system.call("select"))
        assert rows == [("near",)]
        assert harness.highlighted == ["near"]
        assert harness.dehighlighted == ["near"]
        assert harness.out.getvalue() == "This one?"

    def test_candidates_offered_in_distance_order(self):
        harness = Harness(
            [
                ("mouse", ("p", 5, 5)),
                ("keyboard", "n"),
                ("keyboard", "n"),
                ("keyboard", "y"),
            ]
        )
        system = harness.build()
        rows = rows_to_python(system.call("select"))
        assert rows == [("far",)]
        assert harness.highlighted == ["near", "mid", "far"]

    def test_rejecting_everything_returns_nothing(self):
        harness = Harness(
            [
                ("mouse", ("p", 5, 5)),
                ("keyboard", "n"),
                ("keyboard", "n"),
                ("keyboard", "n"),
            ]
        )
        system = harness.build()
        assert system.call("select") == []

    def test_tolerance_excludes_far_elements(self):
        harness = Harness([("mouse", ("p", 5, 5)), ("keyboard", "y")])
        system = harness.build()
        system.call("select")
        # The offscreen element (distance 14450) never became a candidate.
        assert "offscreen" not in harness.highlighted

    def test_click_far_from_everything(self):
        harness = Harness([("mouse", ("p", 60, 60)), ("keyboard", "y")])
        system = harness.build()
        assert system.call("select") == []
        assert harness.highlighted == []

    def test_graphic_search_is_a_nail_predicate(self):
        harness = Harness([])
        system = harness.build()
        rows = system.query("graphic_search(p(5, 5), Key, D)?")
        got = {(str(r[1]), r[2].value) for r in rows}
        assert got == {("near", 1), ("mid", 4), ("far", 25)}

    def test_module_exports_select_only(self):
        harness = Harness([])
        system = harness.build()
        compiled = system.compile()
        assert ("select", 1) in compiled.exported
