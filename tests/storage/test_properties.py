"""Property-based tests of storage invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.adaptive import AdaptiveIndexPolicy, NeverIndexPolicy
from repro.storage.database import Database
from repro.storage.persist import load_database, save_database
from repro.storage.relation import Relation
from repro.storage.uniondiff import uniondiff
from repro.terms.matching import match_tuple
from repro.terms.term import Atom, Num, Var
from tests.conftest import ground_terms

rows2 = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).map(
        lambda t: (Num(t[0]), Num(t[1]))
    ),
    max_size=40,
)

# Insert/delete scripts: True = insert, False = delete.
ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 5)), max_size=60
)


@given(ops)
def test_relation_behaves_like_a_set(script):
    """A relation is observationally a set of tuples."""
    relation = Relation(Atom("r"), 2)
    model = set()
    for insert, a, b in script:
        row = (Num(a), Num(b))
        if insert:
            assert relation.insert(row) == (row not in model)
            model.add(row)
        else:
            assert relation.delete(row) == (row in model)
            model.discard(row)
        assert len(relation) == len(model)
    assert set(relation.rows()) == model


@given(rows2, st.integers(0, 5))
def test_select_agrees_with_bruteforce(rows, key):
    relation = Relation(Atom("r"), 2)
    relation.insert_many(rows)
    pattern = (Num(key), Var("Y"))
    got = sorted(b["Y"].value for b in relation.select(pattern))
    expected = sorted(b.value for a, b in set(rows) if a == Num(key))
    assert got == expected


@given(rows2, st.integers(0, 5))
def test_index_transparent(rows, key):
    """An index never changes results, only costs."""
    plain = Relation(Atom("r"), 2, index_policy=NeverIndexPolicy())
    indexed = Relation(Atom("r"), 2, index_policy=AdaptiveIndexPolicy(build_factor=0.01))
    plain.insert_many(rows)
    indexed.insert_many(rows)
    pattern = (Num(key), Var("Y"))
    for _ in range(3):  # repeated queries trigger adaptive builds
        left = sorted(b["Y"].value for b in plain.select(pattern))
        right = sorted(b["Y"].value for b in indexed.select(pattern))
        assert left == right


@given(rows2, rows2)
def test_uniondiff_laws(old, delta):
    relation = Relation(Atom("r"), 2)
    relation.insert_many(old)
    old_set = set(relation.rows())
    new = uniondiff(relation, delta)
    assert set(new) == set(delta) - old_set
    assert set(relation.rows()) == old_set | set(delta)
    assert len(new) == len(set(new))  # no duplicates in the returned delta


@given(st.lists(st.tuples(ground_terms, ground_terms), max_size=12))
@settings(max_examples=25, deadline=None)
def test_persist_roundtrip_arbitrary_terms(rows):
    db = Database()
    for a, b in rows:
        db.relation("t", 2).insert((a, b))
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
    original = db.get("t", 2)
    restored = loaded.get("t", 2)
    if original is None:
        assert restored is None or len(restored) == 0
    else:
        assert restored.sorted_rows() == original.sorted_rows()
