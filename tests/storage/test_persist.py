"""Tests for EDB persistence: "storing EDB relations on disk between runs"."""

import os

from repro.storage.database import Database
from repro.storage.persist import load_database, save_database
from repro.terms.term import Atom, Compound, Num


class TestRoundTrip:
    def test_simple_facts(self, tmp_path, db):
        db.facts("edge", [(1, 2), (2, 3)])
        db.facts("name", [("ann",), ("bob",)])
        path = str(tmp_path / "edb.gnd")
        count = save_database(db, path)
        assert count == 4
        loaded = load_database(path)
        assert loaded.get("edge", 2).sorted_rows() == db.get("edge", 2).sorted_rows()
        assert loaded.get("name", 1).sorted_rows() == db.get("name", 1).sorted_rows()

    def test_quoted_atoms_survive(self, tmp_path, db):
        db.fact("msg", "hello world", "it's")
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
        assert (Atom("hello world"), Atom("it's")) in loaded.get("msg", 2)

    def test_compound_values_and_names(self, tmp_path, db):
        set_name = Compound(Atom("students"), (Atom("cs99"),))
        db.relation(set_name, 1).insert((Atom("wilson"),))
        db.fact("point", ("p", 3, 4))
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
        assert (Atom("wilson"),) in loaded.get(set_name, 1)
        assert (Compound(Atom("p"), (Num(3), Num(4))),) in loaded.get("point", 1)

    def test_empty_relations_keep_catalog_entry(self, tmp_path, db):
        db.declare("empty_rel", 3)
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.exists("empty_rel", 3)
        assert len(loaded.get("empty_rel", 3)) == 0

    def test_zero_arity_relation(self, tmp_path, db):
        db.relation("flag", 0).insert(())
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
        assert () in loaded.get("flag", 0)

    def test_floats_and_negatives(self, tmp_path, db):
        db.facts("measure", [(-3, 2.5), (1000000, -0.125)])
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.get("measure", 2).sorted_rows() == db.get("measure", 2).sorted_rows()

    def test_load_into_existing_database(self, tmp_path, db):
        db.fact("edge", 1, 2)
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        target = Database()
        target.fact("edge", 9, 9)
        load_database(path, target)
        assert len(target.get("edge", 2)) == 2

    def test_dump_is_deterministic(self, tmp_path, db):
        db.facts("edge", [(2, 3), (1, 2)])
        p1, p2 = str(tmp_path / "a.gnd"), str(tmp_path / "b.gnd")
        save_database(db, p1)
        save_database(db, p2)
        with open(p1) as f1, open(p2) as f2:
            assert f1.read() == f2.read()

    def test_bad_line_reports_position(self, tmp_path):
        path = str(tmp_path / "bad.gnd")
        with open(path, "w") as handle:
            handle.write("% Glue-Nail EDB dump (format 1)\nedge(1, 2).\n???\n")
        import pytest

        with pytest.raises(ValueError, match="bad.gnd:3"):
            load_database(path)

    def test_creates_directories(self, tmp_path, db):
        db.fact("edge", 1, 2)
        path = str(tmp_path / "deep" / "nested" / "edb.gnd")
        save_database(db, path)
        assert os.path.exists(path)


class TestAtomicSave:
    def test_success_leaves_no_temp_file(self, tmp_path, db):
        db.fact("edge", 1, 2)
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        assert os.listdir(str(tmp_path)) == ["edb.gnd"]

    def test_failed_dump_keeps_the_old_file(self, tmp_path, db, monkeypatch):
        """A crash mid-write must not tear the previous dump: the write goes
        to a temp file, which is cleaned up, and the target stays intact."""
        import pytest

        db.fact("edge", 1, 2)
        path = str(tmp_path / "edb.gnd")
        save_database(db, path)
        with open(path) as handle:
            before = handle.read()

        db.fact("edge", 2, 3)
        monkeypatch.setattr(os, "replace", _boom)
        with pytest.raises(RuntimeError):
            save_database(db, path)
        with open(path) as handle:
            assert handle.read() == before  # old dump untouched
        assert not os.path.exists(path + ".tmp")  # temp cleaned up


def _boom(*args, **kwargs):
    raise RuntimeError("simulated crash during rename")
