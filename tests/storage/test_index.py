"""Unit tests for the HashIndex structure itself."""

import pytest

from repro.storage.index import HashIndex
from repro.terms.term import Atom, Num


def row(*values):
    return tuple(Num(v) if isinstance(v, int) else Atom(v) for v in values)


class TestHashIndex:
    def test_add_and_probe(self):
        index = HashIndex((0,))
        index.add(row(1, "a"))
        index.add(row(1, "b"))
        index.add(row(2, "c"))
        assert sorted(map(str, index.probe((Num(1),)))) == [
            str(row(1, "a")), str(row(1, "b")),
        ]
        assert index.probe_count((Num(2),)) == 1
        assert index.probe_count((Num(9),)) == 0

    def test_multi_column_key(self):
        index = HashIndex((0, 2))
        index.add(row(1, "x", 5))
        index.add(row(1, "y", 5))
        index.add(row(1, "x", 6))
        assert index.probe_count((Num(1), Num(5))) == 2

    def test_remove(self):
        index = HashIndex((0,))
        index.add(row(1, "a"))
        index.remove(row(1, "a"))
        assert index.probe_count((Num(1),)) == 0
        index.remove(row(1, "a"))  # absent: no error

    def test_remove_keeps_other_rows_in_bucket(self):
        index = HashIndex((0,))
        index.add(row(1, "a"))
        index.add(row(1, "b"))
        index.remove(row(1, "a"))
        assert index.probe_count((Num(1),)) == 1

    def test_bulk_load_returns_count(self):
        index = HashIndex((1,))
        assert index.bulk_load([row(1, "a"), row(2, "a"), row(3, "b")]) == 3
        assert index.probe_count((Atom("a"),)) == 2

    def test_len_and_clear(self):
        index = HashIndex((0,))
        index.bulk_load([row(i, "v") for i in range(5)])
        assert len(index) == 5
        index.clear()
        assert len(index) == 0

    def test_columns_validated(self):
        with pytest.raises(ValueError):
            HashIndex(())
        with pytest.raises(ValueError):
            HashIndex((2, 1))
        with pytest.raises(ValueError):
            HashIndex((1, 1))

    def test_key_of(self):
        index = HashIndex((1,))
        assert index.key_of(row(1, "k", 2)) == (Atom("k"),)
