"""Tests for the Database catalog."""

import pytest

from repro.storage.database import Database, pred_key
from repro.terms.term import Atom, Compound, Num, Var


class TestPredKey:
    def test_string_lifted(self):
        assert pred_key("edge", 2) == (Atom("edge"), 2)

    def test_term_passthrough(self):
        name = Compound(Atom("students"), (Atom("cs99"),))
        assert pred_key(name, 1) == (name, 1)

    def test_rejects_nonground(self):
        with pytest.raises(ValueError):
            pred_key(Var("X"), 1)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            pred_key(3, 1)


class TestCatalog:
    def test_declare_and_get(self, db):
        r = db.declare("edge", 2)
        assert db.get("edge", 2) is r

    def test_relation_creates_on_demand(self, db):
        r = db.relation("fresh", 3)
        assert r.arity == 3
        assert db.exists("fresh", 3)

    def test_same_name_different_arity_coexist(self, db):
        r1 = db.relation("p", 1)
        r2 = db.relation("p", 2)
        assert r1 is not r2

    def test_arity_conflict_on_declare(self, db):
        db.declare("edge", 2)
        # declaring at a new arity creates a distinct relation, not an error
        db.declare("edge", 3)
        assert db.get("edge", 2).arity == 2
        assert db.get("edge", 3).arity == 3

    def test_drop(self, db):
        db.declare("edge", 2)
        assert db.drop("edge", 2)
        assert not db.drop("edge", 2)
        assert db.get("edge", 2) is None

    def test_contains(self, db):
        db.declare("edge", 2)
        assert ("edge", 2) in db
        assert ("edge", 3) not in db

    def test_len_and_total_rows(self, db):
        db.facts("a", [(1,), (2,)])
        db.facts("b", [(1, 2)])
        assert len(db) == 2
        assert db.total_rows() == 3

    def test_sorted_keys_deterministic(self, db):
        db.declare("zebra", 1)
        db.declare("apple", 1)
        db.declare("apple", 2)
        keys = db.sorted_keys()
        assert keys[0][0] == Atom("apple") and keys[0][1] == 1
        assert keys[-1][0] == Atom("zebra")


class TestVersioning:
    def test_version_bumps_on_any_relation_change(self, db):
        v0 = db.version
        db.fact("edge", 1, 2)
        assert db.version > v0

    def test_version_bumps_on_declare(self, db):
        v0 = db.version
        db.declare("fresh", 1)
        assert db.version > v0

    def test_version_stable_on_read(self, db):
        db.fact("edge", 1, 2)
        v = db.version
        list(db.get("edge", 2).rows())
        assert db.version == v


class TestFacts:
    def test_fact_lifts_python_values(self, db):
        db.fact("edge", 1, "a")
        assert (Num(1), Atom("a")) in db.get("edge", 2)

    def test_facts_returns_new_count(self, db):
        assert db.facts("edge", [(1, 2), (1, 2), (2, 3)]) == 2

    def test_counters_shared_with_relations(self, db):
        db.fact("edge", 1, 2)
        assert db.counters.inserts == 1
