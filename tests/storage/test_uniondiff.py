"""Tests for the uniondiff operator (paper Section 10)."""

from repro.storage.relation import Relation
from repro.storage.uniondiff import uniondiff
from repro.terms.term import Atom, Num


def row(*values):
    return tuple(Num(v) for v in values)


class TestUniondiff:
    def test_returns_only_new(self):
        r = Relation(Atom("r"), 1)
        r.insert(row(1))
        new = uniondiff(r, [row(1), row(2), row(3)])
        assert new == [row(2), row(3)]
        assert len(r) == 3

    def test_duplicates_in_delta_collapse(self):
        r = Relation(Atom("r"), 1)
        new = uniondiff(r, [row(1), row(1), row(2)])
        assert new == [row(1), row(2)]

    def test_empty_delta(self):
        r = Relation(Atom("r"), 1)
        r.insert(row(1))
        assert uniondiff(r, []) == []

    def test_all_old(self):
        r = Relation(Atom("r"), 1)
        r.insert_many([row(1), row(2)])
        assert uniondiff(r, [row(1), row(2)]) == []

    def test_preserves_first_occurrence_order(self):
        r = Relation(Atom("r"), 1)
        new = uniondiff(r, [row(3), row(1), row(3), row(2)])
        assert new == [row(3), row(1), row(2)]

    def test_union_and_diff_laws(self):
        """new == delta - old, and relation == old | delta afterwards."""
        r = Relation(Atom("r"), 1)
        old = [row(i) for i in range(5)]
        r.insert_many(old)
        delta = [row(i) for i in range(3, 8)]
        new = uniondiff(r, delta)
        assert set(new) == set(delta) - set(old)
        assert set(r.rows()) == set(old) | set(delta)
