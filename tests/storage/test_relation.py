"""Unit tests for the Relation storage class."""

import pytest

from repro.storage.relation import Relation
from repro.storage.stats import CostCounters
from repro.terms.term import Atom, Compound, Num, Var


def rel(name="r", arity=2, **kwargs):
    return Relation(Atom(name), arity, **kwargs)


def row(*values):
    return tuple(Num(v) if isinstance(v, (int, float)) else Atom(v) for v in values)


class TestBasics:
    def test_insert_and_contains(self):
        r = rel()
        assert r.insert(row(1, 2))
        assert row(1, 2) in r
        assert len(r) == 1

    def test_duplicate_insert_returns_false(self):
        r = rel()
        r.insert(row(1, 2))
        assert not r.insert(row(1, 2))
        assert len(r) == 1

    def test_duplicates_counted(self):
        r = rel()
        r.insert(row(1, 2))
        r.insert(row(1, 2))
        assert r.counters.duplicate_inserts == 1

    def test_arity_checked(self):
        r = rel(arity=2)
        with pytest.raises(ValueError):
            r.insert(row(1,))

    def test_only_ground_tuples(self):
        r = rel(arity=1)
        with pytest.raises(ValueError):
            r.insert((Var("X"),))

    def test_only_terms(self):
        r = rel(arity=1)
        with pytest.raises(TypeError):
            r.insert((1,))

    def test_name_must_be_ground(self):
        with pytest.raises(ValueError):
            Relation(Var("X"), 1)

    def test_compound_relation_name(self):
        # HiLog set names are legal relation names.
        name = Compound(Atom("students"), (Atom("cs99"),))
        r = Relation(name, 1)
        assert r.name == name

    def test_delete(self):
        r = rel()
        r.insert(row(1, 2))
        assert r.delete(row(1, 2))
        assert not r.delete(row(1, 2))
        assert len(r) == 0

    def test_clear(self):
        r = rel()
        r.insert_many([row(1, 2), row(2, 3)])
        r.clear()
        assert len(r) == 0

    def test_replace(self):
        r = rel()
        r.insert(row(1, 2))
        r.replace([row(5, 6)])
        assert list(r.rows()) == [row(5, 6)]

    def test_insertion_order_preserved(self):
        r = rel()
        r.insert(row(2, 1))
        r.insert(row(1, 2))
        assert list(r.rows()) == [row(2, 1), row(1, 2)]

    def test_sorted_rows_canonical(self):
        r = rel()
        r.insert(row(2, 1))
        r.insert(row(1, 2))
        assert r.sorted_rows() == [row(1, 2), row(2, 1)]

    def test_delete_many_accepts_own_rows_iterator(self):
        r = rel()
        r.insert_many([row(1, 2), row(2, 3)])
        assert r.delete_many(r.rows()) == 2
        assert len(r) == 0

    def test_zero_arity_relation(self):
        r = rel(arity=0)
        assert r.insert(())
        assert () in r
        assert not r.insert(())


class TestVersioning:
    def test_version_bumps_on_mutation(self):
        r = rel()
        v0 = r.version
        r.insert(row(1, 2))
        assert r.version > v0

    def test_version_stable_on_noop(self):
        r = rel()
        r.insert(row(1, 2))
        v = r.version
        r.insert(row(1, 2))  # duplicate: no change
        r.delete(row(9, 9))  # absent: no change
        assert r.version == v

    def test_clear_empty_is_noop(self):
        r = rel()
        v = r.version
        r.clear()
        assert r.version == v

    def test_listener_called(self):
        events = []
        r = Relation(Atom("r"), 1, listener=lambda relation: events.append(relation.name))
        r.insert(row(1))
        assert events == [Atom("r")]


class TestSelect:
    def setup_method(self):
        self.r = rel()
        self.r.insert_many([row(1, 10), row(1, 20), row(2, 10)])

    def test_full_scan(self):
        results = list(self.r.select((Var("X"), Var("Y"))))
        assert len(results) == 3

    def test_bound_first_column(self):
        results = list(self.r.select((Num(1), Var("Y"))))
        assert sorted(b["Y"].value for b in results) == [10, 20]

    def test_bound_both(self):
        assert len(list(self.r.select((Num(1), Num(10))))) == 1
        assert len(list(self.r.select((Num(1), Num(99))))) == 0

    def test_with_base_bindings(self):
        results = list(self.r.select((Var("X"), Var("Y")), {"X": Num(2)}))
        assert len(results) == 1
        assert results[0]["Y"] == Num(10)

    def test_repeated_var(self):
        r = rel()
        r.insert_many([row(1, 1), row(1, 2)])
        results = list(r.select((Var("X"), Var("X"))))
        assert len(results) == 1
        assert results[0]["X"] == Num(1)

    def test_anonymous_vars(self):
        results = list(self.r.select((Var("_"), Var("_"))))
        assert all(b == {} for b in results)
        assert len(results) == 3

    def test_compound_pattern(self):
        r = Relation(Atom("t"), 1)
        inner = Compound(Atom("p"), (Num(3), Num(4)))
        r.insert((inner,))
        results = list(r.select((Compound(Atom("p"), (Var("X"), Var("Y"))),)))
        assert results == [{"X": Num(3), "Y": Num(4)}]

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            list(self.r.select((Var("X"),)))

    def test_count_matching(self):
        assert self.r.count_matching((Num(1), Var("Y"))) == 2


class TestIndexes:
    def test_build_and_probe(self):
        r = rel()
        r.insert_many([row(i % 5, i) for i in range(50)])
        r.build_index((0,))
        before = r.counters.tuples_scanned
        results = list(r.select((Num(3), Var("Y"))))
        assert len(results) == 10
        assert r.counters.tuples_scanned == before  # no scan: index used
        assert r.counters.index_lookups >= 1

    def test_index_maintained_on_insert_delete(self):
        r = rel()
        r.build_index((0,))
        r.insert(row(1, 2))
        assert len(list(r.select((Num(1), Var("Y"))))) == 1
        r.delete(row(1, 2))
        assert len(list(r.select((Num(1), Var("Y"))))) == 0

    def test_fully_bound_select_is_membership_test(self):
        r = rel()
        r.insert_many([row(i, i + 1) for i in range(10)])
        before = r.counters.tuples_scanned
        assert len(list(r.select((Num(3), Num(4))))) == 1
        assert len(list(r.select((Num(3), Num(99))))) == 0
        assert r.counters.tuples_scanned == before  # no scan at all

    def test_subset_index_usable(self):
        r = Relation(Atom("r"), 3)
        r.insert_many([row(i % 4, i, i % 2) for i in range(20)])
        r.build_index((0,))
        # Columns 0 and 2 bound, but the pattern's middle column is free:
        # the (0,) index narrows the probe.
        results = list(r.select((Num(3), Var("Y"), Num(1))))
        assert results
        assert r.counters.index_lookups >= 1

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            rel().build_index((5,))

    def test_same_select_results_with_and_without_index(self):
        plain = rel()
        indexed = rel()
        data = [row(i % 3, i % 4) for i in range(24)]
        plain.insert_many(data)
        indexed.insert_many(data)
        indexed.build_index((0,))
        for pattern in [(Num(1), Var("Y")), (Var("X"), Num(2)), (Num(0), Num(0))]:
            left = sorted(str(b) for b in plain.select(pattern))
            right = sorted(str(b) for b in indexed.select(pattern))
            assert left == right


class TestConcurrentAdaptiveIndexing:
    """Adaptive builds fire from read paths, which the query server runs
    concurrently; index creation/lookup must tolerate that (REVIEW)."""

    def test_parallel_selects_trigger_builds_without_errors(self):
        import threading

        from repro.storage.adaptive import AlwaysIndexPolicy

        rel = Relation(Atom("edge"), 2, index_policy=AlwaysIndexPolicy())
        for i in range(200):
            rel.insert((Num(i), Num(i + 1)))

        errors = []

        def reader(column):
            try:
                for i in range(200):
                    patterns = (
                        (Num(i), Var("Y")) if column == 0 else (Var("X"), Num(i))
                    )
                    list(rel.select(patterns))
            except Exception as exc:  # noqa: BLE001 - the race under test
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i % 2,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Both single-column indexes exist exactly once each.
        assert rel.index_columns == [(0,), (1,)]
        assert rel.counters.index_builds == 2


class TestChangeTracking:
    """Row-level change journal behind the engine's incremental repair."""

    def test_untracked_relation_reports_unknown(self):
        r = rel()
        r.insert(row(1, 2))
        assert r.changes_since(0) is None

    def test_net_inserts_after_version(self):
        r = rel()
        r.insert(row(1, 2))
        r.track_changes()
        v = r.version
        r.insert(row(2, 3))
        r.insert(row(3, 4))
        inserted, deleted = r.changes_since(v)
        assert set(inserted) == {row(2, 3), row(3, 4)}
        assert deleted == []

    def test_insert_delete_pairs_cancel(self):
        r = rel()
        r.track_changes()
        v = r.version
        r.insert(row(1, 2))
        r.delete(row(1, 2))
        assert r.changes_since(v) == ([], [])

    def test_delete_then_reinsert_cancels(self):
        r = rel()
        r.insert(row(1, 2))
        r.track_changes()
        v = r.version
        r.delete(row(1, 2))
        r.insert(row(1, 2))
        assert r.changes_since(v) == ([], [])

    def test_deletes_reported(self):
        r = rel()
        r.insert(row(1, 2))
        r.insert(row(2, 3))
        r.track_changes()
        v = r.version
        r.delete(row(1, 2))
        inserted, deleted = r.changes_since(v)
        assert inserted == []
        assert deleted == [row(1, 2)]

    def test_insert_new_batch_recorded(self):
        r = rel()
        r.insert(row(1, 2))
        r.track_changes()
        v = r.version
        new = r.insert_new([row(1, 2), row(2, 3), row(3, 4)])
        assert set(new) == {row(2, 3), row(3, 4)}
        inserted, deleted = r.changes_since(v)
        assert set(inserted) == {row(2, 3), row(3, 4)}
        assert deleted == []

    def test_clear_recorded_as_deletes(self):
        r = rel()
        r.insert(row(1, 2))
        r.track_changes()
        v = r.version
        r.clear()
        inserted, deleted = r.changes_since(v)
        assert inserted == []
        assert deleted == [row(1, 2)]

    def test_window_before_tracking_is_unknown(self):
        r = rel()
        r.insert(row(1, 2))
        v_before = r.version - 1
        r.track_changes()
        assert r.changes_since(v_before) is None

    def test_overflow_moves_horizon(self):
        from repro.storage.relation import ChangeLog

        log = ChangeLog(horizon=0, max_entries=4)
        for i in range(1, 8):
            log.record(i, "+", (row(i, i),))
        assert log.net_since(0) is None  # window rolled past version 0
        inserted, deleted = log.net_since(log.horizon)
        assert len(inserted) == 4 and deleted == []

    def test_fingerprint_distinguishes_redeclared_relation(self):
        a, b = rel(), rel()
        assert a.fingerprint != b.fingerprint  # fresh uid per instance
        fp = a.fingerprint
        a.insert(row(1, 2))
        assert a.fingerprint != fp
        assert a.fingerprint[0] == fp[0]

    def test_database_version_vector(self):
        from repro.storage.database import Database

        db = Database()
        db.fact("edge", 1, 2)
        vec = db.version_vector()
        (key,) = vec
        assert key == (Atom("edge"), 2)
        db.fact("edge", 2, 3)
        assert db.version_vector()[key][1] > vec[key][1]


class GateAtom(Atom):
    """An atom whose hash can be made to block once: arms a one-shot gate
    so a test can freeze a profile rebuild mid-scan."""

    import threading as _threading

    armed = _threading.Event()
    reached = _threading.Event()
    release = _threading.Event()

    def __hash__(self):
        if GateAtom.armed.is_set():
            GateAtom.armed.clear()
            GateAtom.reached.set()
            GateAtom.release.wait(5)
        return super().__hash__()


class TestColumnProfileDeletePath:
    def test_delete_then_profile_rebuilds_correctly(self):
        r = rel()
        for i in range(5):
            r.insert(row(i, i % 2))
        assert r.column_profile() == (5, 2)
        r.delete(row(4, 0))
        assert r.column_profile() == (4, 2)
        # Insert-only growth after the rebuild takes the cheap replay path.
        r.insert(row(9, 9))
        assert r.column_profile() == (5, 3)

    def test_post_delete_rebuild_does_not_block_other_lock_users(self):
        """The O(rows) profile rebuild after a delete runs outside
        ``_index_lock``: while it is frozen mid-scan, an index build (which
        needs that lock) must still complete."""
        import threading

        r = rel()
        for i in range(10):
            r.insert((GateAtom(f"a{i}"), Num(i)))
        r.column_profile()
        r.delete((GateAtom("a9"), Num(9)))

        GateAtom.reached.clear()
        GateAtom.release.clear()
        distincts = []
        GateAtom.armed.set()
        profiler = threading.Thread(
            target=lambda: distincts.append(r.stats_snapshot().distincts)
        )
        profiler.start()
        try:
            assert GateAtom.reached.wait(5), "rebuild never reached the gate"
            # The profiler thread is parked inside its unlocked rebuild.
            built = threading.Event()

            def index_user():
                r.build_index((0,))
                built.set()

            user = threading.Thread(target=index_user)
            user.start()
            assert built.wait(2), "index build stalled behind the rebuild"
            user.join(5)
        finally:
            GateAtom.release.set()
        profiler.join(5)
        assert distincts == [(9, 9)]
