"""Tests for the directory-of-TSV persistence format."""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.database import Database
from repro.storage.tsvdir import load_tsv_dir, save_tsv_dir
from repro.terms.term import Atom, Compound, Num, mk
from tests.conftest import ground_terms


class TestRoundTrip:
    def test_simple(self, tmp_path, db):
        db.facts("edge", [(1, 2), (2, 3)])
        db.facts("name", [("ann",)])
        count = save_tsv_dir(db, str(tmp_path))
        assert count == 3
        loaded = load_tsv_dir(str(tmp_path))
        assert loaded.get("edge", 2).sorted_rows() == db.get("edge", 2).sorted_rows()
        assert loaded.get("name", 1).sorted_rows() == db.get("name", 1).sorted_rows()

    def test_file_layout(self, tmp_path, db):
        db.facts("edge", [(1, 2)])
        save_tsv_dir(db, str(tmp_path))
        assert (tmp_path / "edge.2.facts").exists()
        assert (tmp_path / "edge.2.facts").read_text() == "1\t2\n"

    def test_same_name_different_arity(self, tmp_path, db):
        db.facts("p", [(1,)])
        db.facts("p", [(1, 2)])
        save_tsv_dir(db, str(tmp_path))
        loaded = load_tsv_dir(str(tmp_path))
        assert len(loaded.get("p", 1)) == 1
        assert len(loaded.get("p", 2)) == 1

    def test_quoted_atoms_with_tabs_and_newlines(self, tmp_path, db):
        db.fact("msg", "with\ttab", "with\nnewline")
        save_tsv_dir(db, str(tmp_path))
        loaded = load_tsv_dir(str(tmp_path))
        assert (Atom("with\ttab"), Atom("with\nnewline")) in loaded.get("msg", 2)

    def test_compound_values(self, tmp_path, db):
        db.fact("geom", ("p", 1, 2), ("p", 3, 4))
        save_tsv_dir(db, str(tmp_path))
        loaded = load_tsv_dir(str(tmp_path))
        assert loaded.get("geom", 2).sorted_rows() == db.get("geom", 2).sorted_rows()

    def test_compound_relation_names(self, tmp_path, db):
        name = mk(("students", "cs99"))
        db.relation(name, 1).insert((Atom("wilson"),))
        save_tsv_dir(db, str(tmp_path))
        loaded = load_tsv_dir(str(tmp_path))
        assert (Atom("wilson"),) in loaded.get(name, 1)

    def test_zero_arity(self, tmp_path, db):
        db.relation("flag", 0).insert(())
        db.declare("unset_flag", 0)
        save_tsv_dir(db, str(tmp_path))
        loaded = load_tsv_dir(str(tmp_path))
        assert () in loaded.get("flag", 0)
        assert len(loaded.get("unset_flag", 0)) == 0

    def test_bad_field_count_reports_position(self, tmp_path):
        (tmp_path / "edge.2.facts").write_text("1\t2\n1\n")
        import pytest

        with pytest.raises(ValueError, match=":2"):
            load_tsv_dir(str(tmp_path))

    def test_non_facts_files_ignored(self, tmp_path, db):
        db.facts("edge", [(1, 2)])
        save_tsv_dir(db, str(tmp_path))
        (tmp_path / "README.txt").write_text("not facts")
        loaded = load_tsv_dir(str(tmp_path))
        assert len(loaded) == 1


@given(st.lists(st.tuples(ground_terms, ground_terms), max_size=10))
@settings(max_examples=20, deadline=None)
def test_property_tsv_roundtrip_arbitrary_terms(rows):
    import tempfile

    db = Database()
    for a, b in rows:
        db.relation("t", 2).insert((a, b))
    with tempfile.TemporaryDirectory() as tmp:
        save_tsv_dir(db, tmp)
        loaded = load_tsv_dir(tmp)
    original = db.get("t", 2)
    restored = loaded.get("t", 2)
    if original is None:
        assert restored is None or len(restored) == 0
    else:
        assert restored.sorted_rows() == original.sorted_rows()
