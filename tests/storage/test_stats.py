"""Unit tests for the cost-counter blocks."""

from repro.storage.stats import CostCounters, RelationStats, ScanCostLedger


class TestCostCounters:
    def test_reset(self):
        counters = CostCounters()
        counters.tuples_scanned = 10
        counters.proc_calls = 2
        counters.reset()
        assert counters.tuples_scanned == 0
        assert counters.proc_calls == 0

    def test_snapshot_covers_all_fields(self):
        counters = CostCounters()
        snapshot = counters.snapshot()
        assert "tuples_scanned" in snapshot
        assert "pipeline_breaks" in snapshot
        assert "dynamic_dispatches" in snapshot
        assert all(v == 0 for v in snapshot.values())

    def test_addition(self):
        a = CostCounters(tuples_scanned=3, inserts=1)
        b = CostCounters(tuples_scanned=4, deletes=2)
        merged = a + b
        assert merged.tuples_scanned == 7
        assert merged.inserts == 1
        assert merged.deletes == 2

    def test_total_tuple_touches(self):
        counters = CostCounters(
            tuples_scanned=10,
            index_probe_tuples=5,
            index_build_tuples=3,
            inserts=2,
            deletes=1,
            materialized_tuples=4,
        )
        assert counters.total_tuple_touches == 25

    def test_touches_exclude_counts_not_costs(self):
        # Pure event counters (breaks, lookups, calls) are not touches.
        counters = CostCounters(pipeline_breaks=7, index_lookups=9, proc_calls=3)
        assert counters.total_tuple_touches == 0


class TestLedgers:
    def test_ledger_accumulates(self):
        ledger = ScanCostLedger()
        ledger.record_scan(10)
        ledger.record_scan(15)
        assert ledger.cumulative_scan_cost == 25
        assert ledger.scans == 2

    def test_relation_stats_per_column_set(self):
        stats = RelationStats()
        a = stats.ledger((0,))
        b = stats.ledger((1,))
        assert a is not b
        assert stats.ledger((0,)) is a
