"""Tests for adaptive run-time index creation (paper Section 10)."""

from repro.storage.adaptive import AdaptiveIndexPolicy, AlwaysIndexPolicy, NeverIndexPolicy
from repro.storage.relation import Relation
from repro.storage.stats import ScanCostLedger
from repro.terms.term import Atom, Num, Var


def build_relation(policy, n=100):
    r = Relation(Atom("r"), 2, index_policy=policy)
    r.insert_many([(Num(i % 10), Num(i)) for i in range(n)])
    return r


class TestPolicies:
    def test_adaptive_triggers_at_crossover(self):
        policy = AdaptiveIndexPolicy()
        ledger = ScanCostLedger()
        assert not policy.should_build(ledger, 100)
        ledger.record_scan(50)
        assert not policy.should_build(ledger, 100)
        ledger.record_scan(50)
        assert policy.should_build(ledger, 100)  # cumulative 100 >= build 100

    def test_adaptive_never_builds_on_empty_relation(self):
        policy = AdaptiveIndexPolicy()
        ledger = ScanCostLedger()
        ledger.record_scan(0)
        assert not policy.should_build(ledger, 0)

    def test_never_policy(self):
        ledger = ScanCostLedger()
        ledger.record_scan(10**9)
        assert not NeverIndexPolicy().should_build(ledger, 10)

    def test_always_policy(self):
        assert AlwaysIndexPolicy().should_build(ScanCostLedger(), 1)
        assert not AlwaysIndexPolicy().should_build(ScanCostLedger(), 0)

    def test_build_factor_validation(self):
        import pytest

        with pytest.raises(ValueError):
            AdaptiveIndexPolicy(build_factor=0)


class TestAdaptiveInRelation:
    def test_index_appears_after_enough_scans(self):
        r = build_relation(AdaptiveIndexPolicy(), n=100)
        assert not r.has_index((0,))
        # First selection scans (cost 100 >= build cost 100) and arms the
        # policy; the second selection builds and uses the index.
        list(r.select((Num(3), Var("Y"))))
        assert not r.has_index((0,))
        list(r.select((Num(3), Var("Y"))))
        assert r.has_index((0,))

    def test_never_policy_never_builds(self):
        r = build_relation(NeverIndexPolicy(), n=50)
        for _ in range(20):
            list(r.select((Num(3), Var("Y"))))
        assert r.index_columns == []

    def test_always_policy_builds_first_selection(self):
        r = build_relation(AlwaysIndexPolicy(), n=50)
        list(r.select((Num(3), Var("Y"))))
        assert r.has_index((0,))

    def test_results_identical_across_policies(self):
        results = {}
        for name, policy in [
            ("never", NeverIndexPolicy()),
            ("always", AlwaysIndexPolicy()),
            ("adaptive", AdaptiveIndexPolicy()),
        ]:
            r = build_relation(policy, n=60)
            out = []
            for k in range(10):
                out.append(sorted(str(b) for b in r.select((Num(k % 10), Var("Y")))))
            results[name] = out
        assert results["never"] == results["always"] == results["adaptive"]

    def test_adaptive_beats_never_for_many_lookups(self):
        adaptive = build_relation(AdaptiveIndexPolicy(), n=200)
        never = build_relation(NeverIndexPolicy(), n=200)
        for _ in range(50):
            list(adaptive.select((Num(3), Var("Y"))))
            list(never.select((Num(3), Var("Y"))))
        assert (
            adaptive.counters.total_tuple_touches < never.counters.total_tuple_touches
        )

    def test_always_wastes_build_for_single_lookup(self):
        adaptive = build_relation(AdaptiveIndexPolicy(), n=200)
        always = build_relation(AlwaysIndexPolicy(), n=200)
        list(adaptive.select((Num(3), Var("Y"))))
        list(always.select((Num(3), Var("Y"))))
        # One lookup: adaptive scanned (200); always built an index (200)
        # and probed -- strictly more total work.
        assert (
            adaptive.counters.total_tuple_touches < always.counters.total_tuple_touches
        )

    def test_distinct_ledgers_per_column_set(self):
        r = build_relation(AdaptiveIndexPolicy(), n=100)
        list(r.select((Num(3), Var("Y"))))
        list(r.select((Var("X"), Num(7))))
        list(r.select((Num(3), Var("Y"))))
        assert r.has_index((0,))
        assert not r.has_index((1,))
