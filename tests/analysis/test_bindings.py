"""Tests for binding-time analysis and safety checks."""

import pytest

from repro.analysis.bindings import (
    BindingError,
    analyze_bindings,
    expr_vars,
    term_vars,
)
from repro.lang.parser import parse_statement


def body_of(text):
    return parse_statement(text).body


class TestVars:
    def test_term_vars_skip_anonymous(self):
        stmt = parse_statement("p(X) := q(X, _, f(Y)).")
        subgoal = stmt.body[0]
        collected = set()
        for arg in subgoal.args:
            collected |= term_vars(arg)
        assert collected == {"X", "Y"}

    def test_expr_vars_through_arithmetic(self):
        stmt = parse_statement("p(D) := q(X, Y) & D = (X - Y) * Z.")
        assert expr_vars(stmt.body[1].right) == {"X", "Y", "Z"}

    def test_expr_vars_through_aggregate(self):
        stmt = parse_statement("p(M) := q(T) & M = max(T).")
        assert expr_vars(stmt.body[1].right) == {"T"}


class TestAnalyze:
    def test_progressive_binding(self):
        body = body_of("h(X, W) := a(X, A, B) & b(A, C) & c(B, C, W).")
        steps = analyze_bindings(body)
        # Supplementary columns from the paper's Section 3.2 example.
        assert steps[0] == (set(), {"X", "A", "B"})
        assert steps[1] == ({"X", "A", "B"}, {"C"})
        assert steps[2] == ({"X", "A", "B", "C"}, {"W"})

    def test_initially_bound(self):
        body = body_of("p(X) := q(X, Y).")
        steps = analyze_bindings(body, initially_bound={"X"})
        assert steps[0] == ({"X"}, {"Y"})

    def test_binding_comparison_binds(self):
        body = body_of("p(D) := q(X) & D = X + 1 & D < 10.")
        steps = analyze_bindings(body)
        assert steps[1][1] == {"D"}

    def test_reversed_binding_comparison(self):
        body = body_of("p(D) := q(X) & X + 1 = D.")
        steps = analyze_bindings(body)
        assert steps[1][1] == {"D"}


class TestSafety:
    def test_unsafe_negation(self):
        with pytest.raises(BindingError, match="negated"):
            analyze_bindings(body_of("p(X) := q(X) & !r(Y)."))

    def test_safe_negation(self):
        analyze_bindings(body_of("p(X) := q(X) & !r(X)."))

    def test_unsafe_comparison(self):
        with pytest.raises(BindingError, match="comparison"):
            analyze_bindings(body_of("p(X) := q(X) & X < Y."))

    def test_unsafe_update(self):
        with pytest.raises(BindingError, match="update"):
            analyze_bindings(body_of("p(X) := q(X) & ++r(Y)."))

    def test_update_with_anonymous_is_safe(self):
        # --p(X, _) is a wildcard delete; anonymous vars are not "unbound".
        analyze_bindings(body_of("p(X) := q(X) & --r(X, _)."))

    def test_predicate_variable_must_be_bound(self):
        with pytest.raises(BindingError, match="predicate variable"):
            analyze_bindings(body_of("p(X) := S(X)."))

    def test_predicate_variable_bound_earlier_ok(self):
        analyze_bindings(body_of("p(X) := sets(S) & S(X)."))

    def test_group_by_over_unbound(self):
        with pytest.raises(BindingError, match="group_by"):
            analyze_bindings(body_of("p(X) := q(X) & group_by(Z) & M = max(X)."))

    def test_group_by_non_variable(self):
        with pytest.raises(BindingError, match="variables"):
            analyze_bindings(body_of("p(X) := q(X) & group_by(f(X)) & M = max(X)."))

    def test_aggregate_argument_must_be_bound(self):
        with pytest.raises(BindingError):
            analyze_bindings(body_of("p(M) := q(X) & M = max(T)."))
