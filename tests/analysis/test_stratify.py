"""Tests for the dependency graph and stratification."""

import pytest

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.stratify import StratificationError, component_is_recursive, stratify
from repro.lang.parser import parse_program


def rules_of(text):
    return list(parse_program(text).items)


def strata_of(text):
    dep = build_dependency_graph(rules_of(text))
    return dep, stratify(dep)


class TestDependencyGraph:
    def test_simple_edges(self):
        dep = build_dependency_graph(rules_of("p(X) :- q(X) & r(X)."))
        assert dep.graph.has_edge(("p", (), 1), ("q", (), 1))
        assert dep.graph.has_edge(("p", (), 1), ("r", (), 1))

    def test_negative_edge_marked(self):
        dep = build_dependency_graph(rules_of("p(X) :- q(X) & !r(X)."))
        assert (("p", (), 1), ("r", (), 1)) in dep.negative_edges()

    def test_aggregate_marks_all_negative(self):
        dep = build_dependency_graph(rules_of("p(M) :- q(T) & M = max(T)."))
        assert (("p", (), 1), ("q", (), 1)) in dep.negative_edges()

    def test_idb_skeletons(self):
        dep = build_dependency_graph(rules_of("p(X) :- q(X).\nq(X) :- e(X)."))
        assert dep.idb_skeletons() == {("p", (), 1), ("q", (), 1)}

    def test_hilog_family_node(self):
        dep = build_dependency_graph(rules_of("students(ID)(N) :- attends(N, ID)."))
        assert ("students", (1,), 1) in dep.idb_skeletons()

    def test_predicate_variable_adds_no_edge(self):
        dep = build_dependency_graph(rules_of("p(X) :- names(S) & S(X)."))
        assert dep.graph.out_degree(("p", (), 1)) == 1  # only names/1


class TestStratify:
    def test_single_stratum_recursion(self):
        dep, strata = strata_of(
            "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y) & edge(Y, Z)."
        )
        assert len(strata) == 1
        assert strata[0].skeletons == frozenset({("path", (), 2)})
        assert component_is_recursive(dep, strata[0].skeletons)

    def test_negation_forces_two_strata(self):
        dep, strata = strata_of(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X) & edge(X, Y).
            unreach(X) :- node(X) & !reach(X).
            """
        )
        assert len(strata) == 2
        assert strata[0].skeletons == frozenset({("reach", (), 1)})
        assert strata[1].skeletons == frozenset({("unreach", (), 1)})

    def test_mutual_recursion_one_component(self):
        dep, strata = strata_of(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X) & succ(X, Y).
            odd(Y) :- even(X) & succ(X, Y).
            """
        )
        assert len(strata) == 1
        assert strata[0].skeletons == frozenset({("even", (), 1), ("odd", (), 1)})

    def test_unstratified_rejected(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) :- q(X) & !p(X).")

    def test_unstratified_through_cycle(self):
        with pytest.raises(StratificationError):
            strata_of(
                """
                a(X) :- e(X) & !b(X).
                b(X) :- a(X).
                """
            )

    def test_aggregate_in_recursion_rejected(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) :- p(T) & X = max(T).")

    def test_negation_on_edb_is_fine(self):
        _, strata = strata_of("p(X) :- q(X) & !edb_rel(X).\nq(X) :- e(X).")
        assert len(strata) == 2

    def test_nonrecursive_component(self):
        dep, strata = strata_of("p(X) :- q(X).\nq(X) :- e(X).")
        for stratum in strata:
            assert not component_is_recursive(dep, stratum.skeletons)

    def test_strata_bottom_up_order(self):
        _, strata = strata_of(
            """
            a(X) :- e(X).
            b(X) :- a(X) & !c(X).
            c(X) :- a(X).
            """
        )
        index_of = {}
        for stratum in strata:
            for skel in stratum.skeletons:
                index_of[skel[0]] = stratum.index
        assert index_of["a"] < index_of["c"] < index_of["b"]
