"""Tests for fixedness analysis and the subgoal-reordering optimizer."""

from repro.analysis.fixedness import is_aggregating_subgoal, is_fixed_subgoal
from repro.analysis.reorder import reorder_body
from repro.lang.ast import CompareSubgoal, GroupBySubgoal, PredSubgoal, UpdateSubgoal
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_subgoal


def body_of(text):
    return parse_statement(text).body


class TestFixedness:
    def test_update_is_fixed(self):
        body = body_of("p(X) := q(X) & ++r(X).")
        assert is_fixed_subgoal(body[1])

    def test_group_by_is_fixed(self):
        body = body_of("p(X) := q(X) & group_by(X) & M = max(X).")
        assert is_fixed_subgoal(body[1])

    def test_aggregate_comparison_is_fixed(self):
        body = body_of("p(M) := q(T) & M = max(T).")
        assert is_fixed_subgoal(body[1])
        assert is_aggregating_subgoal(body[1])

    def test_plain_scan_not_fixed(self):
        body = body_of("p(X) := q(X) & r(X).")
        assert not is_fixed_subgoal(body[0])

    def test_plain_comparison_not_fixed(self):
        body = body_of("p(X) := q(X, Y) & X < Y.")
        assert not is_fixed_subgoal(body[1])
        assert not is_aggregating_subgoal(body[1])

    def test_fixed_call_resolution(self):
        body = body_of("p(X) := q(X) & io_thing(X).")

        def call_fixedness(subgoal):
            if subgoal.pred.name == "io_thing":
                return True
            return None

        assert is_fixed_subgoal(body[1], call_fixedness)
        assert not is_fixed_subgoal(body[0], call_fixedness)


class TestReorder:
    def test_filters_move_before_scans_when_evaluable(self):
        body = body_of("p(X) := q(X) & r(Y) & X < 5.")
        ordered = reorder_body(body)
        texts = [pretty_subgoal(s) for s in ordered]
        # X < 5 can run right after q(X); the optimizer hoists it past r(Y).
        assert texts.index("X < 5") < texts.index("r(Y)")

    def test_negation_scheduled_when_bound(self):
        body = body_of("p(X) := big(Y) & q(X) & !r(X).")
        ordered = reorder_body(body)
        texts = [pretty_subgoal(s) for s in ordered]
        assert texts.index("!r(X)") > texts.index("q(X)")

    def test_fixed_subgoals_keep_position(self):
        body = body_of("p(X) := q(X) & ++log(X) & r(X, Y) & s(Y).")
        ordered = reorder_body(body)
        assert isinstance(ordered[1], UpdateSubgoal)

    def test_nothing_moves_past_aggregator(self):
        body = body_of("p(M, Y) := q(T) & M = max(T) & r(M, Y).")
        ordered = reorder_body(body)
        agg_pos = next(
            i for i, s in enumerate(ordered) if isinstance(s, CompareSubgoal)
        )
        r_pos = next(
            i
            for i, s in enumerate(ordered)
            if isinstance(s, PredSubgoal) and s.pred.name == "r"
        )
        assert r_pos > agg_pos

    def test_procedure_inputs_stay_bound(self):
        body = body_of("p(Y) := source(X) & f(X, Y).")

        def call_bound_arity(subgoal):
            return 1 if subgoal.pred.name == "f" else None

        ordered = reorder_body(body, call_bound_arity=call_bound_arity)
        texts = [pretty_subgoal(s) for s in ordered]
        assert texts.index("source(X)") < texts.index("f(X, Y)")

    def test_deterministic(self):
        body = body_of("p(X) := a(X) & b(X) & c(X) & X != 1.")
        assert reorder_body(body) == reorder_body(body)

    def test_same_multiset_of_subgoals(self):
        body = body_of("p(X) := a(X, Y) & b(Y, Z) & c(Z) & Z < 4 & !d(X).")
        ordered = reorder_body(body)
        assert sorted(map(pretty_subgoal, ordered)) == sorted(map(pretty_subgoal, body))

    def test_bound_scan_preferred(self):
        # After a(X), the scan b(X, Y) (1 bound arg) beats c(Z, W) (0 bound).
        body = body_of("p(X) := a(X) & c(Z, W) & b(X, Y) & d(Y, Z).")
        ordered = reorder_body(body)
        texts = [pretty_subgoal(s) for s in ordered]
        assert texts.index("b(X, Y)") < texts.index("c(Z, W)")


class TestReorderProperties:
    """Hypothesis: reordering never changes results, only order/cost."""

    def test_property_reorder_preserves_join_results(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.query import rows_to_python
        from tests.conftest import make_system

        @given(
            st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
            st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15),
            st.integers(0, 4),
        )
        @settings(max_examples=25, deadline=None)
        def check(a_rows, b_rows, limit):
            source = f"out(X, Z) := a(X, Y) & b(Y, Z) & X != Z & Z <= {limit} & !skip(X)."
            results = []
            for optimize in (True, False):
                system = make_system(source, optimize=optimize)
                system.facts("a", a_rows)
                system.facts("b", b_rows)
                system.facts("skip", [(0,)])
                system.run_script()
                results.append(rows_to_python(system.relation_rows("out", 2)))
            assert results[0] == results[1]

        check()
