"""Tests for predicate classes and scope resolution."""

import pytest

from repro.analysis.scope import PredClass, PredInfo, Scope, ScopeError, pred_skeleton
from repro.lang.parser import parse_term
from repro.terms.term import Atom, Compound, Var


class TestSkeleton:
    def test_plain_predicate(self):
        assert pred_skeleton(Atom("p"), 2) == ("p", (), 2)

    def test_hilog_family(self):
        assert pred_skeleton(parse_term("students(cs99)"), 1) == ("students", (1,), 1)

    def test_nested_family(self):
        term = parse_term("a(b)(c, d)")
        assert pred_skeleton(term, 1) == ("a", (1, 2), 1)

    def test_variable_predicate(self):
        assert pred_skeleton(Var("S"), 1) == (None, (), 1)

    def test_family_with_variable_params_shares_skeleton(self):
        ground = pred_skeleton(parse_term("students(cs99)"), 1)
        templ = pred_skeleton(Compound(Atom("students"), (Var("ID"),)), 1)
        assert ground == templ


def info(name, klass=PredClass.EDB, arity=1, **kwargs):
    return PredInfo(skeleton=(name, (), arity), klass=klass, arity=arity,
                    display=f"{name}/{arity}", **kwargs)


class TestScope:
    def test_declare_and_resolve(self):
        scope = Scope()
        scope.declare(info("edge", arity=2))
        resolved = scope.resolve(Atom("edge"), 2)
        assert resolved.klass is PredClass.EDB

    def test_child_shadows_parent(self):
        # "Declarations of local relations 'hide' the declarations of other
        # predicates with which they unify" (Section 4).
        parent = Scope()
        parent.declare(info("r", PredClass.EDB))
        child = parent.child()
        child.declare(info("r", PredClass.LOCAL))
        assert child.resolve(Atom("r"), 1).klass is PredClass.LOCAL
        assert parent.resolve(Atom("r"), 1).klass is PredClass.EDB

    def test_lenient_returns_none_for_undeclared(self):
        assert Scope(strict=False).resolve(Atom("nope"), 1) is None

    def test_strict_raises_for_undeclared(self):
        with pytest.raises(ScopeError):
            Scope(strict=True).resolve(Atom("nope"), 1)

    def test_conflicting_declaration_rejected(self):
        scope = Scope()
        scope.declare(info("p", PredClass.EDB))
        with pytest.raises(ScopeError):
            scope.declare(info("p", PredClass.NAIL))

    def test_override_allowed_when_requested(self):
        scope = Scope()
        scope.declare(info("p", PredClass.EDB))
        scope.declare(info("p", PredClass.NAIL), allow_override=True)
        assert scope.resolve(Atom("p"), 1).klass is PredClass.NAIL

    def test_candidates_by_arity(self):
        scope = Scope()
        scope.declare(info("a", arity=1))
        scope.declare(info("b", arity=1))
        scope.declare(info("c", arity=2))
        names = [c.skeleton[0] for c in scope.candidates(1)]
        assert names == ["a", "b"]

    def test_candidates_see_parent_without_duplicates(self):
        parent = Scope()
        parent.declare(info("a", PredClass.EDB))
        child = parent.child()
        child.declare(info("a", PredClass.LOCAL))
        candidates = child.candidates(1)
        assert len(candidates) == 1
        assert candidates[0].klass is PredClass.LOCAL

    def test_variable_pred_resolves_to_none(self):
        scope = Scope()
        assert scope.resolve(Var("S"), 1) is None

    def test_is_callable_and_is_relation(self):
        proc = info("f", PredClass.PROC)
        edb = info("r", PredClass.EDB)
        assert proc.is_callable and not proc.is_relation
        assert edb.is_relation and not edb.is_callable
