"""Transaction semantics: begin/commit/rollback with undo logging."""

import pytest

from repro.storage.database import Database
from repro.terms.term import Atom, Num
from repro.txn.manager import TransactionError, TransactionManager


@pytest.fixture
def txn_db():
    db = Database()
    manager = TransactionManager(db)
    db.attach_journal(manager)
    return db, manager


class TestBoundaries:
    def test_nested_begin_is_an_error(self, txn_db):
        _, manager = txn_db
        manager.begin()
        with pytest.raises(TransactionError):
            manager.begin()

    def test_commit_without_begin_is_an_error(self, txn_db):
        _, manager = txn_db
        with pytest.raises(TransactionError):
            manager.commit()

    def test_rollback_without_begin_is_an_error(self, txn_db):
        _, manager = txn_db
        with pytest.raises(TransactionError):
            manager.rollback()

    def test_commit_keeps_mutations(self, txn_db):
        db, manager = txn_db
        manager.begin()
        db.fact("edge", 1, 2)
        manager.commit()
        assert (Num(1), Num(2)) in db.get("edge", 2)
        assert manager.commits == 1


class TestRollback:
    def test_insert_is_undone(self, txn_db):
        db, manager = txn_db
        db.fact("edge", 1, 2)
        manager.begin()
        db.fact("edge", 2, 3)
        manager.rollback()
        assert len(db.get("edge", 2)) == 1
        assert (Num(1), Num(2)) in db.get("edge", 2)

    def test_delete_is_undone(self, txn_db):
        db, manager = txn_db
        db.fact("edge", 1, 2)
        manager.begin()
        db.get("edge", 2).delete((Num(1), Num(2)))
        manager.rollback()
        assert (Num(1), Num(2)) in db.get("edge", 2)

    def test_transaction_reads_its_own_writes(self, txn_db):
        db, manager = txn_db
        manager.begin()
        db.fact("edge", 1, 2)
        assert (Num(1), Num(2)) in db.get("edge", 2)
        manager.rollback()

    def test_declare_is_undone(self, txn_db):
        db, manager = txn_db
        manager.begin()
        db.declare("scratch", 2)
        manager.rollback()
        assert not db.exists("scratch", 2)

    def test_drop_restores_relation_and_rows(self, txn_db):
        db, manager = txn_db
        db.facts("edge", [(1, 2), (2, 3)])
        manager.begin()
        db.drop("edge", 2)
        assert not db.exists("edge", 2)
        manager.rollback()
        assert db.exists("edge", 2)
        assert len(db.get("edge", 2)) == 2

    def test_clear_is_undone(self, txn_db):
        db, manager = txn_db
        db.facts("edge", [(1, 2), (2, 3)])
        manager.begin()
        db.get("edge", 2).clear()
        assert len(db.get("edge", 2)) == 0
        manager.rollback()
        assert len(db.get("edge", 2)) == 2

    def test_replace_is_undone(self, txn_db):
        db, manager = txn_db
        db.facts("name", [("ann",), ("bob",)])
        manager.begin()
        db.get("name", 1).replace([(Atom("eve"),)])
        manager.rollback()
        assert db.get("name", 1).sorted_rows() == [(Atom("ann"),), (Atom("bob"),)]

    def test_insert_then_delete_round_trips(self, txn_db):
        db, manager = txn_db
        manager.begin()
        db.fact("edge", 7, 7)
        db.get("edge", 2).delete((Num(7), Num(7)))
        manager.rollback()
        # The in-transaction declare is rolled back too: the relation is
        # gone entirely (or at minimum holds no rows).
        relation = db.get("edge", 2)
        assert relation is None or (Num(7), Num(7)) not in relation

    def test_duplicate_insert_not_undone_to_absence(self, txn_db):
        db, manager = txn_db
        db.fact("edge", 1, 2)
        manager.begin()
        db.fact("edge", 1, 2)  # duplicate: no journal record
        manager.rollback()
        assert (Num(1), Num(2)) in db.get("edge", 2)


class TestContextManager:
    def test_commits_on_success(self, txn_db):
        db, manager = txn_db
        with manager.transaction():
            db.fact("edge", 1, 2)
        assert len(db.get("edge", 2)) == 1

    def test_rolls_back_on_exception(self, txn_db):
        db, manager = txn_db
        db.fact("edge", 1, 2)
        with pytest.raises(RuntimeError):
            with manager.transaction():
                db.fact("edge", 2, 3)
                raise RuntimeError("boom")
        assert len(db.get("edge", 2)) == 1
        assert manager.rollbacks == 1


class TestSystemFacade:
    def test_begin_commit_rollback_on_system(self):
        from repro.core.system import GlueNailSystem

        system = GlueNailSystem()
        system.fact("edge", 1, 2)
        system.begin()
        system.fact("edge", 2, 3)
        system.rollback()
        assert len(system.db.get("edge", 2)) == 1
        with system.transaction():
            system.fact("edge", 5, 6)
        assert len(system.db.get("edge", 2)) == 2

    def test_repl_transaction_commands(self):
        import io

        from repro.core.repl import Repl

        out = io.StringIO()
        repl = Repl(out=out)
        for line in (
            "edge(1, 2).",
            ".begin",
            "edge(2, 3).",
            ".rollback",
            ".dump edge/2",
            ".commit",
        ):
            repl.feed(line + "\n")
        text = out.getvalue()
        assert "transaction open" in text
        assert "transaction rolled back" in text
        assert "(2, 3)" not in text
        assert "error:" in text  # .commit with no open transaction


class TestThreadOwnership:
    """A transaction belongs to the thread that began it (REVIEW: foreign
    threads must autocommit, not join the open undo/redo logs)."""

    def test_foreign_thread_mutation_survives_rollback(self, txn_db):
        import threading

        db, manager = txn_db
        manager.begin()
        db.fact("mine", 1)

        worker = threading.Thread(target=lambda: db.fact("theirs", 7))
        worker.start()
        worker.join()

        manager.rollback()
        # The owner's insert (and its declare) rolled back; the foreign
        # thread's did not get swept into the undo log.
        assert db.get("mine", 1) is None
        assert (Num(7),) in db.get("theirs", 1)

    def test_foreign_thread_op_is_its_own_wal_batch(self, tmp_path):
        import threading

        from repro.txn.wal import WriteAheadLog, replay_wal

        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        db = Database()
        manager = TransactionManager(db, wal)
        db.attach_journal(manager)

        manager.begin()
        db.fact("mine", 1)
        worker = threading.Thread(target=lambda: db.fact("theirs", 7))
        worker.start()
        worker.join()
        manager.rollback()
        wal.close()

        replayed = Database()
        txns, _ = replay_wal(wal.path, replayed)
        # Exactly the foreign autocommits reached the log: the declare of
        # theirs/1 and the insert; nothing from the rolled-back owner.
        assert txns == 2
        assert (Num(7),) in replayed.get("theirs", 1)
        assert replayed.get("mine", 1) is None
