"""WAL format and replay: committed batches in, exactly those back out."""

import os

import pytest

from repro.storage.database import Database
from repro.terms.term import Atom, Num
from repro.txn.wal import WAL_HEADER, WriteAheadLog, format_op, replay_wal


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestFormat:
    def test_op_lines_are_fact_syntax(self):
        assert format_op(("insert", Atom("edge"), (Num(1), Num(2)))) == "+ edge(1, 2)."
        assert format_op(("delete", Atom("edge"), (Num(1), Num(2)))) == "- edge(1, 2)."
        assert format_op(("declare", Atom("marker"), 0)) == "% rel marker / 0"
        assert format_op(("drop", Atom("scratch"), 2)) == "% drop scratch / 2"

    def test_log_is_human_readable(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        with open(wal_path) as handle:
            text = handle.read()
        assert text.splitlines()[0] == WAL_HEADER
        assert "+ edge(1, 2)." in text
        assert "% commit 1" in text


class TestReplay:
    def test_round_trip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([
            ("declare", Atom("empty_rel"), 3),
            ("insert", Atom("edge"), (Num(1), Num(2))),
            ("insert", Atom("edge"), (Num(2), Num(3))),
        ])
        wal.append_commit([("delete", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        db = Database()
        txns, ops = replay_wal(wal_path, db)
        assert (txns, ops) == (2, 4)
        assert db.get("edge", 2).sorted_rows() == [(Num(2), Num(3))]
        assert db.exists("empty_rel", 3)

    def test_drop_replays(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("scratch"), (Num(1),))])
        wal.append_commit([("drop", Atom("scratch"), 1)])
        wal.close()
        db = Database()
        replay_wal(wal_path, db)
        assert not db.exists("scratch", 1)

    def test_batch_without_commit_marker_is_skipped(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        # Simulate a crash mid-commit: ops appended, no commit marker.
        with open(wal_path, "a") as handle:
            handle.write("% txn 2\n+ edge(8, 8).\n+ edge(9, 9).\n")
        db = Database()
        txns, _ = replay_wal(wal_path, db)
        assert txns == 1
        assert len(db.get("edge", 2)) == 1

    def test_torn_final_line_is_skipped(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        with open(wal_path, "a") as handle:
            handle.write("% txn 2\n+ edge(9")  # torn mid-write, no newline
        db = Database()
        txns, _ = replay_wal(wal_path, db)
        assert txns == 1
        assert len(db.get("edge", 2)) == 1

    def test_replay_is_idempotent(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        db = Database()
        replay_wal(wal_path, db)
        replay_wal(wal_path, db)  # e.g. crash between checkpoint and truncate
        assert len(db.get("edge", 2)) == 1

    def test_replay_does_not_relog_into_attached_journal(self, wal_path):
        from repro.txn.manager import TransactionManager

        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.close()
        db = Database()
        sink = WriteAheadLog(str(wal_path) + ".second")
        manager = TransactionManager(db, sink)
        db.attach_journal(manager)
        replay_wal(wal_path, db)
        assert sink.commits == 0
        assert db.journal is manager  # restored after replay
        sink.close()

    def test_reset_truncates(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.reset()
        db = Database()
        assert replay_wal(wal_path, db) == (0, 0)
        # The log is still appendable after a reset.
        wal.append_commit([("insert", Atom("edge"), (Num(5), Num(6)))])
        wal.close()
        db2 = Database()
        replay_wal(wal_path, db2)
        assert db2.get("edge", 2).sorted_rows() == [(Num(5), Num(6))]

    def test_quoted_atoms_round_trip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        row = (Atom("hello world"), Atom("it's"))
        wal.append_commit([("insert", Atom("msg"), row)])
        wal.close()
        db = Database()
        replay_wal(wal_path, db)
        assert row in db.get("msg", 2)

    def test_arity_zero_round_trip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("flag"), ())])
        wal.close()
        db = Database()
        replay_wal(wal_path, db)
        assert () in db.get("flag", 0)

    def test_empty_batch_writes_nothing(self, wal_path):
        wal = WriteAheadLog(wal_path)
        assert wal.append_commit([]) is None
        wal.close()
        assert os.path.getsize(wal_path) == len(WAL_HEADER) + 1


class TestTidContinuity:
    def test_tids_continue_across_reopen(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.append_commit([("insert", Atom("edge"), (Num(2), Num(3)))])
        wal.close()
        reopened = WriteAheadLog(wal_path)
        tid = reopened.append_commit([("insert", Atom("edge"), (Num(3), Num(4)))])
        reopened.close()
        assert tid == 3
        with open(wal_path) as handle:
            text = handle.read()
        assert text.count("% txn 1") == 1  # never reused

    def test_tids_continue_past_reset(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append_commit([("insert", Atom("edge"), (Num(1), Num(2)))])
        wal.reset()
        tid = wal.append_commit([("insert", Atom("edge"), (Num(2), Num(3)))])
        wal.close()
        assert tid == 2


class TestGroupCommit:
    def insert(self, i):
        return [("insert", Atom("edge"), (Num(i), Num(i + 1)))]

    def test_serial_commits_fsync_once_each(self, wal_path):
        wal = WriteAheadLog(wal_path)
        header_syncs = wal.fsyncs  # the fresh-log header flush
        for i in range(5):
            wal.append_commit(self.insert(i))
        assert wal.fsyncs == header_syncs + 5
        wal.close()

    def test_sync_false_never_fsyncs(self, wal_path):
        wal = WriteAheadLog(wal_path, sync=False)
        for i in range(5):
            wal.append_commit(self.insert(i))
        assert wal.fsyncs == 0
        wal.close()

    def test_concurrent_commits_share_fsyncs_and_all_survive(self, wal_path):
        """Group commit: concurrent committers ride one leader's fsync.
        Every batch must still replay -- durability is amortized, not
        dropped."""
        import threading

        wal = WriteAheadLog(wal_path)
        header_syncs = wal.fsyncs
        threads_n, per_thread = 8, 10
        start = threading.Barrier(threads_n)

        def worker(base):
            start.wait()
            for i in range(per_thread):
                wal.append_commit(self.insert(base * 1000 + i))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        assert wal.commits == total
        # Every committer returned only after its batch was covered by an
        # fsync; the leader protocol never needs more syncs than commits.
        assert 1 <= wal.fsyncs - header_syncs <= total
        wal.close()
        db = Database()
        txns, ops = replay_wal(wal_path, db)
        assert (txns, ops) == (total, total)
        assert len(db.get("edge", 2)) == total
