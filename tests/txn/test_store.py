"""DurableStore: open-with-recovery, checkpointing, and crash survival."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.terms.term import Num
from repro.txn.store import DurableStore

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def reopen(directory):
    return DurableStore(str(directory))


class TestAutocommit:
    def test_mutations_survive_reopen(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.db.facts("edge", [(1, 2), (2, 3)])
        store.close()
        fresh = reopen(tmp_path)
        assert len(fresh.db.get("edge", 2)) == 2
        assert fresh.recovered_txns > 0
        fresh.close()

    def test_deletes_survive_reopen(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.db.facts("edge", [(1, 2), (2, 3)])
        store.db.get("edge", 2).delete((Num(1), Num(2)))
        store.close()
        fresh = reopen(tmp_path)
        assert fresh.db.get("edge", 2).sorted_rows() == [(Num(2), Num(3))]
        fresh.close()


class TestTransactions:
    def test_committed_survives_uncommitted_does_not(self, tmp_path):
        store = DurableStore(str(tmp_path))
        with store.transaction():
            store.db.fact("edge", 1, 2)
        store.begin()
        store.db.fact("edge", 9, 9)
        # Crash: never committed, never closed cleanly.
        store.wal.close()
        fresh = reopen(tmp_path)
        assert fresh.db.get("edge", 2).sorted_rows() == [(Num(1), Num(2))]
        fresh.close()

    def test_rollback_leaves_no_trace_in_wal(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.begin()
        store.db.fact("edge", 9, 9)
        store.rollback()
        store.close()
        with open(os.path.join(str(tmp_path), "wal.log")) as handle:
            assert "9" not in handle.read()
        fresh = reopen(tmp_path)
        assert fresh.db.get("edge", 2) is None or len(fresh.db.get("edge", 2)) == 0
        fresh.close()


class TestCheckpoint:
    def test_checkpoint_compacts_wal(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.db.facts("edge", [(1, 2), (2, 3)])
        count = store.checkpoint()
        assert count == 2
        with open(store.wal_path) as handle:
            assert handle.read().strip() == "% Glue-Nail WAL (format 1)"
        store.db.fact("edge", 3, 4)  # post-checkpoint commits land in the WAL
        store.close()
        fresh = reopen(tmp_path)
        assert len(fresh.db.get("edge", 2)) == 3
        fresh.close()

    def test_checkpoint_inside_transaction_is_an_error(self, tmp_path):
        from repro.errors import GlueRuntimeError

        store = DurableStore(str(tmp_path))
        store.begin()
        with pytest.raises(GlueRuntimeError):
            store.checkpoint()
        store.rollback()
        store.close()

    def test_clean_close_with_checkpoint(self, tmp_path):
        store = DurableStore(str(tmp_path))
        store.db.fact("edge", 1, 2)
        store.close(checkpoint=True)
        fresh = reopen(tmp_path)
        assert fresh.recovered_txns == 0  # everything in the checkpoint
        assert len(fresh.db.get("edge", 2)) == 1
        fresh.close()


class TestCrashRecovery:
    def test_killed_process_loses_only_uncommitted_work(self, tmp_path):
        """A real kill (os._exit) between WAL append and checkpoint: the
        reopened store holds all committed facts and none of the
        uncommitted ones."""
        script = textwrap.dedent(
            """
            import os, sys
            from repro.txn.store import DurableStore

            store = DurableStore(sys.argv[1])
            store.db.fact("edge", 1, 2)                  # autocommitted
            with store.transaction():
                store.db.fact("edge", 2, 3)              # committed batch
                store.db.fact("edge", 3, 4)
            store.begin()
            store.db.fact("edge", 66, 66)                # never committed
            os._exit(1)                                  # die before commit/checkpoint
            """
        )
        env = dict(os.environ, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1, proc.stderr
        store = reopen(tmp_path)
        rows = store.db.get("edge", 2).sorted_rows()
        assert rows == [(Num(1), Num(2)), (Num(2), Num(3)), (Num(3), Num(4))]
        store.close()

    def test_recovery_tolerates_crash_between_checkpoint_and_truncate(self, tmp_path):
        """save_database succeeded but the WAL truncate never ran: replaying
        the stale WAL over the new checkpoint is idempotent."""
        from repro.storage.persist import save_database

        store = DurableStore(str(tmp_path))
        store.db.facts("edge", [(1, 2), (2, 3)])
        save_database(store.db, store.checkpoint_path)  # checkpoint w/o truncate
        store.wal.close()
        fresh = reopen(tmp_path)
        assert len(fresh.db.get("edge", 2)) == 2
        fresh.close()

    def test_system_open_recovers(self, tmp_path):
        from repro.core.system import GlueNailSystem

        system = GlueNailSystem.open(str(tmp_path))
        system.fact("edge", 1, 2)
        with system.transaction():
            system.fact("edge", 2, 3)
        system.close()
        fresh = GlueNailSystem.open(str(tmp_path))
        fresh.load("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z).")
        assert len(fresh.query("path(1, X)?")) == 2
        assert fresh.checkpoint() == 2
        fresh.close()
