"""Tests for the module system (paper Section 6): imports, exports,
visibility, and mixed Glue + NAIL! modules."""

import pytest

from repro.core.query import rows_to_python
from repro.errors import CompileError
from tests.conftest import make_system


class TestImportsExports:
    TWO_MODULES = """
    module graphlib;
    export reachable(X:Y);
    edb link(A, B);
    proc reachable(X:Y)
    rels seen(A, B);
      seen(X, Y) := in(X) & link(X, Y).
      repeat
        seen(X, Y) += seen(X, Z) & link(Z, Y).
      until unchanged(seen(_, _));
      return(X:Y) := seen(X, Y).
    end
    end

    module app;
    export report(:X, Y);
    from graphlib import reachable(X:Y);
    edb origin(X);
    proc report(:X, Y)
      return(:X, Y) := origin(X) & reachable(X, Y).
    end
    end
    """

    def test_cross_module_procedure_call(self):
        system = make_system(self.TWO_MODULES)
        system.facts("link", [(1, 2), (2, 3)])
        system.facts("origin", [(1,)])
        rows = rows_to_python(system.call("report"))
        assert sorted(rows) == [(1, 2), (1, 3)]

    def test_exported_procs_callable_by_name(self):
        system = make_system(self.TWO_MODULES)
        system.facts("link", [(1, 2)])
        assert rows_to_python(system.call("reachable", [(1,)])) == [(1, 2)]

    def test_exporting_undeclared_predicate_rejected(self):
        with pytest.raises(CompileError, match="exports undeclared"):
            make_system("module m;\nexport nothing(:X);\nend").compile()

    def test_import_of_nail_predicate(self):
        source = """
        module rules;
        export anc(X, Y);
        anc(X, Y) :- par(X, Y).
        anc(X, Z) :- anc(X, Y) & par(Y, Z).
        end

        module app;
        export roots(:X);
        from rules import anc(X, Y);
        proc roots(:X)
          return(:X) := anc(X, _) & !anc(_, X).
        end
        end
        """
        system = make_system(source)
        system.facts("par", [("a", "b"), ("b", "c")])
        assert rows_to_python(system.call("roots")) == [("a",)]

    def test_strict_import_of_unknown_module_rejected(self):
        source = """
        module app;
        from nowhere import thing(:X);
        end
        """
        with pytest.raises(CompileError, match="cannot resolve import"):
            make_system(source, strict=True).compile()

    def test_lenient_import_assumed_foreign(self):
        source = """
        module app;
        export go(:X);
        from nowhere import thing(:X);
        proc go(:X)
          return(:X) := thing(X).
        end
        end
        """
        system = make_system(source)
        system.compile()  # compiles; fails only if actually called


class TestVisibility:
    def test_local_relation_shadows_edb(self):
        # "Declarations of local relations 'hide' the declarations of
        # other predicates with which they unify."
        source = """
        module m;
        export probe(:X);
        edb data(V);
        proc probe(:X)
        rels data(V);
          data(1) := true.
          return(:X) := data(X).
        end
        end
        """
        system = make_system(source)
        system.facts("data", [(99,)])
        rows = rows_to_python(system.call("probe"))
        assert rows == [(1,)]  # the local, not the EDB tuple
        # And the EDB relation is untouched.
        assert rows_to_python(system.relation_rows("data", 1)) == [(99,)]

    def test_mixed_glue_and_nail_in_one_module(self):
        # "a module can contain both Glue procedures and NAIL! rules".
        source = """
        module mixed;
        export best(:X);
        edb score(P, S);
        good(P) :- score(P, S) & S > 10.
        proc best(:X)
          return(:X) := good(X).
        end
        end
        """
        system = make_system(source)
        system.facts("score", [("a", 5), ("b", 15)])
        assert rows_to_python(system.call("best")) == [("b",)]

    def test_fixedness_propagates_across_modules(self):
        # A proc calling an imported fixed proc is itself fixed.
        source = """
        module io_mod;
        export log_it(X:);
        proc log_it(X:)
          return(X:) := in(X) & ++logged(X).
        end
        end

        module app;
        export work(:X);
        from io_mod import log_it(X:);
        proc work(:X)
          return(:X) := item(X) & log_it(X).
        end
        end
        """
        system = make_system(source)
        compiled = system.compile()
        assert compiled.find_proc("log_it", 1).fixed
        assert compiled.find_proc("work", 1).fixed

    def test_modules_are_compile_time_only(self):
        # "Modules are purely a compile time concept": the EDB namespace
        # is global, so two modules share relations by name.
        source = """
        module writer;
        export put(:)    ;
        edb shared(V);
        proc put(:)
          shared(1) += true.
          return(:) := true.
        end
        end

        module reader;
        export get(:X);
        edb shared(V);
        proc get(:X)
          return(:X) := shared(X).
        end
        end
        """
        system = make_system(source)
        system.call("put")
        assert rows_to_python(system.call("get")) == [(1,)]
