"""Tests for the gluenail command-line interface."""

import pytest

from repro.core.cli import main

PROGRAM = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
edge(1, 2).
edge(2, 3).

proc double(X:Y)
  return(X:Y) := in(X) & Y = X * 2.
end

seed(X) := start(X).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.glue"
    path.write_text(PROGRAM)
    return str(path)


class TestCheck:
    def test_check_ok(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        out = capsys.readouterr().out
        assert "procedures" in out and "rules" in out

    def test_check_reports_compile_error(self, tmp_path, capsys):
        path = tmp_path / "bad.glue"
        path.write_text("out(X, Y) := a(X).")
        assert main(["check", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_query(self, program_file, capsys):
        assert main(["query", program_file, "path(1, Y)?"]) == 0
        out = capsys.readouterr().out
        assert "(1, 2)" in out and "(1, 3)" in out

    def test_query_magic(self, program_file, capsys):
        assert main(["query", program_file, "path(2, Y)?", "--magic"]) == 0
        out = capsys.readouterr().out
        assert "(2, 3)" in out and "(1, 2)" not in out

    def test_query_with_stats(self, program_file, capsys):
        assert main(["query", program_file, "path(1, Y)?", "--stats"]) == 0
        assert "tuples_scanned" in capsys.readouterr().out


class TestRun:
    def test_run_call(self, program_file, capsys):
        assert main(["run", program_file, "--call", "double", "--input", "21"]) == 0
        assert "(21, 42)" in capsys.readouterr().out

    def test_run_script_and_save(self, program_file, tmp_path, capsys):
        dump = str(tmp_path / "out.gnd")
        assert main(["run", program_file, "--save", dump]) == 0
        content = open(dump).read()
        assert "seed" in content or "% rel" in content

    def test_run_with_edb(self, program_file, tmp_path, capsys):
        dump = str(tmp_path / "in.gnd")
        with open(dump, "w") as handle:
            handle.write("% Glue-Nail EDB dump (format 1)\nedge(3, 4).\n")
        assert main(["query", program_file, "path(1, Y)?", "--edb", dump]) == 0
        assert "(1, 4)" in capsys.readouterr().out

    def test_strategy_flag(self, program_file, capsys):
        assert main(
            ["run", program_file, "--call", "double", "--input", "2",
             "--strategy", "materialized"]
        ) == 0
        assert "(2, 4)" in capsys.readouterr().out


class TestNail2Glue:
    def test_prints_generated_module(self, program_file, capsys):
        assert main(["nail2glue", program_file]) == 0
        out = capsys.readouterr().out
        assert "module nail_generated;" in out
        assert "repeat" in out


class TestFmtAndExplain:
    def test_fmt_is_canonical_fixpoint(self, program_file, tmp_path, capsys):
        assert main(["fmt", program_file]) == 0
        once = capsys.readouterr().out
        formatted = tmp_path / "formatted.glue"
        formatted.write_text(once)
        assert main(["fmt", str(formatted)]) == 0
        assert capsys.readouterr().out == once

    def test_explain_shows_plans(self, program_file, capsys):
        assert main(["explain", program_file]) == 0
        out = capsys.readouterr().out
        assert "proc double/2" in out
        assert "NAIL! rules" in out


class TestFileErrors:
    def test_missing_program_file(self, capsys):
        assert main(["check", "/no/such/prog.glue"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_edb_file(self, program_file, capsys):
        assert main(["query", program_file, "path(1, Y)?", "--edb", "/nope.gnd"]) == 1
        assert "error" in capsys.readouterr().err


class TestFactsDir:
    def test_save_and_load_facts_dir(self, program_file, tmp_path, capsys):
        facts_dir = str(tmp_path / "facts")
        assert main(["run", program_file, "--save-facts", facts_dir]) == 0
        capsys.readouterr()
        assert main(
            ["query", program_file, "path(1, Y)?", "--facts-dir", facts_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "(1, 2)" in out
