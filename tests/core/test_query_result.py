"""QueryResult: list compatibility, resolution chain, unified rows()."""

import pytest

from repro.core.query import rows_to_python
from repro.core.result import QueryResult
from repro.core.system import GlueNailSystem
from repro.errors import GlueNailError, GlueRuntimeError
from repro.terms.term import Num, mk


def _system():
    system = GlueNailSystem()
    system.load(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y) & edge(Y, Z).

        module m;
        export neighbors(X: Y);
        proc neighbors(X: Y)
          return(X: Y) := in(X) & edge(X, Y).
        end
        end
        """
    )
    system.facts("edge", [(1, 2), (2, 3), (3, 4)])
    return system


class TestResolutionChain:
    def test_nail_predicate_wins(self):
        result = _system().query("path(1, Y)?")
        assert result.resolution == "nail"
        assert result.to_python() == [(1, 2), (1, 3), (1, 4)]

    def test_edb_relation_second(self):
        result = _system().query("edge(1, Y)?")
        assert result.resolution == "edb"
        assert result.to_python() == [(1, 2)]

    def test_exported_procedure_fallback(self):
        result = _system().query("neighbors(2, Y)?")
        assert result.resolution == "procedure"
        assert result.to_python() == [(2, 3)]

    def test_procedure_fallback_needs_bound_prefix(self):
        with pytest.raises(GlueNailError, match="bound"):
            _system().query("neighbors(X, Y)?")

    def test_unknown_predicate_is_empty_not_error(self):
        result = _system().query("nothing(1, X)?")
        assert result == []
        assert result.resolution == "none"

    def test_magic_resolution(self):
        result = _system().query_magic("path(1, Y)?")
        assert result.resolution == "magic"
        assert sorted(result.to_python()) == [(1, 2), (1, 3), (1, 4)]


class TestListCompatibility:
    """Every entry point's result behaves exactly like the old bare list."""

    def test_query_result_is_a_list(self):
        result = _system().query("path(1, Y)?")
        assert isinstance(result, list)
        assert isinstance(result, QueryResult)
        assert len(result) == 3
        assert result[0] == (Num(1), Num(2))
        assert result[-2:] == [(Num(1), Num(3)), (Num(1), Num(4))]
        assert result == [(mk(1), mk(2)), (mk(1), mk(3)), (mk(1), mk(4))]
        assert list(reversed(result))[0] == (Num(1), Num(4))
        assert rows_to_python(result) == [(1, 2), (1, 3), (1, 4)]

    def test_every_entry_point_returns_query_result(self):
        system = _system()
        results = [
            system.query("path(1, Y)?"),
            system.query_magic("path(1, Y)?"),
            system.call("neighbors", [(1,)]),
            system.rows("path", 2),
            system.rows("edge", 2),
        ]
        with pytest.warns(DeprecationWarning):
            results.append(system.idb_rows("path", 2))
        for result in results:
            assert isinstance(result, QueryResult)
            assert isinstance(result, list)
            assert result.stats is not None
            assert result.stats.rows == len(result)

    def test_stats_and_plan_metadata(self):
        result = _system().query("path(1, Y)?")
        assert result.stats.resolution == "nail"
        assert result.stats.elapsed_s >= 0.0
        assert result.stats.counters["inserts"] > 0
        assert result.stats.nonzero["inserts"] > 0
        assert "path(X, Z) :- path(X, Y) & edge(Y, Z)." in result.plan
        assert result.trace == []  # tracing off by default

    def test_procedure_plan_is_the_explain_text(self):
        result = _system().call("neighbors", [(1,)])
        assert "proc neighbors/2" in result.plan
        assert "SCAN" in result.plan


class TestUnifiedRows:
    def test_rows_resolves_idb(self):
        system = _system()
        result = system.rows("path", 2)
        assert result.resolution == "nail"
        assert len(result) == 6
        # Canonical order, exactly what idb_rows always returned.
        assert result == system.engine.materialize(mk("path"), 2).sorted_rows()

    def test_rows_resolves_edb(self):
        result = _system().rows("edge", 2)
        assert result.resolution == "edb"
        assert len(result) == 3

    def test_rows_unknown_name_is_empty(self):
        result = _system().rows("ghost", 2)
        assert result == [] and result.resolution == "none"

    def test_relation_rows_alias_warns_and_matches(self):
        system = _system()
        with pytest.warns(DeprecationWarning, match="rows\\(\\)"):
            old = system.relation_rows("edge", 2)
        assert old == system.rows("edge", 2)

    def test_idb_rows_alias_warns_and_matches(self):
        system = _system()
        with pytest.warns(DeprecationWarning, match="rows\\(\\)"):
            old = system.idb_rows("path", 2)
        assert old == system.rows("path", 2)

    def test_idb_rows_still_raises_for_non_nail_names(self):
        system = _system()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(GlueRuntimeError, match="not a NAIL! predicate"):
                system.idb_rows("edge", 2)


class TestCallModuleFilter:
    SOURCE = """
        module a;
        export pick(:X);
        proc pick(:X)
          return(:X) := item(X).
        end
        end

        module b;
        export pick(:X, Y);
        proc pick(:X, Y)
          return(:X, Y) := pair(X, Y).
        end
        end
    """

    def _system(self):
        system = GlueNailSystem()
        system.load(self.SOURCE)
        system.facts("item", [(1,), (2,)])
        system.facts("pair", [(1, 10)])
        return system

    def test_module_narrows_arity_candidates(self):
        # Same name at two arities in different modules: module= must
        # disambiguate instead of reporting the arity as ambiguous.
        system = self._system()
        assert sorted(system.call("pick", module="a").to_python()) == [(1,), (2,)]
        assert system.call("pick", module="b").to_python() == [(1, 10)]

    def test_without_module_still_ambiguous(self):
        with pytest.raises(GlueRuntimeError, match="several arities"):
            self._system().call("pick")

    def test_unknown_module_reports_module(self):
        with pytest.raises(GlueRuntimeError, match="module z"):
            self._system().call("pick", module="z")
