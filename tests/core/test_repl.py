"""Tests for the interactive REPL (stream-driven, no TTY needed)."""

import io

import pytest

from repro.core.repl import Repl


def run_session(*lines):
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        repl.feed(line + "\n")
        if repl.done:
            break
    return out.getvalue(), repl


class TestFactsAndQueries:
    def test_fact_then_query(self):
        out, _ = run_session("edge(1, 2).", "edge(1, X)?")
        assert "ok" in out
        assert "(1, 2)" in out
        assert "1 tuple(s)" in out

    def test_rule_then_query(self):
        out, _ = run_session(
            "edge(1, 2).",
            "edge(2, 3).",
            "path(X, Y) :- edge(X, Y).",
            "path(X, Z) :- path(X, Y) & edge(Y, Z).",
            "path(1, Y)?",
        )
        assert "(1, 2)" in out and "(1, 3)" in out

    def test_no_answers(self):
        out, _ = run_session("edge(1, 2).", "edge(9, X)?")
        assert "no" in out

    def test_glue_statement_runs_immediately(self):
        out, repl = run_session("edge(1, 2).", "copy(X, Y) := edge(X, Y).", "copy(X, Y)?")
        assert "(1, 2)" in out

    def test_multiline_procedure_definition(self):
        out, _ = run_session(
            "proc double(X:Y)",
            "  return(X:Y) := in(X) & Y = X * 2.",
            "end",
            "double(4, Y)?",
        )
        assert "(4, 8)" in out

    def test_parse_error_reported(self):
        out, _ = run_session("this is ( not valid.")
        assert "parse error" in out

    def test_bad_rule_rejected_and_rolled_back(self):
        out, repl = run_session(
            "edge(1, 2).",
            "p(X) :- q(X) & !p(X).",  # unstratified: rejected at compile
            "edge(1, X)?",  # the system still works afterwards
        )
        assert "rejected" in out
        assert "(1, 2)" in out


class TestCommands:
    def test_help(self):
        out, _ = run_session(".help")
        assert ".strategy" in out

    def test_quit(self):
        _, repl = run_session(".quit", "edge(1, 2).")
        assert repl.done

    def test_rels_and_dump(self):
        out, _ = run_session("edge(1, 2).", ".rels", ".dump edge/2")
        assert "edge/2" in out
        assert "(1, 2)" in out

    def test_dump_usage(self):
        out, _ = run_session(".dump nonsense")
        assert "usage" in out

    def test_magic(self):
        out, _ = run_session(
            "edge(1, 2).",
            "path(X, Y) :- edge(X, Y).",
            ".magic path(1, Y)?",
        )
        assert "(1, 2)" in out

    def test_strategy_switch(self):
        out, _ = run_session(".strategy materialized", ".strategy bogus")
        assert "strategy = materialized" in out
        assert "usage" in out

    def test_stats(self):
        out, _ = run_session("edge(1, 2).", ".stats")
        assert "inserts" in out

    def test_explain(self):
        out, _ = run_session(
            "proc f(X:Y)",
            "  return(X:Y) := in(X) & Y = X.",
            "end",
            ".explain",
        )
        assert "proc f/2" in out
        assert "SCAN" in out

    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "dump.gnd")
        out, _ = run_session("edge(1, 2).", f".save {path}")
        assert "saved 1 fact(s)" in out
        out2, _ = run_session(f".load {path}", "edge(1, X)?")
        assert "(1, 2)" in out2

    def test_unknown_command(self):
        out, _ = run_session(".frobnicate")
        assert "unknown command" in out

    def test_run_stream(self):
        out = io.StringIO()
        repl = Repl(out=out)
        repl.run(io.StringIO("edge(1, 2).\nedge(1, X)?\n.quit\n"))
        assert "(1, 2)" in out.getvalue()
        assert repl.done


class TestErrorHardening:
    def test_load_missing_file_reports_error(self):
        out, repl = run_session(".load /no/such/file.gnd", "edge(1, 2).", "edge(1, X)?")
        assert "error:" in out
        assert "(1, 2)" in out  # session still usable

    def test_save_to_bad_path_reports_error(self):
        out, _ = run_session("edge(1, 2).", ".save /proc/definitely/not/writable.gnd")
        assert "error:" in out
