"""Tests for the GlueNailSystem facade."""

import io

import pytest

from repro.core.query import rows_to_python, term_to_python
from repro.core.system import GlueNailSystem
from repro.errors import GlueNailError, GlueRuntimeError
from repro.terms.term import Atom, Compound, Num

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""


class TestLoading:
    def test_incremental_loads_merge(self):
        system = GlueNailSystem()
        system.load("p(X) :- base(X).")
        system.load("q(X) :- p(X).")
        system.facts("base", [(1,)])
        assert rows_to_python(system.query("q(X)?")) == [(1,)]

    def test_load_invalidates_compilation(self):
        system = GlueNailSystem()
        system.load("p(X) :- base(X).")
        first = system.compile()
        system.load("q(X) :- p(X).")
        second = system.compile()
        assert first is not second

    def test_compile_idempotent(self):
        system = GlueNailSystem()
        system.load(PATH)
        assert system.compile() is system.compile()

    def test_load_file(self, tmp_path):
        path = tmp_path / "prog.glue"
        path.write_text(PATH)
        system = GlueNailSystem()
        system.load_file(str(path))
        system.facts("edge", [(1, 2)])
        assert len(system.query("path(X, Y)?")) == 1


class TestQuery:
    def _system(self):
        system = GlueNailSystem()
        system.load(PATH)
        system.facts("edge", [(1, 2), (2, 3)])
        return system

    def test_nail_query(self):
        assert rows_to_python(self._system().query("path(1, Y)?")) == [(1, 2), (1, 3)]

    def test_edb_query(self):
        assert rows_to_python(self._system().query("edge(X, 3)?")) == [(2, 3)]

    def test_all_free_query(self):
        assert len(self._system().query("path(X, Y)?")) == 3

    def test_fully_bound_query(self):
        system = self._system()
        assert len(system.query("path(1, 3)?")) == 1
        assert system.query("path(3, 1)?") == []

    def test_unknown_predicate_empty(self):
        assert self._system().query("mystery(X)?") == []

    def test_magic_query_agrees(self):
        system = self._system()
        assert sorted(map(str, system.query_magic("path(1, Y)?"))) == sorted(
            map(str, system.query("path(1, Y)?"))
        )

    def test_procedure_query(self):
        system = GlueNailSystem()
        system.load(
            """
            proc double(X:Y)
              return(X:Y) := in(X) & Y = X * 2.
            end
            """
        )
        assert rows_to_python(system.query("double(4, Y)?")) == [(4, 8)]

    def test_procedure_query_needs_bound_inputs(self):
        system = GlueNailSystem()
        system.load(
            """
            proc double(X:Y)
              return(X:Y) := in(X) & Y = X * 2.
            end
            """
        )
        with pytest.raises(GlueNailError):
            system.query("double(X, Y)?")

    def test_nonground_query_predicate_rejected(self):
        with pytest.raises(GlueNailError):
            self._system().query("X(1, 2)?")


class TestCall:
    def test_call_lifts_python_values(self):
        system = GlueNailSystem()
        system.load(
            """
            proc greet(N:G)
              return(N:G) := in(N) & G = concat('hi ', N).
            end
            """
        )
        rows = system.call("greet", [("ann",)])
        assert rows_to_python(rows) == [("ann", "hi ann")]

    def test_ambiguous_arity_needs_hint(self):
        system = GlueNailSystem()
        system.load(
            """
            proc f(X:Y)
              return(X:Y) := in(X) & Y = X.
            end
            proc f(X, Z:Y)
              return(X, Z:Y) := in(X, Z) & Y = X.
            end
            """
        )
        with pytest.raises(GlueRuntimeError, match="arities"):
            system.call("f", [(1,)])
        assert system.call("f", [(1,)], arity=2)


class TestEdbRoundtrip:
    def test_save_and_load(self, tmp_path):
        system = GlueNailSystem()
        system.facts("edge", [(1, 2), (2, 3)])
        path = str(tmp_path / "edb.gnd")
        assert system.save_edb(path) == 2
        fresh = GlueNailSystem()
        fresh.load(PATH)
        fresh.load_edb(path)
        assert len(fresh.query("path(X, Y)?")) == 3


class TestForeign:
    def test_foreign_procedure_via_import(self):
        events = [("mouse", ("p", 3, 4))]

        def event_fn(ctx, rows):
            if not events:
                return []
            kind, data = events.pop(0)
            from repro.terms.term import mk

            return [(mk(kind), mk(data))]

        system = GlueNailSystem()
        system.register_foreign("windows", "event", 2, 0, event_fn)
        system.load(
            """
            module app;
            export clicks(:X, Y);
            from windows import event(:Type, Data);
            proc clicks(:X, Y)
              return(:X, Y) := event(mouse, p(X, Y)).
            end
            end
            """
        )
        assert rows_to_python(system.call("clicks")) == [(3, 4)]

    def test_unregistered_foreign_fails_at_runtime(self):
        system = GlueNailSystem()
        system.load(
            """
            module app;
            export go(:X);
            from missing import thing(:X);
            proc go(:X)
              return(:X) := thing(X).
            end
            end
            """
        )
        with pytest.raises(GlueRuntimeError, match="not registered"):
            system.call("go")


class TestConversions:
    def test_term_to_python(self):
        assert term_to_python(Atom("a")) == "a"
        assert term_to_python(Num(2.5)) == 2.5
        assert term_to_python(Compound(Atom("f"), (Num(1),))) == ("f", 1)

    def test_nested_compound(self):
        term = Compound(Compound(Atom("s"), (Atom("k"),)), (Num(1),))
        assert term_to_python(term) == (("s", "k"), 1)

    def test_counters_reset(self):
        system = GlueNailSystem()
        system.facts("a", [(1,)])
        assert system.counters.inserts == 1
        system.reset_counters()
        assert system.counters.inserts == 0
