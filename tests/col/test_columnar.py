"""Differential tests: ``batch_mode="columnar"`` vs the row engine.

The columnar layer promises *exactness*: kernels charge the same cost
counters the row engine charges for the same logical work (kernel-cache
activity is reported only through ``batch_kernel`` trace events), so every
workload here must agree on result rows AND on every counter field --
including the per-literal probe/scan accounting, which is what keeps the
cost planner's feedback identical across modes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.par import ParallelContext
from repro.storage.stats import COUNTER_FIELDS

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

UNREACHABLE = PATH + """
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
unreachable(X, Y) :- node(X) & node(Y) & !path(X, Y).
"""

DEGREE = """
deg(X, N) :- edge(X, _) & group_by(X) & N = count(X).
"""


def make_system(source="", batch_mode="columnar", **kwargs):
    system = GlueNailSystem(batch_mode=batch_mode, **kwargs)
    if source:
        system.load(source)
    return system


def all_counters(system):
    return dict(zip(COUNTER_FIELDS, system.counters.as_tuple()))


def random_edges(nodes, edges, seed):
    rng = random.Random(seed)
    out = set()
    while len(out) < edges:
        out.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(out)


def run_pair(source, facts, out_preds, script=False, **kwargs):
    """Evaluate a workload under the row engine and the columnar kernels;
    assert both row sets and ALL cost counters agree; return the columnar
    system and its results."""
    results = {}
    systems = {}
    for mode in ("row", "columnar"):
        system = make_system(source, batch_mode=mode, **kwargs)
        for name, rows in facts.items():
            system.facts(name, rows)
        if script:
            system.run_script()
        results[mode] = {
            (name, arity): sorted(
                rows_to_python(system.rows(name, arity).rows)
            )
            for name, arity in out_preds
        }
        systems[mode] = system
    assert results["columnar"] == results["row"]
    assert all_counters(systems["columnar"]) == all_counters(systems["row"])
    return systems["columnar"], results["columnar"]


# ------------------------------------------------------------------ #
# NAIL! fixpoints
# ------------------------------------------------------------------ #


class TestNailDifferential:
    def test_chain_closure(self):
        _, results = run_pair(
            PATH, {"edge": [(i, i + 1) for i in range(120)]}, [("path", 2)]
        )
        assert len(results[("path", 2)]) == 120 * 121 // 2

    def test_random_graph_closure(self):
        run_pair(PATH, {"edge": random_edges(60, 300, seed=11)}, [("path", 2)])

    def test_negation_stratum(self):
        _, results = run_pair(
            UNREACHABLE,
            {"edge": random_edges(40, 40, seed=5)},
            [("path", 2), ("unreachable", 2)],
        )
        assert results[("unreachable", 2)]

    def test_repeated_variables(self):
        # Repeated head/body variables exercise the eq-check filters both
        # in the probe-table build and in the broadcast kernel.
        source = PATH + """
mutual(X, Y) :- path(X, Y) & path(Y, X).
selfloop(X) :- path(X, X).
"""
        edges = random_edges(20, 60, seed=3)
        _, results = run_pair(
            source, {"edge": edges}, [("mutual", 2), ("selfloop", 1)]
        )
        assert results[("selfloop", 1)]

    def test_compound_residue_fallback(self):
        # Compound-term arguments are outside the id-array representation:
        # those literals fall back to the row engine per literal, and the
        # fallback must still be counter-exact.
        source = """
unwrapped(X, Y) :- holds(pair(X, Y)).
linked(X, Z) :- holds(pair(X, Y)) & edge(Y, Z).
"""
        facts = {
            "holds": [(("pair", i, i + 1),) for i in range(30)],
            "edge": [(i, 10 * i) for i in range(40)],
        }
        _, results = run_pair(
            source, facts, [("unwrapped", 2), ("linked", 2)]
        )
        assert len(results[("unwrapped", 2)]) == 30
        assert results[("linked", 2)]

    def test_aggregates_fall_back_to_row(self):
        _, results = run_pair(
            DEGREE, {"edge": random_edges(40, 400, seed=7)}, [("deg", 2)]
        )
        assert results[("deg", 2)]

    def test_incremental_repair(self):
        row = make_system(PATH, batch_mode="row")
        col = make_system(PATH, batch_mode="columnar")
        base = random_edges(40, 150, seed=13)
        extra = [(i + 40, i + 41) for i in range(80)]
        for system in (row, col):
            system.facts("edge", base)
            system.rows("path", 2)  # materialize, then repair after deltas
            system.facts("edge", extra)
        first = sorted(rows_to_python(row.rows("path", 2).rows))
        second = sorted(rows_to_python(col.rows("path", 2).rows))
        assert first == second
        assert all_counters(col) == all_counters(row)
        assert col.counters.idb_delta_repairs > 0

    @settings(deadline=None, max_examples=20)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            min_size=0,
            max_size=40,
        ),
        with_negation=st.booleans(),
    )
    def test_property_differential(self, edges, with_negation):
        source = UNREACHABLE if with_negation else PATH
        preds = [("path", 2)] + ([("unreachable", 2)] if with_negation else [])
        run_pair(source, {"edge": sorted(set(edges))}, preds)


# ------------------------------------------------------------------ #
# Glue statement joins
# ------------------------------------------------------------------ #


class TestGlueDifferential:
    def test_two_way_statement_join(self):
        _, results = run_pair(
            "out(X, Z) := r(X, Y) & s(Y, Z).",
            {"r": random_edges(25, 200, seed=1), "s": random_edges(25, 200, seed=2)},
            [("out", 2)],
            script=True,
        )
        assert results[("out", 2)]

    def test_statement_negation(self):
        run_pair(
            "no_link(X, Y) := node(X) & node(Y) & !edge(X, Y).",
            {
                "node": [(i,) for i in range(25)],
                "edge": random_edges(25, 100, seed=4),
            },
            [("no_link", 2)],
            script=True,
        )

    @settings(deadline=None, max_examples=15)
    @given(
        r=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
        s=st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
    )
    def test_property_statement_join(self, r, s):
        run_pair(
            "out(X, Z) := r(X, Y) & s(Y, Z).",
            {"r": sorted(set(r)), "s": sorted(set(s))},
            [("out", 2)],
            script=True,
        )


# ------------------------------------------------------------------ #
# parallel + columnar
# ------------------------------------------------------------------ #


class TestParallelColumnar:
    def test_partition_parallel_composes(self):
        # Columnar batches under the partition-parallel pool: parallel
        # chunking splits the batch, each chunk runs the same kernels, so
        # rows and all non-parallel_* counters still match the serial row
        # engine.
        edges = random_edges(50, 250, seed=9)
        row = make_system(PATH, batch_mode="row")
        col = make_system(
            PATH,
            batch_mode="columnar",
            parallel=ParallelContext(workers=4, min_partition_rows=2),
        )
        for system in (row, col):
            system.facts("edge", edges)
        first = sorted(rows_to_python(row.rows("path", 2).rows))
        second = sorted(rows_to_python(col.rows("path", 2).rows))
        assert first == second
        core = lambda s: {
            k: v for k, v in all_counters(s).items()
            if not k.startswith("parallel_")
        }
        assert core(col) == core(row)
        col.close()


# ------------------------------------------------------------------ #
# observability
# ------------------------------------------------------------------ #


class TestBatchKernelTracing:
    def test_batch_kernel_events_fire(self):
        from repro.obs import CollectingSink

        system = make_system(PATH, batch_mode="columnar")
        system.facts("edge", [(i, i + 1) for i in range(20)])
        sink = CollectingSink()
        system.tracer.add_sink(sink)
        try:
            system.rows("path", 2)
        finally:
            system.tracer.remove_sink(sink)
        kernels = [e for e in sink.events if e.kind == "batch_kernel"]
        assert kernels
        assert {e.attrs["kernel"] for e in kernels} <= {
            "probe", "broadcast", "member", "anti-static", "anti-probe",
        }
        # Repeated rounds against the static edge relation reuse the
        # cached kernel state.
        assert any(e.attrs.get("cache") == "hit" for e in kernels)

    def test_row_mode_emits_no_kernel_events(self):
        from repro.obs import CollectingSink

        system = make_system(PATH, batch_mode="row")
        system.facts("edge", [(i, i + 1) for i in range(20)])
        sink = CollectingSink()
        system.tracer.add_sink(sink)
        try:
            system.rows("path", 2)
        finally:
            system.tracer.remove_sink(sink)
        assert not [e for e in sink.events if e.kind == "batch_kernel"]

    def test_explain_analyze_renders_kernel_table(self):
        system = make_system(PATH, batch_mode="columnar")
        system.facts("edge", [(i, i + 1) for i in range(10)])
        report = system.explain_analyze("path(X, Y)?")
        assert "Batch kernels (columnar execution)" in report

    def test_glue_probe_kernel_event(self):
        from repro.obs import CollectingSink

        system = make_system(batch_mode="columnar")
        system.facts("r", random_edges(10, 30, seed=2))
        system.facts("s", random_edges(10, 30, seed=6))
        system.load("out(X, Z) := r(X, Y) & s(Y, Z).")
        sink = CollectingSink()
        system.tracer.add_sink(sink)
        try:
            system.run_script()
        finally:
            system.tracer.remove_sink(sink)
        glue = [
            e for e in sink.events
            if e.kind == "batch_kernel" and e.name.startswith("glue:")
        ]
        assert glue
        assert glue[0].attrs["kernel"] == "probe"


class TestBroadcastEncodeCache:
    """Seminaive broadcast kernels keep their encoded id-columns alive
    across rounds (per ``(uid, cols)``/version) instead of re-interning the
    same relation every delta round -- with zero counter drift."""

    SOURCE = """
reach(X) :- seed(X).
reach(Y) :- reach(X) & edge(X, Y).
pairs(X, Y) :- reach(X) & label(Y).
"""

    def facts(self):
        return {
            "seed": [(0,)],
            "edge": [(i, i + 1) for i in range(25)],
            "label": [("a",), ("b",), ("c",)],
        }

    def test_rows_and_counters_match_the_row_engine(self):
        system, results = run_pair(self.SOURCE, self.facts(), [("pairs", 2)])
        assert len(results[("pairs", 2)]) == 26 * 3
        # The cartesian literal's operand columns were encoded once and
        # reused across the 20+ delta rounds.
        ctx = system.db.columnar
        assert ctx._bcast, "broadcast encode cache never populated"
        assert ctx.hits > 0

    def test_cache_survives_incremental_requery(self):
        system, _ = run_pair(self.SOURCE, self.facts(), [("pairs", 2)])
        system.facts("edge", [(25, 26)])
        assert len(system.rows("pairs", 2)) == 27 * 3
        system.facts("label", [("d",)])  # new version: entry re-encodes
        assert len(system.rows("pairs", 2)) == 27 * 4
