"""Tests for the SubscriptionManager: transaction-consistent delivery of
EDB and IDB deltas, pattern filters, resync fallbacks and active rules."""

import random

import pytest

from repro.core.system import GlueNailSystem
from repro.errors import GlueRuntimeError
from repro.sub.queue import OP_DELETE, OP_INSERT, OP_RESYNC
from repro.terms.term import mk

PATH_RULES = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z)."


def lift(*values):
    return tuple(mk(v) for v in values)


@pytest.fixture
def system():
    return GlueNailSystem()


def collect(notes):
    """A callback that appends (op, rows, txn) triples to ``notes``."""

    def callback(note):
        notes.append((note.op, tuple(note.rows), note.txn_id))

    return callback


class TestEdbDelivery:
    def test_insert_notifies_after_autocommit(self, system):
        notes = []
        system.subscribe("edge", 2, callback=collect(notes))
        system.facts("edge", [(1, 2)])
        assert len(notes) == 1
        op, rows, txn = notes[0]
        assert op == OP_INSERT
        assert rows == (lift(1, 2),)
        assert txn > 0

    def test_delete_notifies(self, system):
        system.facts("edge", [(1, 2)])
        notes = []
        system.subscribe("edge", 2, callback=collect(notes))
        system.db.relation(mk("edge"), 2).delete(lift(1, 2))
        assert [(op, rows) for op, rows, _ in notes] == [
            (OP_DELETE, (lift(1, 2),))
        ]

    def test_transaction_batches_and_nets(self, system):
        notes = []
        system.subscribe("edge", 2, callback=collect(notes))
        system.begin()
        system.facts("edge", [(1, 2), (3, 4)])
        # Inserted and deleted inside the same transaction: nets to zero.
        system.db.relation(mk("edge"), 2).delete(lift(3, 4))
        system.commit()
        assert len(notes) == 1
        op, rows, txn = notes[0]
        assert op == OP_INSERT and rows == (lift(1, 2),)

    def test_rollback_emits_nothing(self, system):
        notes = []
        system.subscribe("edge", 2, callback=collect(notes))
        system.begin()
        system.facts("edge", [(1, 2)])
        system.rollback()
        assert notes == []

    def test_txn_ids_are_monotone(self, system):
        notes = []
        system.subscribe("edge", 2, callback=collect(notes))
        for n in range(3):
            system.facts("edge", [(n, n)])
        txns = [txn for _, _, txn in notes]
        assert txns == sorted(txns) and len(set(txns)) == 3

    def test_pattern_filters_rows(self, system):
        notes = []
        system.subscribe("edge", 2, pattern=(1, None), callback=collect(notes))
        system.facts("edge", [(1, 2), (7, 8)])
        delivered = [rows for _, rows, _ in notes]
        assert delivered == [(lift(1, 2),)]

    def test_queue_mode_buffers_until_polled(self, system):
        sub = system.subscribe("edge", 2)
        system.facts("edge", [(1, 2)])
        system.facts("edge", [(3, 4)])
        seqs = [n.seq for n in sub.drain()]
        assert seqs == [1, 2]
        assert sub.poll() is None

    def test_unsubscribe_stops_delivery(self, system):
        notes = []
        sub = system.subscribe("edge", 2, callback=collect(notes))
        system.facts("edge", [(1, 2)])
        system.subscriptions.unsubscribe(sub)
        system.facts("edge", [(3, 4)])
        assert len(notes) == 1

    def test_unsubscribe_owner_clears_everything(self, system):
        owner = object()
        system.subscribe("edge", 2, owner=owner)
        system.subscribe("edge", 3, owner=owner)
        kept = system.subscribe("edge", 2)
        assert system.subscriptions.unsubscribe_owner(owner) == 2
        assert system.subscriptions.subscriptions_active == 1
        assert system.subscriptions._subs[kept.id] is kept

    def test_snapshot_is_captured_at_registration(self, system):
        system.facts("edge", [(1, 2), (3, 4)])
        sub = system.subscribe("edge", 2, snapshot=True)
        assert set(sub.snapshot_rows) == {lift(1, 2), lift(3, 4)}


class TestIdbDelivery:
    def test_repair_insert_deltas_are_exact(self, system):
        system.load(PATH_RULES)
        system.facts("edge", [(1, 2)])
        system.query("path(1, X)?")  # materialize the IDB
        notes = []
        system.subscribe("path", 2, callback=collect(notes))
        system.facts("edge", [(2, 3)])
        assert len(notes) == 1
        op, rows, _ = notes[0]
        assert op == OP_INSERT
        assert set(rows) == {lift(2, 3), lift(1, 3)}

    def test_delete_falls_back_to_exact_snapshot_diff(self, system):
        system.load(PATH_RULES)
        system.facts("edge", [(1, 2), (2, 3), (3, 4)])
        notes = []
        system.subscribe("path", 2, callback=collect(notes))
        system.db.relation(mk("edge"), 2).delete(lift(2, 3))
        deletes = [rows for op, rows, _ in notes if op == OP_DELETE]
        inserts = [rows for op, rows, _ in notes if op == OP_INSERT]
        assert len(deletes) == 1
        assert set(deletes[0]) == {
            lift(1, 3), lift(1, 4), lift(2, 3), lift(2, 4)
        }
        assert inserts == []

    def test_oversized_diff_becomes_resync(self, system):
        system.load(PATH_RULES)
        system.facts("edge", [(n, n + 1) for n in range(6)])
        manager = system.subscriptions
        manager.max_diff_rows = 3  # force the fallback
        notes = []
        system.subscribe("path", 2, callback=collect(notes))
        system.db.relation(mk("edge"), 2).delete(lift(2, 3))
        assert [op for op, _, _ in notes] == [OP_RESYNC]
        assert manager.resyncs == 1
        # The snapshot was refreshed: the next change delivers deltas again.
        manager.max_diff_rows = 100_000
        system.db.relation(mk("edge"), 2).delete(lift(0, 1))
        assert any(op == OP_DELETE for op, _, _ in notes)

    def test_changelog_overflow_counts_idb_resync(self, system):
        system.load(PATH_RULES)
        system.facts("edge", [(1, 2)])
        notes = []
        system.subscribe("path", 2, callback=collect(notes))
        # Shrink the EDB changelog window so the next burst overflows it.
        relation = system.db.relation(mk("edge"), 2)
        relation._changelog.max_entries = 2
        before = system.db.counters.idb_resyncs
        system.begin()
        system.facts("edge", [(n, n + 1) for n in range(2, 8)])
        system.commit()
        assert system.db.counters.idb_resyncs > before
        # Delivery stayed exact: the rebuild path diffs snapshots.
        inserted = {row for op, rows, _ in notes if op == OP_INSERT for row in rows}
        assert lift(2, 3) in inserted and lift(1, 3) in inserted

    def test_replay_matches_recomputation(self, system):
        """The differential guarantee: applying pushed deltas in order
        reproduces the recomputed extension, under a random workload."""
        system.load(PATH_RULES)
        shadow = set()

        def apply(note):
            assert note.op != OP_RESYNC, "workload should stay in-window"
            if note.op == OP_INSERT:
                shadow.update(note.rows)
            else:
                shadow.difference_update(note.rows)

        system.subscribe("path", 2, callback=apply)
        rng = random.Random(7)
        live = []
        relation = system.db.relation(mk("edge"), 2)
        for step in range(120):
            action = rng.random()
            if action < 0.6 or not live:
                row = (rng.randrange(8), rng.randrange(8))
                system.facts("edge", [row])
                live.append(row)
            elif action < 0.85:
                row = live.pop(rng.randrange(len(live)))
                relation.delete(lift(*row))
            else:
                system.begin()
                system.facts("edge", [(rng.randrange(8), rng.randrange(8))])
                system.rollback()
        assert shadow == set(system.query("path(X, Y)?"))


class TestSubscribeValidation:
    def test_bad_pattern_arity_raises(self, system):
        with pytest.raises(GlueRuntimeError):
            system.subscribe("edge", 2, pattern=(1, 2, 3))

    def test_edb_subscription_before_any_rows(self, system):
        notes = []
        system.subscribe("fresh", 1, callback=collect(notes))
        system.facts("fresh", [(1,)])
        assert notes and notes[0][0] == OP_INSERT


class TestWatchRules:
    WATCH_PROGRAM = PATH_RULES + """
        watch path(X, Y) call on_path;
        proc on_path(Op, X, Y:)
        path_log(Op, X, Y) += in(Op, X, Y).
        end
    """

    def test_watch_runs_the_handler_on_deltas(self, system):
        system.load(self.WATCH_PROGRAM)
        system.compile()
        system.facts("edge", [(1, 2), (2, 3)])
        logged = set(system.db.relation(mk("path_log"), 3).rows())
        assert lift("insert", 1, 2) in logged
        assert lift("insert", 1, 3) in logged

    def test_watch_sees_deletes(self, system):
        system.load(self.WATCH_PROGRAM)
        system.compile()
        system.facts("edge", [(1, 2), (2, 3)])
        system.db.relation(mk("edge"), 2).delete(lift(2, 3))
        logged = set(system.db.relation(mk("path_log"), 3).rows())
        assert lift("delete", 2, 3) in logged
        assert lift("delete", 1, 3) in logged

    def test_watch_with_ground_filter(self, system):
        system.load(
            "watch tick(1, X) call on_tick;\n"
            "proc on_tick(Op, A, B:)\n"
            "tick_log(A, B) += in(Op, A, B).\n"
            "end"
        )
        system.compile()
        system.facts("tick", [(1, 10), (2, 20)])
        logged = set(system.db.relation(mk("tick_log"), 2).rows())
        assert logged == {lift(1, 10)}

    def test_watch_missing_handler_fails_at_compile(self, system):
        system.load("watch edge(X, Y) call nowhere;")
        with pytest.raises(GlueRuntimeError):
            system.compile()

    def test_watch_wrong_handler_arity_fails(self, system):
        system.load(
            "watch edge(X, Y) call bad;\n"
            "proc bad(Op:)\n"
            "bad_log(Op) += in(Op).\n"
            "end"
        )
        with pytest.raises(GlueRuntimeError):
            system.compile()

    def test_recompile_replaces_watch_subscriptions(self, system):
        system.load(self.WATCH_PROGRAM)
        system.compile()
        active = system.subscriptions.subscriptions_active
        system.load("other(X) :- edge(X, X).")
        system.compile()
        assert system.subscriptions.subscriptions_active == active
