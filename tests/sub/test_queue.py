"""Unit tests for the bounded delivery queue and the notification frame."""

from repro.sub.queue import (
    OP_INSERT,
    OP_RESYNC,
    DeliveryQueue,
    Notification,
)


def note(seq: int, op: str = OP_INSERT, dropped: int = 0) -> Notification:
    return Notification(
        sub_id=1, seq=seq, predicate="edge/2", op=op,
        rows=(), txn_id=7, dropped=dropped,
    )


class TestNotification:
    def test_payload_fields(self):
        payload = note(3).payload()
        assert payload["sub"] == 1
        assert payload["seq"] == 3
        assert payload["predicate"] == "edge/2"
        assert payload["op"] == OP_INSERT
        assert payload["txn"] == 7
        assert payload["dropped"] == 0

    def test_rows_are_immutable_tuples(self):
        n = Notification(sub_id=1, seq=1, predicate="p/1", op=OP_INSERT,
                         rows=((1,), (2,)), txn_id=1)
        assert n.rows == ((1,), (2,))


class TestDeliveryQueue:
    def test_fifo_order(self):
        queue = DeliveryQueue(capacity=8)
        for seq in range(1, 4):
            assert queue.push(note(seq), lambda lost: note(99, OP_RESYNC, lost))
        assert [n.seq for n in queue.drain()] == [1, 2, 3]
        assert queue.pop() is None

    def test_pop_one_at_a_time(self):
        queue = DeliveryQueue(capacity=8)
        queue.push(note(1), lambda lost: note(99, OP_RESYNC, lost))
        assert queue.pop().seq == 1
        assert queue.pop() is None

    def test_overflow_drops_backlog_and_leaves_resync(self):
        queue = DeliveryQueue(capacity=2)
        make_resync = lambda lost: note(99, OP_RESYNC, dropped=lost)  # noqa: E731
        assert queue.push(note(1), make_resync)
        assert queue.push(note(2), make_resync)
        # The third push overflows: the backlog (2 notes + the new one)
        # is replaced by a single resync marker.
        assert not queue.push(note(3), make_resync)
        remaining = queue.drain()
        assert len(remaining) == 1
        assert remaining[0].op == OP_RESYNC
        assert remaining[0].dropped == 3
        assert queue.dropped == 3

    def test_recovers_after_overflow(self):
        queue = DeliveryQueue(capacity=2)
        make_resync = lambda lost: note(99, OP_RESYNC, dropped=lost)  # noqa: E731
        for seq in range(1, 5):
            queue.push(note(seq), make_resync)
        queue.drain()
        assert queue.push(note(10), make_resync)
        assert [n.seq for n in queue.drain()] == [10]

    def test_never_blocks(self):
        # Push far past capacity: every call returns immediately.
        queue = DeliveryQueue(capacity=4)
        make_resync = lambda lost: note(99, OP_RESYNC, dropped=lost)  # noqa: E731
        for seq in range(100):
            queue.push(note(seq), make_resync)
        assert len(queue) <= 4
