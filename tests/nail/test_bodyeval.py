"""Unit tests for the bindings-based rule-body evaluator."""

import pytest

from repro.errors import GlueRuntimeError
from repro.lang.parser import parse_rule
from repro.nail.bodyeval import (
    derive_heads,
    eval_expr_bindings,
    eval_rule_body,
)
from repro.terms.term import Atom, Compound, Num

EDB = {
    ("edge", 2): [(Num(1), Num(2)), (Num(2), Num(3)), (Num(3), Num(3))],
    ("score", 2): [(Atom("a"), Num(10)), (Atom("b"), Num(20)), (Atom("c"), Num(20))],
    ("blocked", 1): [(Num(3),)],
}


def rows_fn(name, arity):
    if isinstance(name, Atom):
        return EDB.get((name.name, arity), ())
    return ()


def run(rule_text, **kwargs):
    rule = parse_rule(rule_text)
    return rule, eval_rule_body(rule, rows_fn, **kwargs)


class TestJoins:
    def test_single_literal(self):
        _, bindings = run("p(X, Y) :- edge(X, Y).")
        assert len(bindings) == 3

    def test_join(self):
        _, bindings = run("p(X, Z) :- edge(X, Y) & edge(Y, Z).")
        pairs = {(b["X"].value, b["Z"].value) for b in bindings}
        assert pairs == {(1, 3), (2, 3), (3, 3)}

    def test_negation(self):
        _, bindings = run("p(X) :- edge(X, _) & !blocked(X).")
        assert {b["X"].value for b in bindings} == {1, 2}

    def test_comparison_filter(self):
        _, bindings = run("p(X) :- edge(X, Y) & X < Y.")
        assert {b["X"].value for b in bindings} == {1, 2}

    def test_binding_comparison(self):
        _, bindings = run("p(X, D) :- edge(X, Y) & D = Y - X.")
        assert {b["D"].value for b in bindings} == {1, 0}

    def test_true_false_literals(self):
        _, bindings = run("p(X) :- edge(X, _) & true.")
        assert bindings
        _, bindings = run("p(X) :- edge(X, _) & false.")
        assert bindings == []

    def test_empty_relation(self):
        _, bindings = run("p(X) :- nothing(X).")
        assert bindings == []

    def test_delta_override(self):
        rule = parse_rule("p(X, Z) :- edge(X, Y) & edge(Y, Z).")
        delta = {("edge", 2): [(Num(1), Num(2))]}

        def delta_fn(name, arity):
            return delta.get((name.name, arity), ())

        bindings = eval_rule_body(rule, rows_fn, delta_index=0, delta_rows_fn=delta_fn)
        # Only the delta tuple is used at position 0; position 1 is full.
        assert {(b["X"].value, b["Z"].value) for b in bindings} == {(1, 3)}

    def test_seeds(self):
        rule = parse_rule("p(X, Y) :- edge(X, Y).")
        bindings = eval_rule_body(rule, rows_fn, seeds=[{"X": Num(1)}])
        assert len(bindings) == 1 and bindings[0]["Y"] == Num(2)


class TestAggregation:
    def test_aggregate_binding(self):
        _, bindings = run("p(M) :- score(_, S) & M = max(S).")
        assert all(b["M"].value == 20 for b in bindings)

    def test_aggregate_filter(self):
        _, bindings = run("p(N) :- score(N, S) & S = max(S).")
        assert {b["N"].name for b in bindings} == {"b", "c"}

    def test_group_by(self):
        _, bindings = run("p(S, N) :- score(W, S) & group_by(S) & N = count(W).")
        counts = {(b["S"].value, b["N"].value) for b in bindings}
        assert counts == {(10, 1), (20, 2)}

    def test_anonymous_projection_dedups_before_aggregate(self):
        # score(_, S) projects onto S alone; the supplementary relation is
        # duplicate-free over its columns, so the two 20s collapse -- the
        # flip side of the paper's duplicate-preserving temperature example
        # (there the city column kept the readings distinct).
        _, bindings = run("p(S, N) :- score(_, S) & group_by(S) & N = count(S).")
        counts = {(b["S"].value, b["N"].value) for b in bindings}
        assert counts == {(10, 1), (20, 1)}

    def test_flipped_aggregate(self):
        _, bindings = run("p(N) :- score(N, S) & max(S) = S.")
        assert {b["N"].name for b in bindings} == {"b", "c"}


class TestDeriveHeads:
    def test_plain_head(self):
        rule, bindings = run("p(X) :- edge(X, _).")
        heads = derive_heads(rule, bindings)
        assert (Atom("p"), (Num(1),)) in heads

    def test_compound_head_name(self):
        rule, bindings = run("family(X)(Y) :- edge(X, Y).")
        heads = derive_heads(rule, bindings)
        names = {name for name, _ in heads}
        assert Compound(Atom("family"), (Num(1),)) in names


class TestErrors:
    def test_unbound_predicate_variable(self):
        rule = parse_rule("p(X) :- S(X).")
        with pytest.raises(GlueRuntimeError):
            eval_rule_body(rule, rows_fn)

    def test_unbound_expression_variable(self):
        with pytest.raises(GlueRuntimeError):
            eval_expr_bindings(parse_rule("p(D) :- q(X) & D = X + 1.").body[1].right, {})
