"""Seminaive vs. naive evaluation and the uniondiff integration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine
from repro.storage.database import Database
from repro.terms.term import Atom

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

SAME_GEN = """
sg(X, X) :- person(X).
sg(X, Y) :- parent(X, XP) & sg(XP, YP) & parent(Y, YP).
"""


def edge_db(edges):
    db = Database()
    db.facts("edge", edges)
    return db


def rules_of(text):
    return list(parse_program(text).items)


class TestCorrectness:
    def test_chain(self):
        db = edge_db([(i, i + 1) for i in range(20)])
        engine = NailEngine(db, rules_of(PATH))
        assert len(engine.materialize(Atom("path"), 2)) == 20 * 21 // 2

    def test_cycle(self):
        db = edge_db([(0, 1), (1, 2), (2, 0)])
        engine = NailEngine(db, rules_of(PATH))
        assert len(engine.materialize(Atom("path"), 2)) == 9

    def test_diamond_no_duplicates(self):
        db = edge_db([(0, 1), (0, 2), (1, 3), (2, 3)])
        engine = NailEngine(db, rules_of(PATH))
        rows = engine.materialize(Atom("path"), 2)
        assert len(rows) == len(set(rows.rows()))
        assert len(rows) == 5

    def test_nonlinear_recursion(self):
        # sg has two recursive positions via parent joins.
        db = Database()
        db.facts("person", [("a",), ("b",), ("c",), ("d",)])
        db.facts("parent", [("c", "a"), ("d", "b"), ("a", "r"), ("b", "r")])
        db.facts("person", [("r",)])
        engine = NailEngine(db, rules_of(SAME_GEN))
        rows = engine.materialize(Atom("sg"), 2)
        values = {(r[0].name, r[1].name) for r in rows.rows()}
        assert ("a", "b") in values  # same generation via r
        assert ("c", "d") in values  # same generation via a/b

    def test_mutual_recursion(self):
        db = Database()
        db.facts("zero", [(0,)])
        db.facts("succ", [(i, i + 1) for i in range(10)])
        rules = rules_of(
            """
            even(X) :- zero(X).
            even(Y) :- odd(X) & succ(X, Y).
            odd(Y) :- even(X) & succ(X, Y).
            """
        )
        engine = NailEngine(db, rules)
        evens = sorted(r[0].value for r in engine.materialize(Atom("even"), 1).rows())
        odds = sorted(r[0].value for r in engine.materialize(Atom("odd"), 1).rows())
        assert evens == [0, 2, 4, 6, 8, 10]
        assert odds == [1, 3, 5, 7, 9]


class TestCosts:
    def test_seminaive_cheaper_than_naive(self):
        db = edge_db([(i, i + 1) for i in range(40)])
        db.counters.reset()
        NailEngine(db, rules_of(PATH), strategy="seminaive").materialize(Atom("path"), 2)
        semi = db.counters.tuples_scanned
        db.counters.reset()
        NailEngine(db, rules_of(PATH), strategy="naive").materialize(Atom("path"), 2)
        naive = db.counters.tuples_scanned
        assert semi < naive

    def test_gap_grows_with_depth(self):
        ratios = []
        for n in (10, 30):
            db = edge_db([(i, i + 1) for i in range(n)])
            db.counters.reset()
            NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2)
            semi = db.counters.tuples_scanned
            db.counters.reset()
            NailEngine(db, rules_of(PATH), strategy="naive").materialize(Atom("path"), 2)
            ratios.append(db.counters.tuples_scanned / max(semi, 1))
        assert ratios[1] > ratios[0]

    def test_rounds_counted(self):
        db = edge_db([(i, i + 1) for i in range(8)])
        engine = NailEngine(db, rules_of(PATH))
        engine.materialize(Atom("path"), 2)
        # A chain of 8 edges needs ~8 seminaive rounds (+ exhaustion check).
        assert 8 <= engine.rounds_run <= 10


@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30)
)
@settings(max_examples=30, deadline=None)
def test_property_seminaive_equals_naive(edges):
    db = edge_db(edges)
    semi = NailEngine(db, rules_of(PATH), strategy="seminaive")
    naive = NailEngine(db, rules_of(PATH), strategy="naive")
    assert (
        semi.materialize(Atom("path"), 2).sorted_rows()
        == naive.materialize(Atom("path"), 2).sorted_rows()
    )


@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=20),
    st.lists(st.integers(0, 5), min_size=1, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_property_stratified_negation_agrees(edges, starts):
    source = """
    reach(X) :- start(X).
    reach(Y) :- reach(X) & edge(X, Y).
    unreach(X) :- node(X) & !reach(X).
    """
    db = Database()
    db.facts("node", [(i,) for i in range(6)])
    db.facts("edge", edges)
    db.facts("start", [(s,) for s in starts])
    semi = NailEngine(db, rules_of(source), strategy="seminaive")
    naive = NailEngine(db, rules_of(source), strategy="naive")
    left = semi.materialize(Atom("unreach"), 1).sorted_rows()
    right = naive.materialize(Atom("unreach"), 1).sorted_rows()
    assert left == right
    # And both agree with a direct reachability computation.
    reach = set()
    frontier = set(starts)
    while frontier:
        reach |= frontier
        frontier = {b for a, b in edges if a in frontier} - reach
    expected = sorted(set(range(6)) - reach)
    assert [r[0].value for r in left] == expected
