"""Tests for the magic-sets transformation and demand-driven queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine, magic_query
from repro.nail.magic import MagicTransformError, magic_transform
from repro.storage.database import Database
from repro.terms.term import Atom, Num, Var

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""


def rules_of(text):
    return list(parse_program(text).items)


def db_with(edges):
    db = Database()
    db.facts("edge", edges)
    return db


class TestTransform:
    def test_generates_magic_and_adorned_rules(self):
        program = magic_transform(rules_of(PATH), Atom("path"), (Num(1), Var("Y")))
        heads = {str(r.head_pred) for r in program.rules}
        assert "'path@bf'" in heads or "path@bf" in {str(r.head_pred) for r in program.rules}
        assert any("magic@" in str(r.head_pred) for r in program.rules)
        assert program.seed_row == (Num(1),)
        assert program.adornment == "bf"

    def test_second_argument_bound(self):
        program = magic_transform(rules_of(PATH), Atom("path"), (Var("X"), Num(3)))
        assert program.adornment == "fb"
        assert program.seed_row == (Num(3),)

    def test_all_free_degenerates(self):
        program = magic_transform(rules_of(PATH), Atom("path"), (Var("X"), Var("Y")))
        assert program.adornment == "ff"
        assert program.seed_row == ()

    def test_unknown_predicate(self):
        with pytest.raises(MagicTransformError):
            magic_transform(rules_of(PATH), Atom("nope"), (Num(1),))

    def test_negated_idb_outside_fragment(self):
        rules = rules_of("p(X) :- q(X) & !r(X).\nr(X) :- e(X).")
        with pytest.raises(MagicTransformError):
            magic_transform(rules, Atom("p"), (Num(1),))

    def test_aggregates_outside_fragment(self):
        rules = rules_of("p(M) :- q(T) & M = max(T).")
        with pytest.raises(MagicTransformError):
            magic_transform(rules, Atom("p"), (Var("M"),))

    def test_compound_heads_outside_fragment(self):
        rules = rules_of("students(ID)(N) :- attends(N, ID).")
        with pytest.raises(MagicTransformError):
            magic_transform(rules, Atom("students"), (Var("N"),))


class TestQueries:
    def test_bound_first_argument(self):
        db = db_with([(1, 2), (2, 3), (3, 4), (10, 11)])
        answers, _ = magic_query(db, rules_of(PATH), Atom("path"), (Num(1), Var("Y")))
        assert sorted(r[1].value for r in answers) == [2, 3, 4]

    def test_bound_second_argument(self):
        db = db_with([(1, 2), (2, 3), (10, 11)])
        answers, _ = magic_query(db, rules_of(PATH), Atom("path"), (Var("X"), Num(3)))
        assert sorted(r[0].value for r in answers) == [1, 2]

    def test_fully_bound_query(self):
        db = db_with([(1, 2), (2, 3)])
        answers, _ = magic_query(db, rules_of(PATH), Atom("path"), (Num(1), Num(3)))
        assert len(answers) == 1
        answers, _ = magic_query(db, rules_of(PATH), Atom("path"), (Num(3), Num(1)))
        assert answers == []

    def test_does_less_work_than_full_evaluation(self):
        edges = [(i, i + 1) for i in range(50)] + [(1000 + i, 1001 + i) for i in range(50)]
        db = db_with(edges)
        db.counters.reset()
        NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2)
        full_cost = db.counters.tuples_scanned
        db.counters.reset()
        magic_query(db, rules_of(PATH), Atom("path"), (Num(49), Var("Y")))
        magic_cost = db.counters.tuples_scanned
        assert magic_cost < full_cost / 5

    def test_parameterized_tc_via_magic(self):
        # Section 5.2: the universal transitive closure, unsafe bottom-up,
        # becomes evaluable once the magic seed binds E and X.
        rules = rules_of("tc(E, X, X).\ntc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).")
        db = Database()
        db.facts("edge", [(1, 2), (2, 3)])
        db.facts("roads", [("sf", "la")])
        answers, _ = magic_query(
            db, rules, Atom("tc"), (Atom("edge"), Num(1), Var("Z"))
        )
        assert sorted(str(r[2]) for r in answers) == ["1", "2", "3"]
        answers, _ = magic_query(
            db, rules, Atom("tc"), (Atom("roads"), Atom("sf"), Var("Z"))
        )
        assert sorted(str(r[2]) for r in answers) == ["la", "sf"]


@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=25),
    st.integers(0, 6),
)
@settings(max_examples=30, deadline=None)
def test_property_magic_equals_full(edges, source):
    """Magic answers == full evaluation restricted to the query."""
    db = db_with(edges)
    rules = rules_of(PATH)
    answers, _ = magic_query(db, rules, Atom("path"), (Num(source), Var("Y")))
    full = NailEngine(db, rules).query(Atom("path"), (Num(source), Var("Y")))
    assert sorted(map(str, answers)) == sorted(map(str, full))
