"""Differential tests for the hash-join engine.

Every workload is evaluated three ways -- hash-join seminaive (the
default), hash-join naive, and the nested-loop baseline -- and the result
sets must agree exactly.  A second group asserts the *point* of the
engine: ``tuples_scanned`` collapses on indexed joins.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine, magic_query
from repro.storage.database import Database
from repro.terms.term import Atom, Compound, Num, Var

PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

SAME_GENERATION = """
sg(X, X) :- node(X).
sg(X, Y) :- edge(P, X) & sg(P, Q) & edge(Q, Y).
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
"""

UNREACHABLE = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
unreachable(X, Y) :- node(X) & node(Y) & !path(X, Y).
"""

HILOG_TC = """
tc(G)(X, Y) :- e(G, X, Y).
tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z).
"""


def rules_of(text):
    return list(parse_program(text).items)


def chain_edges(n):
    return [(i, i + 1) for i in range(n)]


def tree_edges(depth):
    out = []
    for node in range(2 ** depth - 1):
        out.append((node, 2 * node + 1))
        out.append((node, 2 * node + 2))
    return out


def random_edges(nodes, edges, seed):
    rng = random.Random(seed)
    out = set()
    while len(out) < edges:
        out.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(out)


def materialize_rows(edges, rules_text, pred, arity, strategy, join_mode, fact="edge"):
    db = Database()
    db.facts(fact, edges)
    engine = NailEngine(db, rules_of(rules_text), strategy=strategy, join_mode=join_mode)
    return set(engine.materialize(pred, arity).rows())


def all_ways(edges, rules_text, pred, arity, fact="edge"):
    return [
        materialize_rows(edges, rules_text, pred, arity, strategy, join_mode, fact)
        for strategy, join_mode in [
            ("seminaive", "hash"),
            ("naive", "hash"),
            ("seminaive", "nested"),
            ("naive", "nested"),
        ]
    ]


class TestDifferential:
    """Hash-join results == naive results == nested-loop results."""

    @pytest.mark.parametrize("n", [1, 5, 30])
    def test_chains(self, n):
        results = all_ways(chain_edges(n), PATH, Atom("path"), 2)
        assert all(r == results[0] for r in results)
        assert len(results[0]) == n * (n + 1) // 2

    @pytest.mark.parametrize("depth", [2, 5])
    def test_trees(self, depth):
        results = all_ways(tree_edges(depth), PATH, Atom("path"), 2)
        assert all(r == results[0] for r in results)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_graphs(self, seed):
        edges = random_edges(25, 60, seed)
        results = all_ways(edges, PATH, Atom("path"), 2)
        assert all(r == results[0] for r in results)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_same_generation(self, seed):
        edges = random_edges(15, 25, seed)
        results = all_ways(edges, SAME_GENERATION, Atom("sg"), 2)
        assert all(r == results[0] for r in results)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_stratified_negation(self, seed):
        edges = random_edges(12, 20, seed)
        results = all_ways(edges, UNREACHABLE, Atom("unreachable"), 2)
        assert all(r == results[0] for r in results)

    @pytest.mark.parametrize("family", ["g0", "g1"])
    def test_hilog_predicate_variables(self, family):
        facts = [
            (f"g{f}", f * 100 + i, f * 100 + i + 1) for f in range(3) for i in range(8)
        ] + [("g1", 105, 101)]  # one cycle in g1
        pred = Compound(Atom("tc"), (Atom(family),))
        results = all_ways(facts, HILOG_TC, pred, 2, fact="e")
        assert all(r == results[0] for r in results)
        assert results[0]

    def test_magic_agrees_across_join_modes(self):
        edges = chain_edges(40) + [(500 + i, 501 + i) for i in range(10)]
        answers = {}
        for join_mode in ("hash", "nested"):
            db = Database()
            db.facts("edge", edges)
            rows, _ = magic_query(
                db, rules_of(PATH), Atom("path"), (Num(7), Var("Y")),
                join_mode=join_mode,
            )
            answers[join_mode] = set(rows)
        assert answers["hash"] == answers["nested"]
        assert len(answers["hash"]) == 33

    @given(
        st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_hash_equals_nested(self, edges):
        results = all_ways(edges, PATH, Atom("path"), 2)
        assert all(r == results[0] for r in results)


class TestCostCollapse:
    """The hash-join engine must scan dramatically less than nested loops."""

    def _cost(self, edges, join_mode):
        db = Database()
        db.facts("edge", edges)
        engine = NailEngine(db, rules_of(PATH), join_mode=join_mode)
        db.counters.reset()
        engine.materialize(Atom("path"), 2)
        return db.counters.tuples_scanned

    def test_random_graph_scans_drop_5x(self):
        # The acceptance workload: transitive closure of random_graph(40, 80).
        edges = random_edges(40, 80, seed=7)
        nested = self._cost(edges, "nested")
        hashed = self._cost(edges, "hash")
        assert hashed * 5 <= nested, (hashed, nested)

    def test_chain_scans_drop_5x(self):
        edges = chain_edges(60)
        nested = self._cost(edges, "nested")
        hashed = self._cost(edges, "hash")
        assert hashed * 5 <= nested, (hashed, nested)

    def test_probes_replace_scans(self):
        db = Database()
        db.facts("edge", chain_edges(30))
        engine = NailEngine(db, rules_of(PATH))
        db.counters.reset()
        engine.materialize(Atom("path"), 2)
        # The recursive join probes edge on Y instead of rescanning it.
        assert db.counters.index_lookups > 0
        assert db.counters.tuples_scanned < db.counters.index_lookups * 10

    def test_bound_query_uses_index_not_scan(self):
        # Satellite: NailEngine.query routes bound args through match_rows.
        db = Database()
        db.facts("edge", chain_edges(40))
        engine = NailEngine(db, rules_of(PATH))
        engine.materialize(Atom("path"), 2)  # warm the IDB cache
        db.counters.reset()
        rows = engine.query(Atom("path"), (Num(0), Var("Y")))
        assert len(rows) == 40
        # The query itself must not rescan the materialized relation per
        # answer; one adaptive-policy scan at most before an index kicks in.
        full = len(engine.materialize(Atom("path"), 2))
        assert db.counters.tuples_scanned <= full
