"""Unit tests for rule preparation: safety and evaluation ordering."""

import pytest

from repro.errors import UnsafeRuleError
from repro.lang.ast import PredSubgoal
from repro.lang.parser import parse_rule
from repro.nail.rules import (
    check_rule_safety,
    order_body_for_evaluation,
    prepare_rules,
)


class TestSafety:
    def test_range_restricted_ok(self):
        check_rule_safety(parse_rule("p(X, Y) :- e(X, Y)."))

    def test_head_var_not_bound(self):
        with pytest.raises(UnsafeRuleError, match="range-restricted"):
            check_rule_safety(parse_rule("p(X, Y) :- e(X)."))

    def test_unit_clause_with_vars_unsafe(self):
        with pytest.raises(UnsafeRuleError):
            check_rule_safety(parse_rule("tc(E, X, X)."))

    def test_ground_unit_clause_safe(self):
        check_rule_safety(parse_rule("edge(1, 2)."))

    def test_demand_bindings_rescue(self):
        # The magic seed binds E and X, making the unit clause safe.
        check_rule_safety(parse_rule("tc(E, X, X)."), demand_bound={"E", "X"})

    def test_negation_over_unbound(self):
        with pytest.raises(UnsafeRuleError, match="negated"):
            check_rule_safety(parse_rule("p(X) :- e(X) & !q(Y)."))

    def test_comparison_over_unbound(self):
        with pytest.raises(UnsafeRuleError, match="comparison"):
            check_rule_safety(parse_rule("p(X) :- e(X) & X < Y."))

    def test_binding_comparison_counts_as_bound(self):
        check_rule_safety(parse_rule("p(X, D) :- e(X) & D = X * 2."))

    def test_pred_var_must_be_bound(self):
        with pytest.raises(UnsafeRuleError, match="predicate variable"):
            check_rule_safety(parse_rule("p(X) :- S(X)."))

    def test_head_pred_var_must_be_bound(self):
        with pytest.raises(UnsafeRuleError):
            check_rule_safety(parse_rule("S(X) :- e(X)."))


class TestOrdering:
    def test_reorders_family_parameter_binding(self):
        # The family literal tc(G)(...) needs G bound; the EDB literal
        # binding G must be scheduled first.
        rule = parse_rule("tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z).")
        ordered = order_body_for_evaluation(rule)
        first = ordered.body[0]
        assert isinstance(first, PredSubgoal)
        assert str(first.pred) == "e"

    def test_moves_negation_after_bindings(self):
        rule = parse_rule("p(X) :- !bad(X) & e(X).")
        ordered = order_body_for_evaluation(rule)
        assert not ordered.body[0].negated
        assert ordered.body[1].negated

    def test_already_ordered_rule_untouched(self):
        rule = parse_rule("p(X, Y) :- e(X, Y) & X < Y.")
        assert order_body_for_evaluation(rule) is rule

    def test_aggregates_stay_in_place(self):
        rule = parse_rule("p(M) :- e(T) & M = max(T) & q(M).")
        ordered = order_body_for_evaluation(rule)
        # q(M) must not move before the aggregate that binds M.
        texts = [str(s) for s in ordered.body]
        agg_index = next(i for i, s in enumerate(texts) if "max" in s)
        q_index = next(i for i, s in enumerate(texts) if s.startswith("PredSubgoal(pred=Atom(name='q'"))
        assert q_index > agg_index


class TestPrepareRules:
    def test_collects_structure(self):
        infos = prepare_rules(
            [parse_rule("p(X) :- e(X) & !q(X)."), parse_rule("m(V) :- s(T) & V = max(T).")]
        )
        assert infos[0].has_negation and not infos[0].has_aggregate
        assert infos[1].has_aggregate and not infos[1].has_negation
        assert infos[0].body_skeletons == (("e", (), 1),)

    def test_safety_check_optional(self):
        rules = [parse_rule("tc(E, X, X).")]
        with pytest.raises(UnsafeRuleError):
            prepare_rules(rules, check_safety=True)
        infos = prepare_rules(rules, check_safety=False)
        assert len(infos) == 1

    def test_head_vars_property(self):
        (info,) = prepare_rules([parse_rule("p(X, f(Y)) :- e(X, Y).")])
        assert info.head_vars == {"X", "Y"}


class TestDeprecatedShims:
    """The PR-6 planner extraction left warn-and-delegate re-exports in
    ``repro.nail.rules``; they must keep warning and keep returning plans
    identical to the shared ``repro.opt`` implementations until removed."""

    def _subgoal(self):
        rule = parse_rule("p(X, Z) :- e(X, Y, Z, a).")
        return rule.body[0]

    def test_classify_join_columns_warns_and_delegates(self):
        import repro.opt as opt
        from repro.nail.rules import classify_join_columns

        subgoal = self._subgoal()
        bound = frozenset({"X"})
        with pytest.warns(DeprecationWarning, match="moved to repro.opt"):
            shim_plan = classify_join_columns(subgoal.pred, subgoal.args, bound)
        direct_plan = opt.classify_join_columns(subgoal.pred, subgoal.args, bound)
        assert shim_plan == direct_plan

    def test_compile_literal_plan_warns_and_delegates(self):
        import repro.opt as opt
        from repro.nail.rules import compile_literal_plan

        subgoal = self._subgoal()
        bound = frozenset({"X", "Y"})
        with pytest.warns(DeprecationWarning, match="moved to repro.opt"):
            shim_plan = compile_literal_plan(subgoal, bound)
        direct_plan = opt.compile_literal_plan(subgoal, bound)
        assert shim_plan == direct_plan

    def test_direct_import_does_not_warn(self):
        import warnings

        import repro.opt as opt

        subgoal = self._subgoal()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            opt.compile_literal_plan(subgoal, frozenset({"X"}))
