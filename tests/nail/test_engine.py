"""Tests for the NAIL! engine: on-demand, stratified, cached evaluation."""

import pytest

from repro.errors import GlueRuntimeError, UnsafeRuleError
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine
from repro.storage.database import Database
from repro.terms.term import Atom, Compound, Num, Var


def rules_of(text):
    return list(parse_program(text).items)


PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""


class TestBasics:
    def test_materialize_transitive_closure(self):
        db = Database()
        db.facts("edge", [(1, 2), (2, 3), (3, 4)])
        engine = NailEngine(db, rules_of(PATH))
        rel = engine.materialize(Atom("path"), 2)
        assert len(rel) == 6

    def test_query_with_bound_argument(self):
        db = Database()
        db.facts("edge", [(1, 2), (2, 3)])
        engine = NailEngine(db, rules_of(PATH))
        rows = engine.query(Atom("path"), (Num(1), Var("Y")))
        assert sorted(r[1].value for r in rows) == [2, 3]

    def test_defines(self):
        engine = NailEngine(Database(), rules_of(PATH))
        assert engine.defines(("path", (), 2))
        assert not engine.defines(("edge", (), 2))

    def test_non_nail_predicate_rejected(self):
        engine = NailEngine(Database(), rules_of(PATH))
        with pytest.raises(GlueRuntimeError):
            engine.materialize(Atom("edge"), 2)

    def test_empty_edb_gives_empty_idb(self):
        engine = NailEngine(Database(), rules_of(PATH))
        assert len(engine.materialize(Atom("path"), 2)) == 0

    def test_unsafe_rule_rejected_up_front(self):
        with pytest.raises(UnsafeRuleError):
            NailEngine(Database(), rules_of("p(X, Y) :- q(X)."))

    def test_naive_and_seminaive_agree(self):
        db = Database()
        db.facts("edge", [(1, 2), (2, 3), (3, 1), (3, 4)])
        semi = NailEngine(db, rules_of(PATH), strategy="seminaive")
        naive = NailEngine(db, rules_of(PATH), strategy="naive")
        assert (
            semi.materialize(Atom("path"), 2).sorted_rows()
            == naive.materialize(Atom("path"), 2).sorted_rows()
        )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            NailEngine(Database(), [], strategy="quantum")


class TestCaching:
    def test_recomputation_only_after_edb_change(self):
        db = Database()
        db.facts("edge", [(1, 2)])
        engine = NailEngine(db, rules_of(PATH))
        first = engine.materialize(Atom("path"), 2)
        again = engine.materialize(Atom("path"), 2)
        assert first is again  # cached relation object

    def test_edb_update_invalidates(self):
        # "The meaning is always: use the current value" (Section 2).
        db = Database()
        db.facts("edge", [(1, 2)])
        engine = NailEngine(db, rules_of(PATH))
        assert len(engine.materialize(Atom("path"), 2)) == 1
        db.fact("edge", 2, 3)
        assert len(engine.materialize(Atom("path"), 2)) == 3

    def test_edb_delete_invalidates(self):
        db = Database()
        db.facts("edge", [(1, 2), (2, 3)])
        engine = NailEngine(db, rules_of(PATH))
        assert len(engine.materialize(Atom("path"), 2)) == 3
        db.get("edge", 2).delete((Num(2), Num(3)))
        assert len(engine.materialize(Atom("path"), 2)) == 1


class TestStratifiedPrograms:
    WINS = """
    win(X) :- move(X, Y) & !win(Y).
    """

    def test_negation_across_strata(self):
        db = Database()
        db.facts("node", [(i,) for i in range(5)])
        db.facts("edge", [(0, 1), (1, 2)])
        rules = rules_of(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X) & edge(X, Y).
            unreach(X) :- node(X) & !reach(X).
            """
        )
        db.facts("start", [(0,)])
        engine = NailEngine(db, rules)
        unreach = engine.materialize(Atom("unreach"), 1)
        assert sorted(r[0].value for r in unreach.rows()) == [3, 4]

    def test_aggregation_in_lower_stratum(self):
        db = Database()
        db.facts("salary", [("ann", 10), ("bob", 20), ("cat", 30)])
        rules = rules_of(
            """
            avg_salary(A) :- salary(_, S) & A = mean(S).
            above_avg(N) :- salary(N, S) & avg_salary(A) & S > A.
            """
        )
        engine = NailEngine(db, rules)
        above = engine.materialize(Atom("above_avg"), 1)
        assert [r[0].name for r in above.rows()] == ["cat"]

    def test_group_by_in_rules(self):
        db = Database()
        db.facts("grade", [("cs1", 80), ("cs1", 90), ("cs2", 60)])
        rules = rules_of("avg(C, A) :- grade(C, G) & group_by(C) & A = mean(G).")
        engine = NailEngine(db, rules)
        rows = engine.materialize(Atom("avg"), 2).sorted_rows()
        assert [(r[0].name, r[1].value) for r in rows] == [("cs1", 85.0), ("cs2", 60)]


class TestFactsAndRulesMix:
    def test_edb_facts_union_with_rules(self):
        # A predicate may have stored facts *and* rules.
        db = Database()
        db.facts("path", [(100, 200)])
        db.facts("edge", [(1, 2)])
        engine = NailEngine(db, rules_of(PATH))
        rows = engine.materialize(Atom("path"), 2)
        assert (Num(100), Num(200)) in rows
        assert (Num(1), Num(2)) in rows

    def test_facts_feed_recursion(self):
        db = Database()
        db.facts("path", [(0, 1)])
        db.facts("edge", [(1, 2)])
        engine = NailEngine(db, rules_of(PATH))
        rows = engine.materialize(Atom("path"), 2)
        # The seeded fact path(0,1) extends through edge(1,2).
        assert (Num(0), Num(2)) in rows

    def test_source_facts_via_unit_clauses(self):
        db = Database()
        rules = rules_of(PATH + "edge(1, 2).\nedge(2, 3).")
        engine = NailEngine(db, rules)
        assert len(engine.materialize(Atom("path"), 2)) == 3


class TestHiLogFamilies:
    def test_family_materialization(self):
        db = Database()
        db.facts("attends", [("wilson", "cs99"), ("green", "cs99"), ("kim", "cs1")])
        engine = NailEngine(db, rules_of("students(ID)(N) :- attends(N, ID)."))
        cs99 = engine.materialize(Compound(Atom("students"), (Atom("cs99"),)), 1)
        assert len(cs99) == 2
        cs1 = engine.materialize(Compound(Atom("students"), (Atom("cs1"),)), 1)
        assert len(cs1) == 1

    def test_recursive_family(self):
        db = Database()
        db.facts("e", [("g1", 1, 2), ("g1", 2, 3), ("g2", 5, 6)])
        rules = rules_of(
            """
            tc(G)(X, Y) :- e(G, X, Y).
            tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z).
            """
        )
        engine = NailEngine(db, rules)
        g1 = engine.materialize(Compound(Atom("tc"), (Atom("g1"),)), 2)
        assert len(g1) == 3
        g2 = engine.materialize(Compound(Atom("tc"), (Atom("g2"),)), 2)
        assert len(g2) == 1

    def test_predicate_variable_body(self):
        db = Database()
        db.facts("colors", [("red",), ("blue",)])
        db.facts("listing", [("colors",)])
        rules = rules_of("all_members(S, X) :- listing(S) & S(X).")
        engine = NailEngine(db, rules)
        rows = engine.materialize(Atom("all_members"), 2)
        assert len(rows) == 2


class TestDemandEvaluation:
    """Demand-driven answers for rules that need caller bindings."""

    DEMAND_RULE = "shifted(X, Y) :- offset(D) & Y = X + D."

    def _engine(self):
        db = Database()
        db.facts("offset", [(10,), (20,)])
        return NailEngine(db, rules_of(self.DEMAND_RULE), check_safety=False), db

    def test_can_materialize_false_for_demand_rule(self):
        engine, _ = self._engine()
        assert not engine.can_materialize(Atom("shifted"), 2)

    def test_materialize_raises_with_guidance(self):
        from repro.errors import UnsafeRuleError

        engine, _ = self._engine()
        with pytest.raises(UnsafeRuleError, match="demand"):
            engine.materialize(Atom("shifted"), 2)

    def test_query_uses_demand_path(self):
        engine, _ = self._engine()
        rows = engine.query(Atom("shifted"), (Num(1), Var("Y")))
        assert sorted(r[1].value for r in rows) == [11, 21]

    def test_demand_cache_hit(self):
        engine, db = self._engine()
        engine.query(Atom("shifted"), (Num(1), Var("Y")))
        scans_after_first = db.counters.tuples_scanned
        engine.query(Atom("shifted"), (Num(1), Var("Y")))
        assert db.counters.tuples_scanned == scans_after_first  # cached

    def test_demand_cache_invalidated_by_edb_change(self):
        engine, db = self._engine()
        assert len(engine.query(Atom("shifted"), (Num(1), Var("Y")))) == 2
        db.fact("offset", 30)
        assert len(engine.query(Atom("shifted"), (Num(1), Var("Y")))) == 3

    def test_demand_with_negation_falls_back_to_full(self):
        # Negated IDB literals are outside the magic fragment; a demand
        # query on a *safe* program falls back to full evaluation.
        db = Database()
        db.facts("node", [(1,), (2,)])
        db.facts("edge", [(1, 2)])
        rules = rules_of(
            """
            covered(X) :- edge(X, _).
            lonely(X) :- node(X) & !covered(X).
            """
        )
        engine = NailEngine(db, rules, check_safety=False)
        rows = engine.demand(Atom("lonely"), 1, (Num(2),))
        assert [r[0].value for r in rows] == [2]


class TestIncrementalMaintenance:
    """Dependency-scoped invalidation and delta-driven repair."""

    NEG = PATH + "unreach(X, Y) :- node(X) & node(Y) & !path(X, Y).\n"

    def chain_db(self, n=6):
        db = Database()
        db.facts("edge", [(i, i + 1) for i in range(1, n)])
        return db

    def test_unrelated_write_keeps_cache(self):
        db = self.chain_db()
        db.fact("color", 1, 2)
        engine = NailEngine(db, rules_of(PATH))
        first = engine.materialize(Atom("path"), 2)
        db.fact("color", 2, 3)
        again = engine.materialize(Atom("path"), 2)
        assert first is again
        assert db.counters.idb_cache_hits >= 1
        assert db.counters.idb_invalidations == 0
        assert db.counters.idb_delta_repairs == 0

    def test_insert_repairs_instead_of_rebuilding(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH))
        first = engine.materialize(Atom("path"), 2)
        n0 = len(first)
        db.fact("edge", 0, 1)
        repaired = engine.materialize(Atom("path"), 2)
        assert repaired is first  # same Relation object, grown in place
        assert len(repaired) > n0
        assert db.counters.idb_delta_repairs == 1
        assert db.counters.idb_invalidations == 0
        fresh = NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2)
        assert set(repaired.rows()) == set(fresh.rows())

    def test_delete_falls_back_to_scoped_rebuild(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH))
        engine.materialize(Atom("path"), 2)
        db.get("edge", 2).delete((Num(3), Num(4)))
        repaired = engine.materialize(Atom("path"), 2)
        assert db.counters.idb_invalidations >= 1
        fresh = NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2)
        assert set(repaired.rows()) == set(fresh.rows())

    def test_growth_under_negation_rebuilds_dependent_stratum_only(self):
        db = self.chain_db(4)
        db.facts("node", [(i,) for i in range(1, 6)])
        engine = NailEngine(db, rules_of(self.NEG))
        engine.materialize(Atom("unreach"), 2)
        db.fact("edge", 4, 5)
        repaired = engine.materialize(Atom("unreach"), 2)
        # path (monotone) was repaired; unreach (negation on path) rebuilt.
        assert db.counters.idb_delta_repairs == 1
        assert db.counters.idb_invalidations == 1
        fresh = NailEngine(db, rules_of(self.NEG)).materialize(Atom("unreach"), 2)
        assert set(repaired.rows()) == set(fresh.rows())

    def test_naive_strategy_never_repairs(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH), strategy="naive")
        engine.materialize(Atom("path"), 2)
        db.fact("edge", 0, 1)
        repaired = engine.materialize(Atom("path"), 2)
        assert db.counters.idb_delta_repairs == 0
        assert db.counters.idb_invalidations >= 1
        fresh = NailEngine(db, rules_of(PATH), strategy="naive")
        assert set(repaired.rows()) == set(fresh.materialize(Atom("path"), 2).rows())

    def test_rollback_style_churn_is_no_change(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH))
        first = engine.materialize(Atom("path"), 2)
        db.fact("edge", 50, 51)
        db.get("edge", 2).delete((Num(50), Num(51)))
        again = engine.materialize(Atom("path"), 2)
        assert again is first
        assert db.counters.idb_delta_repairs == 0
        assert db.counters.idb_invalidations == 0

    def test_mixed_sequence_matches_from_scratch(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH))
        edge = db.get("edge", 2)
        for step in range(8):
            if step % 3 == 2:
                edge.delete(list(edge.rows())[step % len(edge)])
            else:
                db.fact("edge", step + 10, step + 11)
                db.fact("edge", step + 2, step + 10)
            got = set(engine.materialize(Atom("path"), 2).rows())
            want = set(
                NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2).rows()
            )
            assert got == want, f"diverged at step {step}"

    def test_demand_cache_survives_unrelated_write(self):
        db = self.chain_db()
        db.fact("color", 1, 2)
        rules = rules_of(
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Z) :- reach(X, Y) & edge(Y, Z).\n"
        )
        engine = NailEngine(db, rules)
        first = engine.demand(Atom("reach"), 2, (Num(1), Var("Y")))
        db.fact("color", 7, 8)
        scanned = db.counters.tuples_scanned
        hits = db.counters.idb_cache_hits
        again = engine.demand(Atom("reach"), 2, (Num(1), Var("Y")))
        assert set(again) == set(first)
        assert db.counters.tuples_scanned == scanned  # served from cache
        assert db.counters.idb_cache_hits == hits + 1

    def test_demand_cache_invalidated_by_relevant_write(self):
        db = self.chain_db(4)
        engine = NailEngine(db, rules_of(PATH))
        first = engine.demand(Atom("path"), 2, (Num(1), Var("Y")))
        db.fact("edge", 4, 5)
        again = engine.demand(Atom("path"), 2, (Num(1), Var("Y")))
        assert len(again) == len(first) + 1

    def test_demand_flat_residual_uses_indexed_answers(self):
        db = self.chain_db()
        engine = NailEngine(db, rules_of(PATH))
        all_rows = engine.demand(Atom("path"), 2, (Var("X"), Var("Y")))
        narrowed = engine.demand(Atom("path"), 2, (Num(1), Var("Y")))
        assert set(narrowed) < set(all_rows)
        assert all(r[0] == Num(1) for r in narrowed)

    def test_seed_facts_under_idb_name_repair(self):
        db = self.chain_db(4)
        engine = NailEngine(db, rules_of(PATH))
        engine.materialize(Atom("path"), 2)
        # A fact inserted directly under the derived predicate's own name.
        db.fact("path", 100, 200)
        repaired = engine.materialize(Atom("path"), 2)
        assert (Num(100), Num(200)) in repaired
        assert db.counters.idb_invalidations == 0
        fresh = NailEngine(db, rules_of(PATH)).materialize(Atom("path"), 2)
        assert set(repaired.rows()) == set(fresh.rows())

    def test_cache_info_epochs_move_only_for_touched_strata(self):
        db = self.chain_db(4)
        db.fact("color", 1, 1)
        engine = NailEngine(db, rules_of(PATH))
        engine.materialize(Atom("path"), 2)
        epoch0 = list(engine._stratum_epoch)
        db.fact("color", 2, 2)
        engine.materialize(Atom("path"), 2)
        assert engine._stratum_epoch == epoch0
        db.fact("edge", 7, 8)
        engine.materialize(Atom("path"), 2)
        assert engine._stratum_epoch != epoch0
