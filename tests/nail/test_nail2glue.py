"""Tests for the NAIL!-to-Glue compiler (the paper's headline pipeline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import GlueNailSystem
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine
from repro.nail.nail2glue import Nail2GlueError, compile_rules_to_glue
from repro.storage.database import Database
from repro.terms.term import Atom


def rules_of(text):
    return list(parse_program(text).items)


def run_generated(rules_text, facts):
    """Compile rules to Glue, run on a fresh DB, return {pred: rows}."""
    rules = rules_of(rules_text)
    result = compile_rules_to_glue(rules)
    system = GlueNailSystem()
    system.load(result.source)
    for name, rows in facts.items():
        system.facts(name, rows)
    system.call(result.driver_proc)
    return {
        (name, arity): system.relation_rows(name, arity)
        for name, arity in result.output_preds
    }, result


def run_native(rules_text, facts):
    db = Database()
    for name, rows in facts.items():
        db.facts(name, rows)
    engine = NailEngine(db, rules_of(rules_text))
    engine.materialize_all()
    return engine


PATH = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""


class TestGeneratedCode:
    def test_source_parses_and_compiles(self):
        result = compile_rules_to_glue(rules_of(PATH))
        # The generated text is ordinary Glue that reparses to the same AST.
        assert parse_program(result.source) == result.program
        system = GlueNailSystem()
        system.load(result.source)
        system.compile()

    def test_one_proc_per_stratum_plus_driver(self):
        rules = rules_of(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X) & edge(X, Y).
            unreach(X) :- node(X) & !reach(X).
            """
        )
        result = compile_rules_to_glue(rules)
        assert len(result.stratum_procs) == 2
        assert result.driver_proc == "nail_eval_all"

    def test_uses_repeat_until_unchanged(self):
        result = compile_rules_to_glue(rules_of(PATH))
        assert "repeat" in result.source
        assert "unchanged(path(_, _))" in result.source

    def test_seminaive_deltas_in_source(self):
        result = compile_rules_to_glue(rules_of(PATH))
        assert "delta__path__2" in result.source
        assert "!path(X, Z)" in result.source  # negation-as-difference

    def test_unsafe_rules_rejected(self):
        with pytest.raises(Nail2GlueError):
            compile_rules_to_glue(rules_of("tc(E, X, X)."))

    def test_predicate_variables_rejected(self):
        with pytest.raises(Nail2GlueError):
            compile_rules_to_glue(rules_of("p(X) :- s(S) & S(X)."))

    def test_compound_heads_rejected(self):
        with pytest.raises(Nail2GlueError):
            compile_rules_to_glue(rules_of("students(ID)(N) :- attends(N, ID)."))


class TestEquivalence:
    def test_transitive_closure(self):
        facts = {"edge": [(1, 2), (2, 3), (3, 4), (2, 1)]}
        generated, result = run_generated(PATH, facts)
        native = run_native(PATH, facts)
        assert generated[("path", 2)] == native.materialize(Atom("path"), 2).sorted_rows()

    def test_stratified_negation(self):
        source = """
        reach(X) :- start(X).
        reach(Y) :- reach(X) & edge(X, Y).
        unreach(X) :- node(X) & !reach(X).
        """
        facts = {
            "edge": [(0, 1), (1, 2)],
            "node": [(i,) for i in range(5)],
            "start": [(0,)],
        }
        generated, _ = run_generated(source, facts)
        native = run_native(source, facts)
        assert generated[("unreach", 1)] == native.materialize(Atom("unreach"), 1).sorted_rows()

    def test_mutual_recursion(self):
        source = """
        even(X) :- zero(X).
        even(Y) :- odd(X) & succ(X, Y).
        odd(Y) :- even(X) & succ(X, Y).
        """
        facts = {"zero": [(0,)], "succ": [(i, i + 1) for i in range(8)]}
        generated, _ = run_generated(source, facts)
        native = run_native(source, facts)
        assert generated[("even", 1)] == native.materialize(Atom("even"), 1).sorted_rows()
        assert generated[("odd", 1)] == native.materialize(Atom("odd"), 1).sorted_rows()

    def test_aggregation_rules(self):
        source = """
        avg(C, A) :- grade(C, G) & group_by(C) & A = mean(G).
        big(C) :- avg(C, A) & A >= 70.
        """
        facts = {"grade": [("cs1", 80), ("cs1", 90), ("cs2", 60)]}
        generated, _ = run_generated(source, facts)
        native = run_native(source, facts)
        assert generated[("big", 1)] == native.materialize(Atom("big"), 1).sorted_rows()

    def test_ground_facts_in_rules(self):
        source = PATH + "edge(7, 8).\nedge(8, 9)."
        generated, _ = run_generated(source, {})
        rows = [tuple(v.value for v in row) for row in generated[("path", 2)]]
        assert (7, 9) in rows

    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_property_generated_equals_native(self, edges):
        facts = {"edge": edges}
        generated, _ = run_generated(PATH, facts)
        native = run_native(PATH, facts)
        assert generated[("path", 2)] == native.materialize(Atom("path"), 2).sorted_rows()
