"""E3 -- early duplicate elimination at pipeline breaks (Section 9).

    "the Glue assignment statements that we have examined have produced a
    large number of duplicates, so removing duplicates early has always
    been advantageous.  However, in the worst case pipeline breakage
    [with duplicate elimination] is a loss."

Workload: a projection-heavy prefix multiplies each binding F^2 times, an
update subgoal breaks the pipeline, and a join runs *after* the break.
Deduplicating at the break shrinks everything downstream; on a
duplicate-free body the dedup pass finds nothing and is pure overhead
(visible in wall time, not in tuple touches).
"""

import pytest

from benchmarks._workloads import print_series, system_with

# pairs(X,_) twice projects away the payload: F^2 copies of each X reach
# the update (a break); the join with big/2 then runs per surviving copy.
SOURCE = "out(X, Y) := pairs(X, _) & pairs(X, _) & ++probe(X) & big(X, Y)."


def make_facts(keys, fanout, big_fanout=8):
    return {
        "pairs": [(k, i) for k in range(keys) for i in range(fanout)],
        "big": [(k, 1000 + j) for k in range(keys) for j in range(big_fanout)],
    }


def run(dedup, keys, fanout):
    system = system_with(
        SOURCE, make_facts(keys, fanout), strategy="pipelined", dedup_on_break=dedup
    )
    system.run_script()
    return system


@pytest.mark.parametrize("dedup", [True, False])
def test_duplicate_heavy(benchmark, dedup):
    system = benchmark(run, dedup, 20, 8)
    assert len(system.rows("out", 2)) == 20 * 8


def test_shape_dedup_wins_on_duplicates_loses_without(benchmark):
    rows = []
    # Duplicate-heavy: fanout 8 -> 64 copies per key at the break.
    heavy_on = run(True, 20, 8).counters.total_tuple_touches
    heavy_off = run(False, 20, 8).counters.total_tuple_touches
    # Duplicate-free: fanout 1 -> nothing to remove; dedup is overhead.
    lean_on_sys = run(True, 150, 1)
    lean_off_sys = run(False, 150, 1)
    rows.append(
        ("fanout=8 (dup-heavy)", heavy_on, heavy_off,
         "dedup" if heavy_on < heavy_off else "no-dedup")
    )
    rows.append(
        ("fanout=1 (dup-free)",
         lean_on_sys.counters.total_tuple_touches,
         lean_off_sys.counters.total_tuple_touches,
         "tie (dedup pays a pass for nothing)")
    )
    print_series(
        "E3: early duplicate elimination at breaks (total tuple touches)",
        ("workload", "dedup on", "dedup off", "winner"),
        rows,
    )
    # Who wins: dedup by a wide margin on the duplicate-heavy body...
    assert heavy_on * 2 < heavy_off, "dedup should win big on duplicates"
    # ...and exactly nothing to remove on the duplicate-free one.
    assert lean_on_sys.counters.dedup_removed == 0
    assert (
        lean_on_sys.counters.total_tuple_touches
        == lean_off_sys.counters.total_tuple_touches
    )
    # Results identical either way.
    assert (
        run(True, 20, 8).rows("out", 2)
        == run(False, 20, 8).rows("out", 2)
    )
    benchmark(run, True, 20, 8)
