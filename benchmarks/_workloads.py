"""Shared workload generators and reporting helpers for the benchmarks.

Every experiment (E1-E12, F1 in DESIGN.md) regenerates the qualitative
series behind one of the paper's Section 9-10 claims.  Absolute numbers
differ from the 1991 testbed (an IBM PC/RT running Sicstus Prolog); the
*shapes* -- who wins, by roughly what factor, where crossovers fall -- are
asserted inside the benchmarks so a regression flips them red.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.system import GlueNailSystem
from repro.storage.database import Database


def chain_edges(n: int) -> List[Tuple[int, int]]:
    return [(i, i + 1) for i in range(n)]


def random_graph(nodes: int, edges: int, seed: int = 7) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    out = set()
    while len(out) < edges:
        out.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(out)


def layered_chain_edges(levels: int, width: int) -> List[Tuple[int, int]]:
    """A chain of complete bipartite bundles: ``levels`` layers of ``width``
    nodes each, every node wired to every node of the next layer.  Closure
    over it is chain-shaped (bounded rounds) but each round moves
    ``width``-sized batches through every probe, which is the shape batch
    kernels amortize best."""
    out = []
    for lvl in range(levels):
        for a in range(width):
            for b in range(width):
                out.append((lvl * width + a, (lvl + 1) * width + b))
    return out


def skewed_star_facts(n: int, hubs: int) -> Dict[str, List[Tuple[int, int]]]:
    """A skewed two-relation star: ``n`` spokes on each side funneled
    through ``hubs`` shared hub values, so the join fans out ``(n/hubs)``
    ways per probe and the output is ``n * n / hubs`` rows."""
    return {
        "big_a": [(i, i % hubs) for i in range(n)],
        "big_b": [(j % hubs, j) for j in range(n)],
    }


def binary_tree_edges(depth: int) -> List[Tuple[int, int]]:
    out = []
    for node in range(2 ** depth - 1):
        out.append((node, 2 * node + 1))
        out.append((node, 2 * node + 2))
    return out


PATH_RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

STAR_RULES = """
q(X, Z) :- big_a(X, Y) & big_b(Y, Z).
"""

GLUE_TC = """
proc tc_e(X:Y)
rels connected(X, Y);
  connected(X, Y) := in(X) & e(X, Y).
  repeat
    connected(X, Y) += connected(X, Z) & e(Z, Y).
  until unchanged(connected(_, _));
  return(X:Y) := connected(X, Y).
end
"""


def system_with(source: str, facts: Dict[str, Sequence[tuple]], **kwargs) -> GlueNailSystem:
    system = GlueNailSystem(**kwargs)
    if source:
        system.load(source)
    for name, rows in facts.items():
        system.facts(name, rows)
    system.compile()
    system.reset_counters()
    return system


def db_with(facts: Dict[str, Sequence[tuple]]) -> Database:
    db = Database()
    for name, rows in facts.items():
        db.facts(name, rows)
    db.counters.reset()
    return db


def print_series(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print one experiment's table (the 'rows the paper reports')."""
    print(f"\n--- {title} ---")
    widths = [max(len(str(h)), 12) for h in header]
    print("  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(str(v).rjust(w) for v, w in zip(row, widths)))


def generate_program(statements: int, seed: int = 3) -> str:
    """A synthetic Glue/NAIL! program with ``statements`` statements, for
    the compile-speed experiment (E1).  Mixes statement shapes so the
    compiler exercises scans, joins, comparisons, aggregates and rules."""
    rng = random.Random(seed)
    lines = []
    shapes = [
        "out{i}(X, Y) := src{a}(X, W) & src{b}(W, Y).",
        "out{i}(X, Y) += src{a}(X, Y) & X != Y.",
        "out{i}(X, M) := src{a}(X, V) & group_by(X) & M = max(V).",
        "out{i}(X, D) := src{a}(X, V) & D = V * 2 + 1.",
        "out{i}(X) -= src{a}(X, _).",
    ]
    rules = [
        "derived{i}(X, Y) :- src{a}(X, Y) & !src{b}(Y, X).",
        "derived{i}(X, Z) :- src{a}(X, Y) & src{b}(Y, Z).",
    ]
    for i in range(statements):
        template = rng.choice(shapes + rules)
        lines.append(template.format(i=i, a=rng.randrange(5), b=rng.randrange(5)))
    return "\n".join(lines)
