"""E9 -- procedural Glue for speed-critical queries (Section 1).

    "Sometimes it might be useful to use Glue for a particularly
    speed-critical query, for which an especially efficient special
    purpose algorithm is known.  Such a practice is analogous to writing
    speed critical sections of a C program in assembler."

Workload: single-source reachability on a graph with many components.
The declarative NAIL! formulation materializes the full transitive
closure; the hand-written Glue procedure (the paper's tc_e) explores only
the source's component.  Expected shape: Glue does asymptotically less
work, and the gap grows with the amount of irrelevant graph.
"""

import pytest

from benchmarks._workloads import GLUE_TC, PATH_RULES, chain_edges, print_series, system_with


def make_edges(components, chain_len):
    edges = []
    for c in range(components):
        base = c * 10_000
        edges.extend((base + a, base + b) for a, b in chain_edges(chain_len))
    return edges


def run_nail(components, chain_len):
    edges = make_edges(components, chain_len)
    system = system_with(PATH_RULES, {"edge": edges})
    answers = system.query("path(0, Y)?")
    return system, answers


def run_glue(components, chain_len):
    edges = make_edges(components, chain_len)
    system = system_with(GLUE_TC, {"e": edges})
    answers = system.call("tc_e", [(0,)])
    return system, answers


@pytest.mark.parametrize("route", ["nail", "glue"])
def test_single_source_reachability(benchmark, route):
    fn = run_nail if route == "nail" else run_glue
    system, answers = benchmark(fn, 4, 20)
    assert len(answers) == 20


def test_shape_procedural_wins_on_point_queries(benchmark):
    rows = []
    gaps = []
    for components in (2, 8):
        nail_system, nail_answers = run_nail(components, 20)
        glue_system, glue_answers = run_glue(components, 20)
        assert {str(a[1]) for a in nail_answers} == {str(a[1]) for a in glue_answers}
        nail_cost = nail_system.counters.tuples_scanned
        glue_cost = glue_system.counters.tuples_scanned
        gaps.append(nail_cost / glue_cost)
        rows.append((components, len(glue_answers), glue_cost, nail_cost,
                     f"{nail_cost / glue_cost:.1f}x"))
    print_series(
        "E9: hand-written Glue tc_e vs declarative NAIL! (tuples scanned)",
        ("components", "answers", "glue proc", "nail full", "nail/glue"),
        rows,
    )
    assert gaps[0] > 1, "Glue should win even with little irrelevant graph"
    assert gaps[1] > gaps[0], "the gap should grow with irrelevant graph"
    benchmark(run_glue, 4, 20)
