#!/usr/bin/env python
"""Join-engine benchmark harness: measures the NAIL! evaluator and records
the trajectory across PRs.

Each workload materializes a recursive program bottom-up and reports rows,
wall-clock time, ``tuples_scanned`` (full-scan touches), index probe
counts, and fixpoint rounds.  Results are written to ``BENCH_joins.json``;
existing history entries in that file are preserved and the new run is
appended, so the file accumulates the before/after trajectory of evaluator
changes (see docs/PERFORMANCE.md).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick --check

``--quick`` shrinks the workloads for CI smoke runs.  ``--check``
cross-validates every workload three ways -- hash-join seminaive (the
engine under test) against naive evaluation and against the nested-loop
baseline -- and exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._workloads import (  # noqa: E402
    PATH_RULES,
    STAR_RULES,
    binary_tree_edges,
    chain_edges,
    db_with,
    layered_chain_edges,
    random_graph,
    skewed_star_facts,
)
from repro.lang.parser import parse_program  # noqa: E402
from repro.nail.engine import NailEngine, magic_query  # noqa: E402
from repro.storage.database import Database  # noqa: E402
from repro.terms.term import Atom, Compound, Num, Var  # noqa: E402

NEGATION_RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
node(X) :- edge(X, _).
node(Y) :- edge(_, Y).
unreachable(X, Y) :- node(X) & node(Y) & !path(X, Y).
"""

HILOG_RULES = """
tc(G)(X, Y) :- e(G, X, Y).
tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z).
"""


def rules_of(text):
    return list(parse_program(text).items)


def _runtime_info() -> dict:
    """Interpreter provenance for BENCH entries.

    Wall-clock numbers are not comparable across Python versions or
    across GIL vs free-threaded builds of the same version, so every
    results document records which interpreter produced it.
    """
    import os
    import platform
    import sysconfig

    is_gil = getattr(sys, "_is_gil_enabled", None)
    return {
        "python_version": platform.python_version(),
        "free_threaded_build": bool(sysconfig.get_config_var("Py_GIL_DISABLED")),
        "gil_enabled": bool(is_gil()) if is_gil is not None else True,
        "cores": os.cpu_count(),
    }



def _materialize(db, rules, pred, arity, strategy="seminaive", join_mode="hash"):
    """Materialize ``pred`` and capture cost deltas for exactly that run."""
    engine = NailEngine(db, rules, strategy=strategy, join_mode=join_mode)
    counters = db.counters
    counters.reset()
    t0 = time.perf_counter()
    relation = engine.materialize(pred, arity)
    wall = time.perf_counter() - t0
    return {
        "rows": len(relation),
        "wall_s": round(wall, 4),
        "tuples_scanned": counters.tuples_scanned,
        "index_lookups": counters.index_lookups,
        "index_probe_tuples": counters.index_probe_tuples,
        "rounds": engine.rounds_run,
    }, set(relation.rows())


def _tc_workload(edges, pred=None, arity=2, rules=None):
    rules = rules_of(rules or PATH_RULES)
    pred = pred or Atom("path")

    def run(strategy="seminaive", join_mode="hash"):
        db = db_with({"edge": edges})
        return _materialize(db, rules, pred, arity, strategy, join_mode)

    return run


def _hilog_workload(families=3, chain=30):
    facts = [
        (f"g{f}", f * 1000 + i, f * 1000 + i + 1)
        for f in range(families)
        for i in range(chain)
    ]
    rules = rules_of(HILOG_RULES)
    pred = Compound(Atom("tc"), (Atom("g0"),))

    def run(strategy="seminaive", join_mode="hash"):
        db = Database()
        db.facts("e", facts)
        return _materialize(db, rules, pred, 2, strategy, join_mode)

    return run


def _negation_workload(nodes, edges):
    graph = random_graph(nodes, edges)
    rules = rules_of(NEGATION_RULES)

    def run(strategy="seminaive", join_mode="hash"):
        db = db_with({"edge": graph})
        return _materialize(db, rules, Atom("unreachable"), 2, strategy, join_mode)

    return run


def _magic_workload(chain, source):
    edges = chain_edges(chain)
    rules = rules_of(PATH_RULES)

    def run(strategy="seminaive", join_mode="hash"):
        db = db_with({"edge": edges})
        counters = db.counters
        counters.reset()
        t0 = time.perf_counter()
        answers, engine = magic_query(
            db, rules, Atom("path"), (Num(source), Var("Y")),
            strategy=strategy, join_mode=join_mode,
        )
        wall = time.perf_counter() - t0
        return {
            "rows": len(answers),
            "wall_s": round(wall, 4),
            "tuples_scanned": counters.tuples_scanned,
            "index_lookups": counters.index_lookups,
            "index_probe_tuples": counters.index_probe_tuples,
            "rounds": engine.rounds_run,
        }, set(answers)

    return run


def run_mixed(quick: bool, check: bool):
    """The incremental-maintenance workload: a transactional mixed stream.

    One long-lived engine materializes the transitive closure of a chain,
    then the stream alternates single-fact EDB writes with closure
    re-queries.  Insert steps are timed twice -- the cached engine's
    incremental repair vs. a from-scratch materialization on a fresh
    engine -- and under ``--check`` every step (insert, delete, and a
    rolled-back transaction) is differentially validated against the
    from-scratch answer.
    """
    import statistics

    from repro.txn.manager import TransactionManager

    chain = 60 if quick else 120
    steps = 5 if quick else 15
    rules = rules_of(PATH_RULES)
    db = db_with({"edge": chain_edges(chain)})
    manager = TransactionManager(db)
    db.attach_journal(manager)
    engine = NailEngine(db, rules)
    pred = Atom("path")

    t0 = time.perf_counter()
    engine.materialize(pred, 2)
    cold_wall = time.perf_counter() - t0

    incremental, scratch = [], []
    divergences = []
    tip = chain
    for step in range(steps):
        op = ("insert", "insert", "delete", "insert", "rollback")[step % 5]
        if op == "insert":
            db.fact("edge", tip, tip + 1)
            tip += 1
        elif op == "delete":
            db.get("edge", 2).delete((Num(tip - 1), Num(tip)))
            tip -= 1
        else:  # a transaction that nets to nothing
            manager.begin()
            db.fact("edge", 9000 + step, 9001 + step)
            manager.rollback()
        t0 = time.perf_counter()
        relation = engine.materialize(pred, 2)
        dt_incremental = time.perf_counter() - t0
        fresh_engine = NailEngine(db, rules)
        t0 = time.perf_counter()
        fresh = fresh_engine.materialize(pred, 2)
        dt_scratch = time.perf_counter() - t0
        if op == "insert":
            incremental.append(dt_incremental)
            scratch.append(dt_scratch)
        if check and set(relation.rows()) != set(fresh.rows()):
            divergences.append(f"step {step} ({op})")

    counters = db.counters
    incr_median = statistics.median(incremental)
    scratch_median = statistics.median(scratch)
    stats = {
        "chain": chain,
        "steps": steps,
        "rows": len(engine.materialize(pred, 2)),
        "cold_wall_s": round(cold_wall, 5),
        "incremental_median_s": round(incr_median, 6),
        "scratch_median_s": round(scratch_median, 6),
        "speedup": round(scratch_median / max(incr_median, 1e-9), 1),
        "delta_repairs": counters.idb_delta_repairs,
        "delta_rounds": counters.idb_delta_rounds,
        "invalidations": counters.idb_invalidations,
        "cache_hits": counters.idb_cache_hits,
    }
    return stats, divergences


def main_mixed(args) -> int:
    stats, divergences = run_mixed(args.quick, args.check)
    name = f"mixed-chain-{stats['chain']}"
    print(
        f"{name:28s} rows={stats['rows']:<7d} cold={stats['cold_wall_s']:<8.5f} "
        f"incr={stats['incremental_median_s']:<9.6f} "
        f"scratch={stats['scratch_median_s']:<9.6f} speedup={stats['speedup']}x "
        f"repairs={stats['delta_repairs']} invalidations={stats['invalidations']}"
        + ("  check=" + ("DIVERGED" if divergences else "OK") if args.check else "")
    )
    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = {name: stats}
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": {name: stats}}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE incremental vs from-scratch at: {', '.join(divergences)}")
        return 1
    return 0


GLUE_SOURCE = """
joined(A, D) := r(A, B) & s(B, C) & t(C, D).
far(A, D) := joined(A, D) & !near(A, D).
latest(B, A) +=[B] r(A, B).
"""

GLUE_OUT_PREDS = (("joined", 2), ("far", 2), ("latest", 2))


def _glue_facts(n):
    return {
        "r": [(i, i % 40) for i in range(n)],
        "s": [(i % 40, (i * 7) % 40) for i in range(n)],
        "t": [((i * 7) % 40, i) for i in range(n)],
        "near": [(i, i) for i in range(n)],
    }


def _run_glue_once(n, join_mode):
    """One Glue VM run: returns (stats, result-set per output predicate).

    Both modes run with the adaptive index policy disabled so the numbers
    compare the *statement planner* against the true per-row nested
    baseline (the hash path builds its indexes explicitly; the reactive
    policy would otherwise partially rescue the nested path).
    """
    from repro.core.system import GlueNailSystem
    from repro.storage.adaptive import NeverIndexPolicy

    system = GlueNailSystem(
        db=Database(index_policy=NeverIndexPolicy()), join_mode=join_mode
    )
    system.load(GLUE_SOURCE)
    for name, rows in _glue_facts(n).items():
        system.facts(name, rows)
    system.compile()
    counters = system.db.counters
    counters.reset()
    t0 = time.perf_counter()
    system.run_script()
    wall = time.perf_counter() - t0
    results = {
        f"{name}/{arity}": set(system.db.relation(Atom(name), arity).rows())
        for name, arity in GLUE_OUT_PREDS
    }
    stats = {
        "rows": len(results["joined/2"]),
        "wall_s": round(wall, 4),
        "tuples_scanned": counters.tuples_scanned,
        "index_lookups": counters.index_lookups,
        "index_probe_tuples": counters.index_probe_tuples,
        "total_tuple_touches": counters.total_tuple_touches,
        "glue_hash_joins": counters.glue_hash_joins,
    }
    return stats, results


def main_glue(args) -> int:
    """The Glue VM workload: a join-heavy statement pipeline (3-way join,
    anti-join, keyed update) over growing EDBs, run twice -- planned hash
    joins vs the ``join_mode="nested"`` per-row baseline."""
    sizes = [100, 200] if args.quick else [100, 200, 400]
    results = {}
    divergences = []
    for n in sizes:
        name = f"glue-3way-{n}"
        hash_stats, hash_rows = _run_glue_once(n, "hash")
        nested_stats, nested_rows = _run_glue_once(n, "nested")
        touch_x = round(
            nested_stats["total_tuple_touches"]
            / max(hash_stats["total_tuple_touches"], 1),
            1,
        )
        wall_x = round(nested_stats["wall_s"] / max(hash_stats["wall_s"], 1e-9), 1)
        entry = {
            "edb_rows": n,
            "hash": hash_stats,
            "nested": nested_stats,
            "touch_improvement": touch_x,
            "wall_improvement": wall_x,
        }
        results[name] = entry
        line = (
            f"{name:28s} rows={hash_stats['rows']:<7d} "
            f"hash={hash_stats['wall_s']:<8.4f} nested={nested_stats['wall_s']:<8.4f} "
            f"touches {hash_stats['total_tuple_touches']} vs "
            f"{nested_stats['total_tuple_touches']} ({touch_x}x)"
        )
        if args.check:
            ok = hash_rows == nested_rows
            line += "  check=" + ("OK" if ok else "DIVERGED")
            if not ok:
                divergences.append(name)
        print(line)

    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_glue_joins.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = results
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": results}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE hash vs nested Glue execution on: {', '.join(divergences)}")
        return 1
    return 0


ORDERING_NAIL_SOURCE = "q(X, Z) :- big_a(X, Y) & big_b(Y, Z) & tiny(Z)."
ORDERING_GLUE_SOURCE = "out(X, Z) := big_a(X, Y) & big_b(Y, Z) & tiny(Z)."


def _ordering_facts(n, k):
    """A skewed star join written in the worst order: two big relations
    (fan-in k on the join column) first, the single-row selector last."""
    return {
        "big_a": [(i, i % k) for i in range(n)],
        "big_b": [(j % k, j) for j in range(n)],
        "tiny": [(7,)],
    }


def _run_ordering_once(engine, n, k, order_mode):
    """One run of the star join: returns (stats, result rows).

    ``engine`` picks the runtime: ``"nail"`` evaluates the rule through the
    NAIL! engine, ``"glue"`` the same body as a Glue statement through the
    VM.  Adaptive indexing is disabled so the numbers compare the body
    *order* alone -- both modes still join with planned hash joins.
    """
    from repro.core.system import GlueNailSystem
    from repro.storage.adaptive import NeverIndexPolicy

    source = ORDERING_NAIL_SOURCE if engine == "nail" else ORDERING_GLUE_SOURCE
    system = GlueNailSystem(
        db=Database(index_policy=NeverIndexPolicy()), order_mode=order_mode
    )
    system.load(source)
    for name, rows in _ordering_facts(n, k).items():
        system.facts(name, rows)
    system.compile()
    counters = system.db.counters
    counters.reset()
    t0 = time.perf_counter()
    if engine == "nail":
        rows = set(system.rows("q", 2))
    else:
        system.run_script()
        rows = set(system.db.relation(Atom("out"), 2).rows())
    wall = time.perf_counter() - t0
    stats = {
        "rows": len(rows),
        "wall_s": round(wall, 4),
        "tuples_scanned": counters.tuples_scanned,
        "index_probe_tuples": counters.index_probe_tuples,
        "index_build_tuples": counters.index_build_tuples,
        "total_tuple_touches": counters.total_tuple_touches,
    }
    return stats, rows


def main_ordering(args) -> int:
    """The join-ordering workload: the same skewed star join evaluated by
    both engines under ``order_mode="cost"`` and the ``"program"``
    baseline.  Program order materializes the big-by-big intermediate
    before the one-row selector prunes it; the cost planner starts from
    the selector and probes backwards through the join keys."""
    sizes = [(400, 20)] if args.quick else [(800, 20), (1500, 30)]
    results = {}
    divergences = []
    for n, k in sizes:
        for engine in ("nail", "glue"):
            name = f"ordering-{engine}-star-{n}"
            cost_stats, cost_rows = _run_ordering_once(engine, n, k, "cost")
            program_stats, program_rows = _run_ordering_once(engine, n, k, "program")
            touch_x = round(
                program_stats["total_tuple_touches"]
                / max(cost_stats["total_tuple_touches"], 1),
                1,
            )
            entry = {
                "edb_rows": n,
                "fan_in": k,
                "cost": cost_stats,
                "program": program_stats,
                "touch_improvement": touch_x,
            }
            results[name] = entry
            line = (
                f"{name:28s} rows={cost_stats['rows']:<7d} "
                f"cost={cost_stats['wall_s']:<8.4f} "
                f"program={program_stats['wall_s']:<8.4f} "
                f"touches {cost_stats['total_tuple_touches']} vs "
                f"{program_stats['total_tuple_touches']} ({touch_x}x)"
            )
            if args.check:
                ok = cost_rows == program_rows
                line += "  check=" + ("OK" if ok else "DIVERGED")
                if not ok:
                    divergences.append(name)
            print(line)

    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_ordering.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = results
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": results}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE cost vs program order on: {', '.join(divergences)}")
        return 1
    return 0


def run_subscriptions(quick: bool, check: bool):
    """The continuous-query workload: N subscribers over a mixed stream.

    One system maintains the transitive closure of a chain while a mixed
    insert/delete/rollback stream commits against it.  N subscribers watch
    ``path/2`` through the push pipeline (callback mode, so delivery time
    is measured on the committing thread); the baseline runs the same
    stream with N pollers that re-read the whole extension after every
    commit and diff it against their previous copy -- the poll-and-requery
    pattern push replaces.  Under ``--check`` one subscriber's replayed
    replica is compared against a from-scratch recomputation at the end.
    """
    import random as random_mod
    import statistics

    from repro.core.system import GlueNailSystem
    from repro.terms.term import mk

    chain = 40 if quick else 80
    steps = 60 if quick else 200
    subscribers = 4 if quick else 8
    rng = random_mod.Random(1991)

    def script(on_commit=None, subscriber_count=0, replica=None):
        """Run the mixed stream once; returns (system, wall seconds,
        per-commit latencies)."""
        system = GlueNailSystem()
        system.load(PATH_RULES)
        system.facts("edge", [(n, n + 1) for n in range(chain)])
        system.query("path(X, Y)?")  # warm the engine
        latencies = []
        for _ in range(subscriber_count):
            def deliver(note, fired=latencies):
                fired.append(time.perf_counter())
                if replica is not None and note.predicate == "path/2":
                    if note.op == "insert":
                        replica.update(note.rows)
                    elif note.op == "delete":
                        replica.difference_update(note.rows)
            system.subscribe("path", 2, callback=deliver)
        if replica is not None:
            replica.update(system.query("path(X, Y)?"))
        relation = system.db.relation(mk("edge"), 2)
        live = [(n, n + 1) for n in range(chain)]
        stream = rng.getstate()
        t_start = time.perf_counter()
        per_commit = []
        for step in range(steps):
            action = rng.random()
            t0 = time.perf_counter()
            if action < 0.55 or len(live) < 2:
                row = (rng.randrange(chain), rng.randrange(chain))
                system.facts("edge", [row])
                live.append(row)
            elif action < 0.85:
                row = live.pop(rng.randrange(len(live)))
                relation.delete(tuple(mk(v) for v in row))
            else:
                system.begin()
                system.facts("edge", [(chain + step, chain + step + 1)])
                system.rollback()
            if latencies:
                per_commit.append(latencies[-1] - t0)
            if on_commit is not None:
                on_commit(system)
        wall = time.perf_counter() - t_start
        rng.setstate(stream)  # both runs see the identical stream
        return system, wall, per_commit

    # Push mode: N callback subscribers, one (under --check) replaying.
    replica = set() if check else None
    push_system, push_wall, latencies = script(
        subscriber_count=subscribers, replica=replica
    )
    pushed = push_system.db.counters.notifications_pushed

    divergences = []
    if check:
        recomputed = set(push_system.query("path(X, Y)?"))
        if replica != recomputed:
            missing = len(recomputed - replica)
            extra = len(replica - recomputed)
            divergences.append(f"replay (missing {missing}, extra {extra})")

    # Poll baseline: N pollers re-read and diff the extension per commit.
    poll_copies = [set() for _ in range(subscribers)]

    def poll(system):
        # Each poller independently re-reads the whole extension and
        # diffs it against its previous copy -- the pattern push replaces.
        for copy in poll_copies:
            current = set(system.query("path(X, Y)?"))
            copy.symmetric_difference(current)  # the diff a poller computes
            copy.clear()
            copy.update(current)

    _, poll_wall, _ = script(on_commit=poll)

    stats = {
        "chain": chain,
        "steps": steps,
        "subscribers": subscribers,
        "rows": len(push_system.query("path(X, Y)?")),
        "notifications_pushed": pushed,
        "push_wall_s": round(push_wall, 5),
        "poll_wall_s": round(poll_wall, 5),
        "speedup_vs_poll": round(poll_wall / max(push_wall, 1e-9), 1),
        "latency_median_us": round(
            statistics.median(latencies) * 1e6, 1
        ) if latencies else None,
        "notifications_per_s": round(pushed / max(push_wall, 1e-9)),
        "resyncs": push_system.subscriptions.resyncs,
    }
    return stats, divergences


def main_subscriptions(args) -> int:
    stats, divergences = run_subscriptions(args.quick, args.check)
    name = f"subs-{stats['subscribers']}x-chain-{stats['chain']}"
    print(
        f"{name:28s} rows={stats['rows']:<7d} pushed={stats['notifications_pushed']:<7d} "
        f"push={stats['push_wall_s']:<8.5f} poll={stats['poll_wall_s']:<8.5f} "
        f"speedup={stats['speedup_vs_poll']}x "
        f"latency={stats['latency_median_us']}us"
        + ("  check=" + ("DIVERGED" if divergences else "OK") if args.check else "")
    )
    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_subscriptions.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = {name: stats}
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": {name: stats}}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE push replay vs recomputation: {', '.join(divergences)}")
        return 1
    return 0


def _run_closure_once(edges, workers):
    """One closure materialization through the system facade.

    ``workers > 1`` turns on ``parallel_mode="partition"``; the stats also
    carry the full counter snapshot so the differential check can assert
    counter-exactness, not just result equality.
    """
    from repro.core.system import GlueNailSystem
    from repro.storage.stats import COUNTER_FIELDS

    if workers > 1:
        system = GlueNailSystem(parallel_mode="partition", workers=workers)
    else:
        system = GlueNailSystem()
    system.load(PATH_RULES)
    system.facts("edge", edges)
    system.compile()
    system.reset_counters()
    t0 = time.perf_counter()
    rows = set(system.rows("path", 2).rows)
    wall = time.perf_counter() - t0
    counters = dict(zip(COUNTER_FIELDS, system.db.counters.as_tuple()))
    stats = {
        "rows": len(rows),
        "wall_s": round(wall, 4),
        "tuples_scanned": counters["tuples_scanned"],
        "index_lookups": counters["index_lookups"],
        "index_probe_tuples": counters["index_probe_tuples"],
        "parallel_joins": counters["parallel_joins"],
        "parallel_tasks": counters["parallel_tasks"],
    }
    core = {k: v for k, v in counters.items() if not k.startswith("parallel_")}
    system.close()
    return stats, rows, core


def main_parallel(args) -> int:
    """The partition-parallel workload: the transitive-closure fixpoints
    evaluated serially and across worker pools of increasing size.

    Numbers are honest about the runtime: the pool is thread-based, so on
    a box where ``os.cpu_count()`` is 1 (or under the GIL generally) the
    interesting columns are the *overhead* of partitioning and the
    ``--check`` differential -- a parallel run must produce the identical
    row set and identical non-``parallel_*`` counters as the serial run.
    """
    import os

    worker_counts = [int(w) for w in args.workers.split(",")]
    if args.quick:
        sizes = {"par-chain-150": chain_edges(150),
                 "par-random-50n-200e": random_graph(50, 200)}
    else:
        sizes = {"par-chain-300": chain_edges(300),
                 "par-random-80n-400e": random_graph(80, 400)}
    results = {}
    divergences = []
    for name, edges in sizes.items():
        serial_stats, serial_rows, serial_core = _run_closure_once(edges, 1)
        entry = {"edges": len(edges), **_runtime_info(), "workers": {}}
        entry["workers"]["1"] = serial_stats
        line = f"{name:28s} rows={serial_stats['rows']:<7d} serial={serial_stats['wall_s']:<8.4f}"
        for workers in worker_counts:
            if workers <= 1:
                continue
            par_stats, par_rows, par_core = _run_closure_once(edges, workers)
            par_stats["speedup_vs_serial"] = round(
                serial_stats["wall_s"] / max(par_stats["wall_s"], 1e-9), 2
            )
            entry["workers"][str(workers)] = par_stats
            line += f" w{workers}={par_stats['wall_s']:<8.4f}"
            if args.check:
                ok = par_rows == serial_rows and par_core == serial_core
                if not ok:
                    divergences.append(f"{name} (workers={workers})")
        if args.check:
            line += "  check=" + ("DIVERGED" if any(
                d.startswith(name) for d in divergences) else "OK")
        results[name] = entry
        print(line)

    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["cores"] = os.cpu_count()
    doc["workloads"] = results
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": results}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE parallel vs serial on: {', '.join(divergences)}")
        return 1
    return 0


def _run_batchmode_once(source, facts, goal, arity, batch_mode, reps=2):
    """Materializations through the system facade under one batch mode.

    Times ``engine.materialize`` only: row fetching and sorting are shared
    presentation costs identical in both modes, and folding them into the
    timer flattens the kernel-speedup ratio the workload exists to
    measure.  Best wall of ``reps`` fresh runs (each run is a fresh
    system, so rows and counters are deterministic across reps).  The full
    counter snapshot rides along so ``--check`` can assert
    counter-exactness, not just result equality.
    """
    from repro.core.system import GlueNailSystem
    from repro.storage.stats import COUNTER_FIELDS

    best_wall = None
    for _ in range(reps):
        system = GlueNailSystem(batch_mode=batch_mode)
        system.load(source)
        for name, rows in facts.items():
            system.facts(name, rows)
        system.compile()
        system.reset_counters()
        t0 = time.perf_counter()
        relation = system.engine.materialize(Atom(goal), arity)
        wall = time.perf_counter() - t0
        rows = set(relation.rows())
        counters = dict(zip(COUNTER_FIELDS, system.db.counters.as_tuple()))
        system.close()
        if best_wall is None or wall < best_wall:
            best_wall = wall
    stats = {
        "rows": len(rows),
        "wall_s": round(best_wall, 4),
        "tuples_scanned": counters["tuples_scanned"],
        "index_lookups": counters["index_lookups"],
        "index_probe_tuples": counters["index_probe_tuples"],
    }
    return stats, rows, counters


def _kernel_microbench(quick: bool) -> dict:
    """Per-tuple overhead of the join hot path, kernels vs row engine.

    Evaluates the skewed-star body directly through
    :func:`~repro.nail.bodyeval.eval_rule_body_batch` -- no head
    materialization, no fixpoint bookkeeping -- so the wall clock divided
    by tuple touches (scans + lookups + probed tuples, identical across
    modes by the counter-parity contract) is the interpreter overhead per
    tuple of actual join work.  Best of three runs per mode.
    """
    from repro.col import Batch
    from repro.nail.bodyeval import eval_rule_body_batch
    from repro.nail.rules import prepare_rules

    n, hubs = (1200, 20) if quick else (4000, 40)
    db = Database()
    facts = skewed_star_facts(n, hubs)
    for name, rows in facts.items():
        db.declare(name, 2).insert_many(
            tuple(Num(v) for v in row) for row in rows
        )
    info = prepare_rules([parse_program(STAR_RULES).items[0]])[0]

    def rows_fn(pred, arity):
        return db.get(pred.name, arity)

    touch_keys = ("tuples_scanned", "index_lookups", "index_probe_tuples")

    def best_of(mode, reps=3):
        best = None
        for _ in range(reps):
            db.counters.reset()
            t0 = time.perf_counter()
            out = eval_rule_body_batch(info, rows_fn, batch_mode=mode)
            wall = time.perf_counter() - t0
            length = out.length if isinstance(out, Batch) else len(out)
            touches = sum(getattr(db.counters, k) for k in touch_keys)
            if best is None or wall < best[0]:
                best = (wall, length, touches)
        return best

    row_wall, row_n, row_touches = best_of("row")
    col_wall, col_n, col_touches = best_of("columnar")
    assert row_n == col_n and row_touches == col_touches
    return {
        "workload": f"star-{n}x{hubs}-body",
        "bindings": row_n,
        "tuple_touches": row_touches,
        "row_wall_s": round(row_wall, 4),
        "columnar_wall_s": round(col_wall, 4),
        "row_ns_per_tuple": round(row_wall / row_touches * 1e9, 1),
        "columnar_ns_per_tuple": round(col_wall / col_touches * 1e9, 1),
        "overhead_reduction": round(row_wall / max(col_wall, 1e-9), 2),
    }


def main_columnar(args) -> int:
    """The columnar batch-execution workload: batch-friendly closures and
    joins under ``batch_mode="columnar"`` vs the row engine, plus the
    kernel microbenchmark isolating per-tuple interpreter overhead.

    ``--check`` asserts the differential contract: identical row sets AND
    identical values on every counter field between the two modes.
    """
    # The star head projects the join down to its spokes: the 100-way hub
    # fan-out is full join work for both modes, but the output dedup runs
    # over id arrays in the columnar engine and over binding dicts in the
    # row engine.  (A head keeping all 400k bindings is insert-bound --
    # inserts are shared storage cost -- and measures storage, not the
    # kernels; see docs/PERFORMANCE.md.)
    star_proj = "q(X) :- big_a(X, Y) & big_b(Y, Z).\n"
    if args.quick:
        macro = {
            "chain-closure-12x6": (PATH_RULES,
                                   {"edge": layered_chain_edges(12, 6)},
                                   "path", 2),
            "star-skewed-800x16": (star_proj, skewed_star_facts(800, 16),
                                   "q", 1),
        }
    else:
        macro = {
            "chain-closure-30x10": (PATH_RULES,
                                    {"edge": layered_chain_edges(30, 10)},
                                    "path", 2),
            "star-skewed-4000x40": (star_proj, skewed_star_facts(4000, 40),
                                    "q", 1),
        }
    results = {}
    divergences = []
    for name, (source, facts, goal, arity) in macro.items():
        row_stats, row_rows, row_counters = _run_batchmode_once(
            source, facts, goal, arity, "row"
        )
        col_stats, col_rows, col_counters = _run_batchmode_once(
            source, facts, goal, arity, "columnar"
        )
        entry = {
            "rows": col_stats["rows"],
            "row_wall_s": row_stats["wall_s"],
            "columnar_wall_s": col_stats["wall_s"],
            "speedup": round(
                row_stats["wall_s"] / max(col_stats["wall_s"], 1e-9), 2
            ),
            "tuples_scanned": col_stats["tuples_scanned"],
            "index_lookups": col_stats["index_lookups"],
            "index_probe_tuples": col_stats["index_probe_tuples"],
        }
        line = (
            f"{name:28s} rows={entry['rows']:<7d} row={entry['row_wall_s']:<8.4f} "
            f"col={entry['columnar_wall_s']:<8.4f} speedup={entry['speedup']:.2f}x"
        )
        if args.check:
            ok = row_rows == col_rows and row_counters == col_counters
            line += "  check=" + ("OK" if ok else "DIVERGED")
            if not ok:
                divergences.append(name)
        results[name] = entry
        print(line)

    micro = _kernel_microbench(args.quick)
    print(
        f"{micro['workload']:28s} bindings={micro['bindings']:<7d} "
        f"row={micro['row_ns_per_tuple']}ns/tuple "
        f"col={micro['columnar_ns_per_tuple']}ns/tuple "
        f"reduction={micro['overhead_reduction']:.2f}x"
    )

    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_columnar.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = results
    doc["kernel_microbench"] = micro
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": results,
             "kernel_microbench": micro}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE columnar vs row on: {', '.join(divergences)}")
        return 1
    return 0


def workloads(quick: bool):
    if quick:
        return {
            "chain-60": _tc_workload(chain_edges(60)),
            "tree-d6": _tc_workload(binary_tree_edges(6)),
            "random-40n-80e": _tc_workload(random_graph(40, 80)),
            "negation-20n-50e": _negation_workload(20, 50),
            "hilog-3x20": _hilog_workload(3, 20),
            "magic-chain-100": _magic_workload(100, 49),
            "chain-60-naive-baseline": _tc_workload(chain_edges(60)),
        }
    return {
        "chain-60": _tc_workload(chain_edges(60)),
        "chain-120": _tc_workload(chain_edges(120)),
        "tree-d7": _tc_workload(binary_tree_edges(7)),
        "random-40n-80e": _tc_workload(random_graph(40, 80)),
        "random-60n-180e": _tc_workload(random_graph(60, 180)),
        "negation-30n-90e": _negation_workload(30, 90),
        "hilog-3x30": _hilog_workload(3, 30),
        "magic-chain-200": _magic_workload(200, 99),
        "chain-60-naive-baseline": _tc_workload(chain_edges(60)),
    }


def _percentile(values, q):
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def _run_mvcc_mode(mvcc, txns, rows_per_txn, readers, hold_s):
    """One write-heavy mix against a live server: a writer holding chunky
    transactions while reader sessions time every ``rows`` request.

    Returns per-request read latencies, the observed row counts (for the
    consistency check: with one writer committing whole batches, every
    read must land on a committed multiple of ``rows_per_txn``), the final
    extension, and the server's MVCC stats.
    """
    import threading

    from repro.server.server import GlueNailServer

    batches_per_txn = 3
    chunk = rows_per_txn // batches_per_txn
    with GlueNailServer(port=0, mvcc=mvcc).start() as server:
        stop = threading.Event()
        latencies = []
        observed = []
        failures = []

        def read_loop():
            try:
                session = server._new_session()
                local_lat, local_obs = [], []
                while not stop.is_set():
                    t0 = time.perf_counter()
                    reply = session.dispatch(
                        {"op": "rows", "name": "edge", "arity": 2}
                    )
                    local_lat.append(time.perf_counter() - t0)
                    local_obs.append(len(reply["rows"]))
                    # Paced arrivals: without this, a reader stalled
                    # behind the write lock stops sampling while fast
                    # between-window reads pile up -- coordinated
                    # omission that hides the stall from the p99.
                    time.sleep(0.001)
                latencies.extend(local_lat)
                observed.extend(local_obs)
            except Exception as exc:  # noqa: BLE001 - surface, don't hang
                failures.append(repr(exc))

        threads = [threading.Thread(target=read_loop) for _ in range(readers)]
        for t in threads:
            t.start()
        writer = server._new_session()
        try:
            for txn in range(txns):
                writer.dispatch({"op": "begin"})
                base = txn * rows_per_txn
                for b in range(batches_per_txn):
                    rows = [
                        [base + b * chunk + j, j] for j in range(chunk)
                    ]
                    writer.dispatch({"op": "facts", "name": "edge", "rows": rows})
                    # The write window the paper's readers stall behind:
                    # the transaction stays open (write lock held) while
                    # the writer prepares its next batch.
                    time.sleep(hold_s)
                writer.dispatch({"op": "commit"})
                time.sleep(0.005)  # a between-transactions breather
        finally:
            stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not failures, failures
        final = sorted(
            tuple(v) for v in writer.dispatch(
                {"op": "rows", "name": "edge", "arity": 2}
            )["values"]
        )
        mvcc_stats = server.mvcc_store.stats() if server.mvcc_store else {}
    return latencies, observed, final, mvcc_stats


def run_mvcc(quick, check):
    txns = 4 if quick else 12
    rows_per_txn = 90
    readers = 2 if quick else 4
    hold_s = 0.02 if quick else 0.03

    results = {}
    finals = {}
    divergences = []
    for mode, mvcc in (("lock", False), ("snapshot", True)):
        latencies, observed, final, mvcc_stats = _run_mvcc_mode(
            mvcc, txns, rows_per_txn, readers, hold_s
        )
        finals[mode] = final
        if check:
            torn = [n for n in observed if n % rows_per_txn != 0]
            if torn:
                divergences.append(
                    f"{mode}: {len(torn)} reads saw uncommitted rows"
                )
        results[mode] = {
            "reads": len(latencies),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "max_ms": round(max(latencies) * 1e3, 3),
        }
        if mvcc_stats:
            results[mode]["snapshot_publishes"] = mvcc_stats["publishes"]
    if check and finals["lock"] != finals["snapshot"]:
        divergences.append("final extensions differ between modes")

    stats = {
        "txns": txns,
        "rows_per_txn": rows_per_txn,
        "readers": readers,
        "write_hold_s": hold_s,
        "rows": len(finals["snapshot"]),
        "lock": results["lock"],
        "snapshot": results["snapshot"],
        "p99_speedup": round(
            results["lock"]["p99_ms"] / max(results["snapshot"]["p99_ms"], 1e-6),
            1,
        ),
    }
    return stats, divergences


def main_mvcc(args) -> int:
    stats, divergences = run_mvcc(args.quick, args.check)
    name = f"mvcc-readers-{stats['readers']}x"
    print(
        f"{name:28s} rows={stats['rows']:<7d} "
        f"lock_p99={stats['lock']['p99_ms']:<9.3f} "
        f"snap_p99={stats['snapshot']['p99_ms']:<9.3f} "
        f"speedup={stats['p99_speedup']}x"
        + ("  check=" + ("DIVERGED" if divergences else "OK") if args.check else "")
    )
    out_path = Path(
        args.out
        if args.out
        else Path(__file__).resolve().parent.parent / "BENCH_mvcc.json"
    )
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = {name: stats}
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": {name: stats}}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    if divergences:
        print(f"DIVERGENCE lock vs snapshot reads: {', '.join(divergences)}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized workloads")
    parser.add_argument(
        "--check",
        action="store_true",
        help="cross-validate hash-join vs naive vs nested-loop results; "
        "exit nonzero on divergence",
    )
    parser.add_argument(
        "--mixed",
        action="store_true",
        help="run the incremental-maintenance workload instead (single-fact "
        "writes alternating with closure queries; incremental repair vs "
        "from-scratch); writes BENCH_incremental.json by default",
    )
    parser.add_argument(
        "--glue",
        action="store_true",
        help="run the Glue VM workload instead (join-heavy statement "
        "pipeline, planned hash joins vs the nested per-row baseline); "
        "writes BENCH_glue_joins.json by default; --check cross-validates "
        "the two modes",
    )
    parser.add_argument(
        "--ordering",
        action="store_true",
        help="run the join-ordering workload instead (skewed star join, "
        "cost-based order vs the program-order baseline, through both "
        "engines); writes BENCH_ordering.json by default; --check "
        "cross-validates the two modes",
    )
    parser.add_argument(
        "--subscriptions",
        action="store_true",
        help="run the continuous-query workload instead (N push subscribers "
        "over a mixed insert/delete stream vs the poll-and-requery "
        "baseline); writes BENCH_subscriptions.json by default; --check "
        "verifies a subscriber's replayed deltas against recomputation",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run the partition-parallel workload instead (closure "
        "fixpoints serial vs across worker pools); writes "
        "BENCH_parallel.json by default; --check asserts parallel == "
        "serial on rows and all non-parallel_* counters",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="run the columnar batch-execution workload instead "
        "(batch-friendly chain closure and skewed star under the columnar "
        "kernels vs the row engine, plus the per-tuple kernel "
        "microbenchmark); writes BENCH_columnar.json by default; --check "
        "asserts identical rows and identical counters across modes",
    )
    parser.add_argument(
        "--mvcc",
        action="store_true",
        help="run the snapshot-read workload instead (reader sessions "
        "timing requests while a writer holds chunky transactions; MVCC "
        "snapshot pins vs the read/write-lock baseline); writes "
        "BENCH_mvcc.json by default; --check asserts readers only ever "
        "saw committed states and both modes converge to identical rows",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated worker counts for --parallel (default 1,2,4,8)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (history in an existing file is preserved); "
        "default BENCH_joins.json, BENCH_incremental.json with --mixed, "
        "BENCH_glue_joins.json with --glue, BENCH_ordering.json with "
        "--ordering, or BENCH_subscriptions.json with --subscriptions",
    )
    parser.add_argument(
        "--label", default=None, help="history label for this run (default: none, "
        "run is not appended to history)"
    )
    args = parser.parse_args(argv)

    if args.mixed:
        return main_mixed(args)
    if args.glue:
        return main_glue(args)
    if args.ordering:
        return main_ordering(args)
    if args.subscriptions:
        return main_subscriptions(args)
    if args.parallel:
        return main_parallel(args)
    if args.columnar:
        return main_columnar(args)
    if args.mvcc:
        return main_mvcc(args)
    if args.out is None:
        args.out = str(Path(__file__).resolve().parent.parent / "BENCH_joins.json")

    results = {}
    divergences = []
    for name, run in workloads(args.quick).items():
        if name.endswith("-naive-baseline"):
            stats, rows = run(strategy="naive")
        else:
            stats, rows = run()
        results[name] = stats
        line = (
            f"{name:28s} rows={stats['rows']:<7d} wall={stats['wall_s']:<8.4f} "
            f"scanned={stats['tuples_scanned']:<9d} probes={stats['index_lookups']:<7d} "
            f"rounds={stats['rounds']}"
        )
        if args.check and not name.endswith("-naive-baseline"):
            _, naive_rows = run(strategy="naive")
            _, nested_rows = run(join_mode="nested")
            ok = rows == naive_rows == nested_rows
            line += "  check=" + ("OK" if ok else "DIVERGED")
            if not ok:
                divergences.append(name)
        print(line)

    out_path = Path(args.out)
    doc = {"workloads": {}, "history": []}
    if out_path.exists():
        try:
            doc = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            pass
    doc["quick"] = args.quick
    doc.update(_runtime_info())
    doc["workloads"] = results
    if args.label:
        doc.setdefault("history", []).append(
            {"label": args.label, "quick": args.quick, "workloads": results}
        )
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    if divergences:
        print(f"DIVERGENCE between evaluators on: {', '.join(divergences)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
