"""F1 -- Figure 1: the micro-CAD ``select`` module end to end.

The paper's one figure with executable content.  The bench compiles and
runs the whole selection interaction (mouse pick -> candidate ranking ->
confirm loop) against growing element databases, confirming the module
works at scale and measuring the full-pipeline cost (parse once, then
repeated procedure calls).
"""

import io

import pytest

from benchmarks._workloads import print_series
from repro.core.system import GlueNailSystem
from repro.terms.term import mk

CAD_MODULE = """
module example;
export select(:Key);
from windows import event(:Type, Data);
from graphics import highlight(Key:), dehighlight(Key:);
edb element(Key, Origin, P1, P2, DS), tolerance(T);

proc select(:Key)
rels possible(Key, D), try(Key), confirmed(Key);
  possible(Key, D) :=
    event(mouse, p(X, Y)) & graphic_search(p(X, Y), Key, D).
  repeat
    try(Key) :=
      possible(Key, D) & D = min(D) & It = arbitrary(Key) &
      --possible(It, D).
    confirmed(K) :=
      try(K) & highlight(K) & write('This one?') &
      event(keyboard, KeyBuffer) & dehighlight(K) & KeyBuffer = 'y'.
  until { confirmed(K) | empty(possible(K, _)) };
  return(:Key) := confirmed(Key).
end

graphic_search(p(X, Y), Key, Dist) :-
  element(Key, _, p(Xmin, Ymin), _, _) & tolerance(T) &
  Dist = (X - Xmin) * (X - Xmin) + (Y - Ymin) * (Y - Ymin) &
  Dist < T.
end
"""


def build_system(elements, rejections):
    events = [("mouse", ("p", 50, 50))]
    events += [("keyboard", "n")] * rejections
    events += [("keyboard", "y")] * (elements + 1)
    queue = list(events)

    def event_fn(ctx, rows):
        if not queue:
            return []
        kind, data = queue.pop(0)
        return [(mk(kind), mk(data))]

    def identity(ctx, rows):
        return rows

    system = GlueNailSystem(out=io.StringIO())
    system.register_foreign("windows", "event", 2, 0, event_fn)
    system.register_foreign("graphics", "highlight", 1, 1, identity)
    system.register_foreign("graphics", "dehighlight", 1, 1, identity)
    system.load(CAD_MODULE)
    # Elements spiral away from the click point; about half are within
    # tolerance.
    system.facts(
        "element",
        [
            (f"el{i}", "layer0", ("p", 50 + i, 50 + (i * 3) % 7), ("p", 0, 0), "ds")
            for i in range(elements)
        ],
    )
    system.facts("tolerance", [(int((elements / 2) ** 2) + 1,)])
    system.compile()
    return system


def run_selection(elements, rejections=2):
    system = build_system(elements, rejections)
    system.reset_counters()
    result = system.call("select")
    return system, result


@pytest.mark.parametrize("elements", [10, 100])
def test_select_pipeline(benchmark, elements):
    system, result = benchmark(run_selection, elements)
    assert len(result) == 1


def test_shape_interaction_scales(benchmark):
    rows = []
    for elements in (10, 50, 200):
        system, result = run_selection(elements, rejections=2)
        assert len(result) == 1  # third-nearest accepted after 2 rejections
        rows.append(
            (
                elements,
                str(result[0][0]),
                system.counters.proc_calls,
                system.counters.tuples_scanned,
                system.counters.pipeline_breaks,
            )
        )
    print_series(
        "F1: Figure 1 CAD select (2 rejections then accept)",
        ("elements", "picked", "proc calls", "tuples scanned", "breaks"),
        rows,
    )
    # Rejecting more candidates does more rounds of the repeat loop.
    fewer = run_selection(50, rejections=0)[0].counters.tuples_scanned
    more = run_selection(50, rejections=10)[0].counters.tuples_scanned
    assert more > fewer
    benchmark(run_selection, 50)
