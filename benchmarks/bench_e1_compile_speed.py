"""E1 -- compiler throughput (paper Section 9).

    "The system compiles about two statements per Mips-second in compiled
    Sicstus Prolog on an IBM PC/RT."

The reproducible content is that compilation cost is linear in program
size, i.e. statements-per-second is roughly flat as programs grow.  The
bench reports the measured statements/second (this host's analogue of the
Mips-second figure) and asserts throughput does not collapse with size.
"""

import time

import pytest

from benchmarks._workloads import generate_program, print_series
from repro.lang.parser import parse_program
from repro.vm.compiler import ProgramCompiler


def _compile(source: str):
    program = parse_program(source)
    compiled = ProgramCompiler().compile_program(program)
    return program, compiled


@pytest.mark.parametrize("statements", [10, 50, 200])
def test_compile_throughput(benchmark, statements):
    source = generate_program(statements)
    program, compiled = benchmark(_compile, source)
    assert compiled.statement_count == program.statement_count()


def test_throughput_stable_across_sizes(benchmark):
    """The paper-shape check: statements/second flat (linear compile)."""
    sizes = [10, 40, 160, 640]
    rows = []
    throughput = {}
    for size in sizes:
        source = generate_program(size)
        start = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            _compile(source)
        elapsed = (time.perf_counter() - start) / repeats
        throughput[size] = size / elapsed
        rows.append((size, f"{elapsed * 1000:.1f} ms", f"{throughput[size]:.0f} stmt/s"))
    print_series(
        "E1: compile speed (paper: ~2 statements per Mips-second, 1991)",
        ("statements", "compile time", "throughput"),
        rows,
    )
    # Linearity: throughput at the largest size within 4x of the smallest
    # (allows constant setup overhead to favour large programs).
    ratio = throughput[sizes[0]] / throughput[sizes[-1]]
    assert 0.25 < ratio < 4.0, f"compile cost is not linear: ratio {ratio:.2f}"
    benchmark(_compile, generate_program(100))
