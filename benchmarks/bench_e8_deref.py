"""E8 -- compile-time predicate dereferencing vs. run-time dispatch
(Section 9).

    "A naive system would wait until X becomes bound at run time, and then
    check it against the four possible cases.  The current compiler will
    have already eliminated those choices which were seen to be impossible
    at compile time.  Procedure calls are expensive, so it is very
    important to identify at compile time those subgoals which cannot
    possibly be procedure calls."

Expected shape: with compile-time dereferencing the predicate-variable
subgoal streams through the pipeline (no break, no per-row class check);
the run-time-dispatch baseline breaks the pipeline and re-dispatches per
row, and its penalty grows with the number of rows flowing through.
"""

import pytest

from benchmarks._workloads import print_series
from repro.baselines.runtime_dispatch import make_runtime_dispatch_system
from repro.core.system import GlueNailSystem
from repro.terms.term import Atom

SOURCE = """
proc members(S:X)
  return(S:X) := in(S) & S(X).
end
proc fanout(:Name, X)
  return(:Name, X) := listing(Name) & Name(X).
end
"""


def build(deref: bool, rows: int):
    if deref:
        system = GlueNailSystem()
    else:
        system = make_runtime_dispatch_system()
    system.load(SOURCE)
    sets = ["reds", "blues", "greens", "cyans"]
    system.facts("listing", [(s,) for s in sets])
    for name in sets:
        system.facts(name, [(f"{name}_{i}",) for i in range(rows)])
    system.compile()
    system.reset_counters()
    return system


def run_fanout(deref: bool, rows: int):
    system = build(deref, rows)
    out = system.call("fanout")
    return system, out


@pytest.mark.parametrize("deref", [True, False])
def test_fanout(benchmark, deref):
    system, out = benchmark(run_fanout, deref, 100)
    assert len(out) == 400


def test_shape_deref_eliminates_runtime_checks(benchmark):
    """The currency of the paper's claim is run-time class checks: the
    compile-time path does zero per-row dispatches; the naive path does
    one per binding of the predicate variable (and breaks the pipeline)."""
    rows_table = []
    for rows in (50, 200):
        fast_system, fast_out = run_fanout(True, rows)
        slow_system, slow_out = run_fanout(False, rows)
        assert sorted(map(str, fast_out)) == sorted(map(str, slow_out))
        rows_table.append(
            (
                rows,
                fast_system.counters.dynamic_dispatches,
                slow_system.counters.dynamic_dispatches,
                fast_system.counters.pipeline_breaks,
                slow_system.counters.pipeline_breaks,
            )
        )
    print_series(
        "E8: compile-time dereferencing vs run-time dispatch",
        ("rows/set", "checks (deref)", "checks (dispatch)",
         "breaks (deref)", "breaks (dispatch)"),
        rows_table,
    )
    fast_system, _ = run_fanout(True, 100)
    slow_system, _ = run_fanout(False, 100)
    assert fast_system.counters.dynamic_dispatches == 0
    assert slow_system.counters.dynamic_dispatches >= 4  # one per set name
    assert fast_system.counters.pipeline_breaks < slow_system.counters.pipeline_breaks
    benchmark(run_fanout, True, 100)
