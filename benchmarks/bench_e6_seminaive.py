"""E6 -- uniondiff-backed seminaive vs. naive evaluation (Section 10).

    "it will implement a 'uniondiff' operator in order to support compiled
    recursive NAIL! queries."

Expected shape: seminaive beats naive on every recursive workload, and the
gap *grows* with recursion depth (naive re-derives the whole relation each
round: quadratic-in-rounds extra work).
"""

import pytest

from benchmarks._workloads import (
    PATH_RULES,
    binary_tree_edges,
    chain_edges,
    db_with,
    print_series,
    random_graph,
)
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine
from repro.terms.term import Atom

RULES = list(parse_program(PATH_RULES).items)


def evaluate(strategy, edges):
    db = db_with({"edge": edges})
    engine = NailEngine(db, RULES, strategy=strategy)
    relation = engine.materialize(Atom("path"), 2)
    return len(relation), db.counters.tuples_scanned, engine.rounds_run


GRAPHS = {
    "chain-30": chain_edges(30),
    "tree-d6": binary_tree_edges(6),
    "random-40n-80e": random_graph(40, 80),
}


@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_transitive_closure(benchmark, strategy):
    tuples, _, _ = benchmark(evaluate, strategy, GRAPHS["chain-30"])
    assert tuples == 30 * 31 // 2


def test_shape_seminaive_beats_naive_gap_grows(benchmark):
    rows = []
    ratios = []
    for name, edges in GRAPHS.items():
        semi_tuples, semi_cost, semi_rounds = evaluate("seminaive", edges)
        naive_tuples, naive_cost, naive_rounds = evaluate("naive", edges)
        assert semi_tuples == naive_tuples  # identical fixpoint
        ratio = naive_cost / semi_cost
        ratios.append((name, ratio))
        rows.append((name, semi_tuples, semi_cost, naive_cost, f"{ratio:.1f}x"))
        assert naive_cost > semi_cost
    print_series(
        "E6: seminaive (uniondiff) vs naive (tuples scanned to fixpoint)",
        ("graph", "|path|", "seminaive", "naive", "naive/semi"),
        rows,
    )
    # The gap grows with recursion depth: deeper chains widen the ratio.
    shallow = evaluate("naive", chain_edges(10))[1] / evaluate("seminaive", chain_edges(10))[1]
    deep = evaluate("naive", chain_edges(40))[1] / evaluate("seminaive", chain_edges(40))[1]
    assert deep > shallow
    benchmark(evaluate, "seminaive", GRAPHS["chain-30"])
