"""A1 (ablation) -- the subgoal-reordering optimizer (Section 3.1).

    "A Glue system is free to reorder the non-fixed subgoals..."

DESIGN.md calls the optimizer out as a design choice worth ablating: the
bench runs bodies written in a deliberately bad order with the optimizer
on and off, asserting identical answers and measuring the scanning saved
by hoisting evaluable filters and most-bound scans.
"""

import pytest

from benchmarks._workloads import print_series, system_with

# A body written worst-first: the big blind scan leads, the selective
# filter and the bound probe trail.
SOURCE = "out(X, Y) := wide(W, Z) & narrow(X) & X < 3 & probe(X, Y) & Y = Z."


def make_facts(n):
    return {
        "wide": [(i, i % 7) for i in range(n)],
        "narrow": [(i,) for i in range(10)],
        "probe": [(i, i % 7) for i in range(10)],
    }


def run(optimize, n):
    system = system_with(SOURCE, make_facts(n), optimize=optimize)
    system.run_script()
    return system


@pytest.mark.parametrize("optimize", [True, False])
def test_bad_order_body(benchmark, optimize):
    system = benchmark(run, optimize, 300)
    assert system.rows("out", 2)


def test_shape_optimizer_cuts_scanning(benchmark):
    rows = []
    for n in (100, 400):
        on = run(True, n)
        off = run(False, n)
        assert on.rows("out", 2) == off.rows("out", 2)
        rows.append(
            (n, on.counters.tuples_scanned, off.counters.tuples_scanned,
             f"{off.counters.tuples_scanned / max(on.counters.tuples_scanned, 1):.1f}x")
        )
    print_series(
        "A1: subgoal reordering ablation (tuples scanned, same answers)",
        ("wide rows", "optimizer on", "optimizer off", "off/on"),
        rows,
    )
    on_cost = run(True, 400).counters.tuples_scanned
    off_cost = run(False, 400).counters.tuples_scanned
    assert on_cost < off_cost
    benchmark(run, True, 300)
