"""E11 -- demand-driven (magic sets) evaluation of bound queries
(Section 2: "the appropriate parts of which are computed on demand").

Expected shape: for a selective point query on a large graph, the magic
rewrite explores only the demanded component; full materialization pays
for the whole IDB.  The gap grows with the amount of graph irrelevant to
the query.
"""

import pytest

from benchmarks._workloads import PATH_RULES, chain_edges, db_with, print_series
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine, magic_query
from repro.terms.term import Atom, Num, Var

RULES = list(parse_program(PATH_RULES).items)


def make_edges(components, chain_len):
    edges = []
    for c in range(components):
        base = c * 10_000
        edges.extend((base + a, base + b) for a, b in chain_edges(chain_len))
    return edges


def run_full(edges, source):
    db = db_with({"edge": edges})
    engine = NailEngine(db, RULES)
    answers = engine.query(Atom("path"), (Num(source), Var("Y")))
    return answers, db.counters.tuples_scanned


def run_magic(edges, source):
    db = db_with({"edge": edges})
    answers, _engine = magic_query(db, RULES, Atom("path"), (Num(source), Var("Y")))
    return answers, db.counters.tuples_scanned


@pytest.mark.parametrize("route", ["full", "magic"])
def test_point_query(benchmark, route):
    edges = make_edges(4, 25)
    fn = run_full if route == "full" else run_magic
    answers, _ = benchmark(fn, edges, 0)
    assert len(answers) == 25


def test_shape_magic_explores_only_the_demand(benchmark):
    rows = []
    gaps = []
    for components in (2, 8):
        edges = make_edges(components, 25)
        full_answers, full_cost = run_full(edges, 0)
        magic_answers, magic_cost = run_magic(edges, 0)
        assert sorted(map(str, full_answers)) == sorted(map(str, magic_answers))
        gaps.append(full_cost / magic_cost)
        rows.append((components, len(magic_answers), magic_cost, full_cost,
                     f"{full_cost / magic_cost:.0f}x"))
    print_series(
        "E11: magic-sets point query vs full materialization (tuples scanned)",
        ("components", "answers", "magic", "full", "full/magic"),
        rows,
    )
    assert gaps[0] > 2
    assert gaps[1] > gaps[0], "gap should grow with irrelevant graph"
    benchmark(run_magic, make_edges(4, 25), 0)
