"""E12 -- aggregation over supplementary tuples with cascading group_by
(Section 3.3).

Semantics checks as executable claims: (1) aggregators range over the
tuples of the supplementary relation, *not* over the projection onto the
argument term (the paper's duplicate-temperatures example); (2) group_by
partitions cascade.  The cost series sweeps the number of groups.
"""

import pytest

from benchmarks._workloads import print_series, system_with

GROUPED = """
course_average(C, A) :=
  course_student_grade(C, S, G) & group_by(C) & A = mean(G).
"""


def make_grades(courses, students_per_course):
    rows = []
    for c in range(courses):
        for s in range(students_per_course):
            rows.append((f"course{c}", f"student{c}_{s}", 50 + (s * 7) % 50))
    return {"course_student_grade": rows}


def run_grouped(courses, students):
    system = system_with(GROUPED, make_grades(courses, students))
    system.run_script()
    return system


@pytest.mark.parametrize("courses", [5, 50])
def test_group_by_mean(benchmark, courses):
    system = benchmark(run_grouped, courses, 20)
    assert len(system.rows("course_average", 2)) == courses


def test_shape_duplicate_preserving_and_cascading(benchmark):
    # (1) Duplicate readings count once per *tuple*, not once per value.
    system = system_with(
        "avg(A) := reading(Site, T) & A = mean(T).",
        {"reading": [("north", 10), ("south", 10), ("east", 40)]},
    )
    system.run_script()
    (row,) = system.rows("avg", 1)
    assert row[0].value == 20  # (10+10+40)/3, NOT (10+40)/2 = 25
    wrong_projection_mean = (10 + 40) / 2
    assert row[0].value != wrong_projection_mean

    # (2) Cascading group_by refines partitions.
    system = system_with(
        """
        fine(D, T, S) := emp(D, T, Pay) & group_by(D) & group_by(T) & S = sum(Pay).
        coarse(D, S) := emp(D, T, Pay) & group_by(D) & S = sum(Pay).
        """,
        {"emp": [("eng", "a", 1), ("eng", "a", 2), ("eng", "b", 4), ("ops", "a", 8)]},
    )
    system.run_script()
    fine = {(str(r[0]), str(r[1])): r[2].value for r in system.rows("fine", 3)}
    coarse = {str(r[0]): r[1].value for r in system.rows("coarse", 2)}
    assert fine == {("eng", "a"): 3, ("eng", "b"): 4, ("ops", "a"): 8}
    assert coarse == {"eng": 7, "ops": 8}

    # Cost series: work grows linearly with input, not with group count.
    rows = []
    for courses in (2, 20, 200):
        system = run_grouped(courses, 10)
        rows.append(
            (courses, courses * 10, system.counters.tuples_scanned,
             len(system.rows("course_average", 2)))
        )
    print_series(
        "E12: group_by aggregation (tuples scanned vs group count)",
        ("groups", "input tuples", "tuples scanned", "output rows"),
        rows,
    )
    benchmark(run_grouped, 20, 20)
