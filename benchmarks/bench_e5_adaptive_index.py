"""E5 -- adaptive run-time index creation (Section 10).

    "an index could be created for a relation after the cumulative cost of
    selection by scanning the relation reaches the cost of creating the
    index."

Sweep the number of repeated selections; compare never-index,
always-index, and the adaptive policy.  Expected shape: adaptive tracks
never-index for few lookups (no wasted build) and always-index for many
(amortized build), with the crossover near #lookups x per-scan-cost =
build cost, i.e. around one full scan's worth of queries.
"""

import pytest

from benchmarks._workloads import print_series
from repro.storage.adaptive import AdaptiveIndexPolicy, AlwaysIndexPolicy, NeverIndexPolicy
from repro.storage.relation import Relation
from repro.terms.term import Atom, Num, Var

RELATION_SIZE = 400
DISTINCT_KEYS = 40


def build_relation(policy):
    relation = Relation(Atom("r"), 2, index_policy=policy)
    relation.insert_many(
        [(Num(i % DISTINCT_KEYS), Num(i)) for i in range(RELATION_SIZE)]
    )
    relation.counters.reset()
    return relation


def run_lookups(policy_factory, lookups):
    relation = build_relation(policy_factory())
    for i in range(lookups):
        for _ in relation.select((Num(i % DISTINCT_KEYS), Var("Y"))):
            pass
    return relation.counters.total_tuple_touches


POLICIES = {
    "never": NeverIndexPolicy,
    "always": AlwaysIndexPolicy,
    "adaptive": AdaptiveIndexPolicy,
}


@pytest.mark.parametrize("policy", list(POLICIES))
def test_lookup_workload(benchmark, policy):
    cost = benchmark(run_lookups, POLICIES[policy], 50)
    assert cost > 0


def test_shape_adaptive_tracks_the_better_policy(benchmark):
    rows = []
    sweep = [1, 2, 5, 20, 100]
    for lookups in sweep:
        never = run_lookups(NeverIndexPolicy, lookups)
        always = run_lookups(AlwaysIndexPolicy, lookups)
        adaptive = run_lookups(AdaptiveIndexPolicy, lookups)
        best = min(never, always)
        rows.append((lookups, never, always, adaptive,
                     "never" if never <= always else "always"))
        # Adaptive never does much worse than the better fixed policy: at
        # most one wasted full scan beyond it (the probe before crossover).
        assert adaptive <= best + RELATION_SIZE + lookups * RELATION_SIZE // DISTINCT_KEYS
    print_series(
        "E5: adaptive index creation (total tuple touches; crossover ~1 scan)",
        ("lookups", "never-index", "always-index", "adaptive", "best fixed"),
        rows,
    )
    # Few lookups: building is a waste; adaptive sides with never.
    assert run_lookups(AdaptiveIndexPolicy, 1) == run_lookups(NeverIndexPolicy, 1)
    # Many lookups: adaptive beats never-index by a growing margin.
    assert run_lookups(AdaptiveIndexPolicy, 100) < run_lookups(NeverIndexPolicy, 100) / 2
    benchmark(run_lookups, AdaptiveIndexPolicy, 50)
