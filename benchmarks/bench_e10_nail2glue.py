"""E10 -- the NAIL!-to-Glue compilation pipeline (Sections 1, 10, 11).

    "NAIL! code is compiled into Glue code, simplifying the system design."
    "NAIL! code is compiled into Glue procedures; the Glue optimizer runs
    over all the code."

The bench compiles rule sets to Glue, runs the generated code through the
ordinary Glue pipeline, and checks it computes the same IDB as the native
seminaive engine -- at comparable (same order of magnitude) cost, since
both implement seminaive iteration.
"""

import pytest

from benchmarks._workloads import PATH_RULES, chain_edges, print_series, random_graph
from repro.core.system import GlueNailSystem
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine
from repro.nail.nail2glue import compile_rules_to_glue
from repro.storage.database import Database
from repro.terms.term import Atom

STRATIFIED = """
reach(X) :- start(X).
reach(Y) :- reach(X) & edge(X, Y).
unreach(X) :- node(X) & !reach(X).
"""


def run_generated(rules_text, facts):
    rules = list(parse_program(rules_text).items)
    result = compile_rules_to_glue(rules)
    system = GlueNailSystem()
    system.load(result.source)
    for name, rows in facts.items():
        system.facts(name, rows)
    system.compile()
    system.reset_counters()
    system.call(result.driver_proc)
    return system, result


def run_native(rules_text, facts):
    db = Database()
    for name, rows in facts.items():
        db.facts(name, rows)
    db.counters.reset()
    engine = NailEngine(db, list(parse_program(rules_text).items))
    engine.materialize_all()
    return engine


@pytest.mark.parametrize("route", ["generated", "native"])
def test_transitive_closure(benchmark, route):
    facts = {"edge": chain_edges(25)}
    if route == "generated":
        system, result = benchmark(run_generated, PATH_RULES, facts)
        assert len(system.rows("path", 2)) == 25 * 26 // 2
    else:
        engine = benchmark(run_native, PATH_RULES, facts)
        assert len(engine.materialize(Atom("path"), 2)) == 25 * 26 // 2


def test_shape_generated_matches_native(benchmark):
    workloads = {
        "tc chain-25": (PATH_RULES, {"edge": chain_edges(25)}, [("path", 2)]),
        "tc random": (PATH_RULES, {"edge": random_graph(25, 50)}, [("path", 2)]),
        "stratified": (
            STRATIFIED,
            {
                "edge": chain_edges(15),
                "node": [(i,) for i in range(30)],
                "start": [(0,)],
            },
            [("reach", 1), ("unreach", 1)],
        ),
    }
    rows = []
    for name, (rules_text, facts, outputs) in workloads.items():
        system, result = run_generated(rules_text, facts)
        engine = run_native(rules_text, facts)
        for pred, arity in outputs:
            generated = system.rows(pred, arity)
            native = engine.materialize(Atom(pred), arity).sorted_rows()
            assert generated == native, (name, pred)
        rows.append(
            (
                name,
                len(result.stratum_procs),
                sum(len(system.rows(p, a)) for p, a in outputs),
                "identical",
            )
        )
    print_series(
        "E10: NAIL!->Glue generated code vs native engine",
        ("workload", "strata", "IDB tuples", "result"),
        rows,
    )
    benchmark(run_generated, PATH_RULES, {"edge": chain_edges(25)})
