"""E7 -- HiLog name-sets vs. LDL extensional sets (Sections 5.1 and 8.1).

    "if two set valued attributes contain the same predicate name, then
    the two sets are identical.  Hence much of the time a simple
    string-string matching suffices. ... The only type of set equality
    available [in LDL] is set unification, which can be expensive."

Expected shape: HiLog name equality is O(1)-flat in the set size; the
extensional baseline's member-level comparison grows with the set, and
its full set-unification search grows much faster when element patterns
contain variables.
"""

import time

import pytest

from benchmarks._workloads import print_series
from repro.baselines.extensional_sets import (
    make_set,
    set_unify,
    sets_equal_extensional,
)
from repro.hilog.sets import set_name
from repro.terms.term import Atom, Compound, Num, Var


def hilog_equal(size):
    left = set_name("employees", f"dept{size}")
    right = set_name("employees", f"dept{size}")
    return left == right


def extensional_equal(size):
    left = make_set(range(size))
    right = make_set(range(size))
    return sets_equal_extensional(left, right)


def unify_with_variables(size):
    """Set unification where the last two elements are variables: the
    backtracking search LDL-style systems must implement."""
    ground = make_set(range(size))
    pattern_elems = tuple(Num(i) for i in range(size - 2)) + (Var("X"), Var("Y"))
    pattern = Compound(Atom("$set"), pattern_elems)
    return set_unify(pattern, ground)


@pytest.mark.parametrize("size", [10, 100])
def test_hilog_name_equality(benchmark, size):
    assert benchmark(hilog_equal, size)


@pytest.mark.parametrize("size", [10, 100])
def test_extensional_equality(benchmark, size):
    assert benchmark(extensional_equal, size)


def _time(fn, *args, repeats=200):
    start = time.perf_counter()
    for _ in range(repeats):
        fn(*args)
    return (time.perf_counter() - start) / repeats


def test_shape_name_equality_flat_extensional_grows(benchmark):
    rows = []
    hilog_times = {}
    ext_times = {}
    for size in (10, 100, 1000):
        hilog_times[size] = _time(hilog_equal, size)
        ext_times[size] = _time(extensional_equal, size, repeats=20)
        unify_time = _time(unify_with_variables, min(size, 100), repeats=5)
        rows.append(
            (
                size,
                f"{hilog_times[size] * 1e6:.2f} us",
                f"{ext_times[size] * 1e6:.1f} us",
                f"{unify_time * 1e6:.1f} us (n<=100)",
            )
        )
    print_series(
        "E7: set equality cost by set size (HiLog names vs extensional)",
        ("set size", "HiLog name eq", "extensional eq", "set unification"),
        rows,
    )
    # Name equality flat: 100x bigger sets cost < 5x more (noise bound).
    assert hilog_times[1000] < hilog_times[10] * 5
    # Extensional equality grows with the set (>= 10x from 10 to 1000).
    assert ext_times[1000] > ext_times[10] * 10
    # And both answer the same question correctly on small sets.
    assert extensional_equal(5) and hilog_equal(5)
    benchmark(extensional_equal, 100)
