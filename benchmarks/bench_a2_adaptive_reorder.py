"""A2 (ablation) -- adaptive run-time re-optimization (Section 10).

    "Because Glue programs create and update many relations at run-time,
    queries involving those relations are difficult to optimize at
    compile-time. ... the back end will employ adaptive optimization
    techniques that select appropriate storage structures and access
    methods at run-time based on changing properties of the database and
    patterns of access."

The adaptive-index policy (E5) covers access methods; this ablation covers
*join order*: the machine re-orders statement bodies by live relation
cardinalities (caching one compiled variant per ordering).  Workload: the
body names the relations in a statically plausible but dynamically wrong
order.  Indexing is disabled so the ordering effect is isolated.
"""

import pytest

from benchmarks._workloads import print_series
from repro.core.system import GlueNailSystem
from repro.storage.adaptive import NeverIndexPolicy
from repro.storage.database import Database

SOURCE = "out(X, Y) := big(X, V) & small(V, Y)."


def build(adaptive, big_n, small_n):
    db = Database(index_policy=NeverIndexPolicy())
    system = GlueNailSystem(db=db, adaptive_reorder=adaptive)
    system.load(SOURCE)
    system.facts("big", [(i, i % 50) for i in range(big_n)])
    system.facts("small", [(i, f"v{i}") for i in range(small_n)])
    system.compile()
    system.reset_counters()
    return system


def run(adaptive, big_n=2000, small_n=2):
    system = build(adaptive, big_n, small_n)
    system.run_script()
    return system


@pytest.mark.parametrize("adaptive", [False, True])
def test_bad_static_order(benchmark, adaptive):
    system = benchmark(run, adaptive)
    assert system.rows("out", 2)


def test_shape_runtime_sizes_beat_static_guess(benchmark):
    rows = []
    for big_n in (500, 2000, 8000):
        static = run(False, big_n).counters.tuples_scanned
        adaptive = run(True, big_n).counters.tuples_scanned
        rows.append((big_n, static, adaptive, f"{static / adaptive:.2f}x"))
    print_series(
        "A2: adaptive run-time join reorder (tuples scanned, indexing off)",
        ("big rows", "static order", "adaptive order", "static/adaptive"),
        rows,
    )
    # Who wins: knowing live sizes always helps here, more as big grows.
    assert run(True, 8000).counters.tuples_scanned < run(False, 8000).counters.tuples_scanned
    # Same answers.
    assert run(True).rows("out", 2) == run(False).rows("out", 2)
    # One compiled variant is cached, not one per execution.
    system = build(True, 2000, 2)
    (stmt,) = system.compile().script
    system.run_script()
    system.run_script()
    assert len(stmt.variants) == 1
    benchmark(run, True)
