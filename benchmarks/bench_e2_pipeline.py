"""E2 -- pipelined (nested-join) vs. materialized execution (Section 9).

    "We have used a pipelined (nested join) execution strategy ...
    Breaking the pipeline and materializing the supplementary relation
    incurs some computational overhead ... and costs an extra load and
    store for each tuple."

Expected shape: on a break-free join chain with a selective tail filter,
pipelining touches strictly fewer tuples (no intermediate stores); the
materialized strategy pays one load+store per tuple per step.
"""

import pytest

from benchmarks._workloads import print_series, system_with

SOURCE = "out(X, W) := a(X, Y) & b(Y, Z) & c(Z, W) & W = 0."


def make_facts(n):
    return {
        "a": [(i, i % 20) for i in range(n)],
        "b": [(i % 20, i % 10) for i in range(n)],
        "c": [(i % 10, i % 5) for i in range(n)],
    }


def run_chain(strategy, n):
    system = system_with(SOURCE, make_facts(n), strategy=strategy, optimize=False)
    system.run_script()
    return system


@pytest.mark.parametrize("strategy", ["pipelined", "materialized"])
def test_join_chain(benchmark, strategy):
    result = benchmark(run_chain, strategy, 300)
    assert result.rows("out", 2)


def test_shape_pipelining_stores_less(benchmark):
    rows = []
    last = {}
    for n in (100, 300):
        stats = {}
        for strategy in ("pipelined", "materialized"):
            system = run_chain(strategy, n)
            stats[strategy] = system.counters.snapshot()
        rows.append(
            (
                n,
                stats["pipelined"]["materialized_tuples"],
                stats["materialized"]["materialized_tuples"],
                stats["pipelined"]["pipeline_breaks"],
            )
        )
        last = stats
    print_series(
        "E2: pipelined vs materialized (stored tuples; breaks=0 expected)",
        ("rows/rel", "pipelined stores", "materialized stores", "breaks"),
        rows,
    )
    assert last["pipelined"]["pipeline_breaks"] == 0
    assert (
        last["pipelined"]["materialized_tuples"]
        < last["materialized"]["materialized_tuples"]
    )
    # Identical answers.
    a = run_chain("pipelined", 200).rows("out", 2)
    b = run_chain("materialized", 200).rows("out", 2)
    assert a == b
    benchmark(run_chain, "pipelined", 200)
