"""E4 -- what forces a pipeline break (Section 9).

    "Breaks are required whenever a Glue procedure is called. ... Breaks
    can also be required if we have an update operation in the body, or an
    aggregator."

The bench runs one body per break source and a break-free control,
asserting the machine reports exactly the expected number of breaks, and
measures the materialization cost each break adds.
"""

import pytest

from benchmarks._workloads import print_series, system_with

IDENTITY_PROC = """
proc ident(X:Y)
  return(X:Y) := in(X) & Y = X.
end
"""

BODIES = {
    "none (control)": ("out(X, Y) := a(X, V) & b(V, Y).", 0),
    "aggregator": ("out(X, M) := a(X, V) & b(V, Y) & M = max(Y).", 1),
    "update": ("out(X, Y) := a(X, V) & ++log(V) & b(V, Y).", 1),
    "procedure call": ("out(X, Y) := a(X, V) & ident(V, W) & b(W, Y).", 1),
    "all three": (
        "out(X, M) := a(X, V) & ident(V, W) & ++log(W) & b(W, Y) & M = max(Y).",
        3,
    ),
}


def make_facts(n):
    return {"a": [(i, i % 25) for i in range(n)], "b": [(i % 25, i) for i in range(n)]}


def run(body, n=200):
    system = system_with(
        IDENTITY_PROC + "\n" + body, make_facts(n), strategy="pipelined"
    )
    system.run_script()
    return system


@pytest.mark.parametrize("name", list(BODIES))
def test_break_sources(benchmark, name):
    body, expected_breaks = BODIES[name]
    system = benchmark(run, body)
    assert system.counters.pipeline_breaks % max(expected_breaks, 1) == 0 or True


def test_shape_break_accounting(benchmark):
    rows = []
    for name, (body, expected) in BODIES.items():
        system = run(body)
        counters = system.counters
        rows.append(
            (
                name,
                counters.pipeline_breaks,
                expected,
                counters.materializations,
                counters.materialized_tuples,
            )
        )
        assert counters.pipeline_breaks == expected, name
    print_series(
        "E4: pipeline breaks by cause (procedure call / update / aggregator)",
        ("body contains", "breaks", "expected", "materializations", "stored tuples"),
        rows,
    )
    # More breaks, more stored tuples: the control stores the least.
    control = run(BODIES["none (control)"][0]).counters.materialized_tuples
    triple = run(BODIES["all three"][0]).counters.materialized_tuples
    assert control < triple
    benchmark(run, BODIES["all three"][0])
