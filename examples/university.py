#!/usr/bin/env python3
"""HiLog set-valued attributes: the paper's class_info schema (Section 5).

A set-valued attribute holds the *name* of a predicate -- here the
compound terms ``tas(cs99)`` and ``students(cs99)`` -- so set equality is
name matching, and only an explicit ``set_eq`` compares members.  This
example runs the paper's schema, dereferences the set names from Glue, and
contrasts name-based equality with member-level equality.

Run:  python examples/university.py
"""

from repro import GlueNailSystem, rows_to_python, term_to_python
from repro.hilog.sets import SET_EQ_GLUE_SOURCE, set_eq, set_name

PROGRAM = """
% The paper's class_info predicate: code, instructor, room, set of TAs,
% set of students.  The fourth and fifth attributes are set *names*.
class_info(ID, Instructor, Room, tas(ID), students(ID)) :-
  class_instructor(ID, Instructor) &
  class_room(ID, Room) &
  class_subject(ID, _).

% TAs for a course: graduate students who failed the qualifying exam in
% the course's subject area (the paper's joke, faithfully reproduced).
tas(ID)(TA) :-
  class_subject(ID, Subject) & failed_exam(TA, Subject).

students(ID)(Student) :- attends(Student, ID).

% Dereferencing the sets from Glue: T and S are bound to predicate names,
% then used in predicate position.
proc roster(:Course, Person, Role)
rels members(C, P, R);
  members(Course, Person, ta) :=
    class_info(Course, _, _, T, _) & T(Person).
  members(Course, Person, student) +=
    class_info(Course, _, _, _, S) & S(Person).
  return(:Course, Person, Role) := members(Course, Person, Role).
end
"""


def main() -> None:
    system = GlueNailSystem()
    system.load(PROGRAM)
    system.load(SET_EQ_GLUE_SOURCE)

    system.facts("class_instructor", [("cs99", "smith"), ("cs1", "jones")])
    system.facts("class_room", [("cs99", "mjh460a"), ("cs1", "gates104")])
    system.facts("class_subject", [("cs99", "databases"), ("cs1", "intro")])
    system.facts("failed_exam", [("jones", "databases"), ("lee", "intro")])
    system.facts(
        "attends",
        [("wilson", "cs99"), ("green", "cs99"), ("wilson", "cs1")],
    )

    print("== class_info: set-valued attributes are predicate names ==")
    for row in system.query("class_info(ID, I, R, T, S)?"):
        values = [term_to_python(v) for v in row]
        print(f"  class_info{tuple(values)}")

    print("\n== implied IDB tuples (the paper's example output) ==")
    for course in ("cs99", "cs1"):
        members = system.rows(set_name("students", course), 1)
        print(f"  students({course}) = {sorted(str(m[0]) for m in members)}")

    print("\n== dereferencing sets from Glue ==")
    for row in sorted(rows_to_python(system.call("roster"))):
        print(f"  {row[0]}: {row[1]} ({row[2]})")

    print("\n== set equality ==")
    a = set_name("students", "cs99")
    b = set_name("students", "cs99")
    c = set_name("students", "cs1")
    print(f"  {a} == {b} by name?     ", a == b, " (no member scan needed)")
    print(f"  {a} == {c} by name?     ", a == c)

    # Member-level equality needs the explicit set_eq (the paper's proc).
    system.engine.materialize_all()
    idb = system.engine.idb
    print(
        f"  set_eq(students(cs99), students(cs1))? ",
        set_eq(idb, a, c),
    )

    # Two differently-named sets with the same members: name inequality,
    # member equality -- exactly why set_eq exists.
    system.facts("attends", [("green", "retaken_cs99")])
    system.facts("attends", [("wilson", "retaken_cs99")])
    system.facts("class_subject", [("retaken_cs99", "databases")])
    system.engine.materialize_all()
    idb = system.engine.idb
    d = set_name("students", "retaken_cs99")
    print(f"  {a} == {d} by name?     ", a == d)
    print(f"  set_eq members equal?   ", set_eq(idb, a, d))


if __name__ == "__main__":
    main()
