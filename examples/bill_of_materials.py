#!/usr/bin/env python3
"""Bill of materials: the classic deductive-database workload.

Demonstrates the paper's one-system story on a realistic schema: recursive
part explosion in NAIL!, cost roll-up with stratified aggregation, and a
procedural Glue workflow that consumes stock and records shortages -- all
over one EDB, one optimizer, one term model.

Run:  python examples/bill_of_materials.py
"""

from repro import GlueNailSystem, rows_to_python

PROGRAM = """
% --- declarative part explosion (NAIL!) --------------------------------
% assembly(Parent, Child, Qty): Parent uses Qty units of Child.

uses(P, C) :- assembly(P, C, _).
uses(P, C) :- uses(P, M) & assembly(M, C, _).

% Leaf parts are purchased, not built.
leaf(P) :- part(P) & !has_children(P).
has_children(P) :- assembly(P, _, _).

% Direct cost roll-up for one level (full recursion with multiplication
% is done procedurally below -- aggregation must stay stratified).
direct_cost(P, T) :-
  assembly(P, C, Q) & unit_cost(C, U) & V = Q * U &
  group_by(P) & T = sum(V).

% --- procedural workflow (Glue) ----------------------------------------
% Walk the assembly tree computing the total leaf demand for one root,
% multiplying quantities along paths with a repeat loop.
proc explode(Root:Part, Qty)
rels demand(P, Q), frontier(P, Q);
  frontier(Root, 1) := in(Root).
  repeat
    demand(P, Q) += frontier(P, Q).
    frontier(C, Q2) := frontier(P, Q) & assembly(P, C, QC) & Q2 = Q * QC.
  until empty(frontier(_, _));
  return(Root:Part, Qty) :=
    demand(Part, Q) & leaf(Part) & group_by(Part) & Qty = sum(Q).
end

% Consume stock for a build; record shortages in the EDB.
proc build(Root:Part, Short)
rels needs(P, Q);
  needs(P, Q) := in(Root) & explode(Root, P, Q).
  stock(P, S2) +=[P] needs(P, Q) & stock(P, S) & S2 = S - Q.
  shortage(P, M) +=[P] stock(P, S) & S < 0 & M = 0 - S.
  return(Root:Part, Short) := shortage(Part, Short).
end
"""


def main() -> None:
    system = GlueNailSystem()
    system.load(PROGRAM)
    system.facts("part", [(p,) for p in
                          ("bike", "wheel", "frame", "spoke", "rim", "tube", "bolt")])
    system.facts(
        "assembly",
        [
            ("bike", "wheel", 2),
            ("bike", "frame", 1),
            ("wheel", "spoke", 32),
            ("wheel", "rim", 1),
            ("wheel", "tube", 1),
            ("frame", "bolt", 8),
        ],
    )
    system.facts(
        "unit_cost",
        [("spoke", 1), ("rim", 20), ("tube", 7), ("bolt", 2), ("wheel", 70),
         ("frame", 40)],
    )
    system.facts("stock", [("spoke", 100), ("rim", 2), ("tube", 1), ("bolt", 10)])

    print("== recursive reachability: every part a bike uses ==")
    print("  ", sorted(r[1] for r in rows_to_python(system.query("uses(bike, C)?"))))

    print("\n== leaves (purchased parts) ==")
    print("  ", sorted(r[0] for r in rows_to_python(system.query("leaf(P)?"))))

    print("\n== one-level cost roll-up (stratified aggregation) ==")
    for row in sorted(rows_to_python(system.query("direct_cost(P, T)?"))):
        print(f"   {row[0]:6s} {row[1]}")

    print("\n== procedural explosion: leaf demand to build one bike ==")
    for row in sorted(rows_to_python(system.call("explode", [("bike",)]))):
        print(f"   {row[1]:6s} x {row[2]}")

    print("\n== build: consume stock, record shortages ==")
    shortages = sorted(rows_to_python(system.call("build", [("bike",)])))
    for row in shortages:
        print(f"   SHORT {row[1]} by {row[2]}")
    print("   stock after build:",
          sorted(rows_to_python(system.rows("stock", 2))))


if __name__ == "__main__":
    main()
