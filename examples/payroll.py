#!/usr/bin/env python3
"""A stateful payroll application: the procedural side of Glue.

Exercises what NAIL! alone cannot express (paper Section 1): EDB updates
with an order -- the modify-by-key assignment ``+=[K]``, update subgoals
in bodies, a repeat loop draining a work queue -- next to declarative
aggregation with cascading group_by.

Run:  python examples/payroll.py
"""

from repro import GlueNailSystem, rows_to_python

PROGRAM = """
% Declarative reporting (NAIL!).
dept_of(E, D) :- employee(E, D, _).

% Procedural payroll maintenance (Glue).

% Apply one raise round: every employee in a department listed in
% raise_request gets the requested percentage, by keyed update.
proc apply_raises(:E, NewSalary)
rels changed(E, S);
  changed(E, NewS) :=
    raise_request(D, Pct) & employee(E, D, S) &
    NewS = S + S * Pct / 100.
  employee(E, D, S) +=[E] changed(E, S) & employee(E, D, _).
  return(:E, NewSalary) := changed(E, NewSalary).
end

% Drain the termination queue: remove employees one batch at a time,
% logging each removal (update subgoals are fixed: order is guaranteed).
proc process_terminations(:E)
rels done(E);
  repeat
    done(E) += termination_queue(E) & --termination_queue(E) &
               --employee(E, _, _) & ++termination_log(E).
  until empty(termination_queue(_));
  return(:E) := done(E).
end

% Cascading group_by: totals per department, then per (dept, grade).
proc payroll_report(:D, Total, Headcount)
  return(:D, Total, Headcount) :=
    employee(E, D, S) & group_by(D) &
    Total = sum(S) & Headcount = count(E).
end
"""


def show_employees(system):
    for row in sorted(rows_to_python(system.rows("employee", 3))):
        print(f"  {row[0]:8s} {row[1]:6s} {row[2]:>8}")


def main() -> None:
    system = GlueNailSystem()
    system.load(PROGRAM)
    system.facts(
        "employee",
        [
            ("ann", "eng", 100),
            ("bob", "eng", 90),
            ("cat", "ops", 80),
            ("dan", "ops", 70),
            ("eve", "sales", 60),
        ],
    )

    print("== initial payroll ==")
    show_employees(system)

    print("\n== raise round: eng +10%, ops +5% (update by key) ==")
    system.facts("raise_request", [("eng", 10), ("ops", 5)])
    raised = system.call("apply_raises")
    for row in sorted(rows_to_python(raised)):
        print(f"  {row[0]} -> {row[1]}")
    show_employees(system)

    print("\n== terminations: queue drained by a repeat loop ==")
    system.facts("termination_queue", [("bob",), ("eve",)])
    gone = system.call("process_terminations")
    print("  removed:", sorted(r[0] for r in rows_to_python(gone)))
    print("  queue now:", rows_to_python(system.rows("termination_queue", 1)))
    print("  log:", sorted(rows_to_python(system.rows("termination_log", 1))))
    show_employees(system)

    print("\n== report: sum + count per department (group_by) ==")
    for row in sorted(rows_to_python(system.call("payroll_report"))):
        print(f"  {row[0]:6s} total={row[1]:>6} headcount={row[2]}")

    print("\n== the declarative view reflects every update ==")
    print("  dept_of(E, eng)? ->", rows_to_python(system.query("dept_of(E, eng)?")))


if __name__ == "__main__":
    main()
