#!/usr/bin/env python3
"""Figure 1 of the paper: the micro-CAD ``select`` module, end to end.

The user clicks near some drawing elements; ``select`` ranks the
candidates by distance, offers them one at a time, and returns the key of
the confirmed element.  The windowing system of the original (mouse and
keyboard events, element highlighting) is simulated with foreign
procedures fed by a scripted event queue -- the reproduction's substitute
for the paper's C-based window system.

Run:  python examples/cad_select.py
"""

import io

from repro import GlueNailSystem, mk, rows_to_python

CAD_MODULE = """
module example;
export select(:Key);
from windows import event(:Type, Data);
from graphics import highlight(Key:), dehighlight(Key:);
edb element(Key, Origin, P1, P2, DS), tolerance(T);

proc select(:Key)
rels possible(Key, D), try(Key), confirmed(Key);
  possible(Key, D) :=
    event(mouse, p(X, Y)) & graphic_search(p(X, Y), Key, D).
  repeat
    try(Key) :=
      possible(Key, D) & D = min(D) & It = arbitrary(Key) &
      --possible(It, D).
    confirmed(K) :=
      try(K) & highlight(K) & write('This one? ') &
      event(keyboard, KeyBuffer) & dehighlight(K) & KeyBuffer = 'y'.
  until { confirmed(K) | empty(possible(K, _)) };
  return(:Key) := confirmed(Key).
end

graphic_search(p(X, Y), Key, Dist) :-
  element(Key, _, p(Xmin, Ymin), _, _) & tolerance(T) &
  Dist = (X - Xmin) * (X - Xmin) + (Y - Ymin) * (Y - Ymin) &
  Dist < T.
end
"""


class WindowSystem:
    """A tiny scripted window system behind the foreign interface."""

    def __init__(self, events):
        self.events = list(events)

    def event(self, ctx, rows):
        if not self.events:
            return []
        kind, data = self.events.pop(0)
        print(f"  [window] event: {kind} {data}")
        return [(mk(kind), mk(data))]

    def highlight(self, ctx, rows):
        for row in rows:
            print(f"  [window] highlight {row[0]}")
        return rows

    def dehighlight(self, ctx, rows):
        for row in rows:
            print(f"  [window] dehighlight {row[0]}")
        return rows


def build_system(events) -> GlueNailSystem:
    windows = WindowSystem(events)
    system = GlueNailSystem(out=io.StringIO())
    system.register_foreign("windows", "event", 2, 0, windows.event)
    system.register_foreign("graphics", "highlight", 1, 1, windows.highlight)
    system.register_foreign("graphics", "dehighlight", 1, 1, windows.dehighlight)
    system.load(CAD_MODULE)
    system.facts(
        "element",
        [
            ("line_17", "layer0", ("p", 10, 11), ("p", 40, 41), "solid"),
            ("circle_3", "layer0", ("p", 12, 14), ("p", 5, 0), "dashed"),
            ("text_9", "layer1", ("p", 30, 9), ("p", 0, 0), "plain"),
        ],
    )
    system.facts("tolerance", [(200,)])
    return system


def session(title, events):
    print(title)
    system = build_system(events)
    picked = rows_to_python(system.call("select"))
    prompt = system.ctx.out.getvalue()
    if prompt:
        print(f"  [prompted] {prompt.strip()!r} x{prompt.count('This one?')}")
    if picked:
        print(f"  => user selected: {picked[0][0]}\n")
    else:
        print("  => nothing selected\n")
    return picked


def main() -> None:
    # Click at (11, 12): line_17 is nearest (distance 2), circle_3 next (5).
    session(
        "Session 1: accept the nearest element",
        [("mouse", ("p", 11, 12)), ("keyboard", "y")],
    )
    session(
        "Session 2: reject the nearest, accept the second",
        [("mouse", ("p", 11, 12)), ("keyboard", "n"), ("keyboard", "y")],
    )
    session(
        "Session 3: reject everything in tolerance",
        [("mouse", ("p", 11, 12)),
         ("keyboard", "n"), ("keyboard", "n"), ("keyboard", "n")],
    )


if __name__ == "__main__":
    main()
