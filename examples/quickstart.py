#!/usr/bin/env python3
"""Quickstart: a complete Glue-Nail session in ~60 lines.

Covers the two languages working together (the paper's core claim):
declarative NAIL! rules for the query logic, a procedural Glue procedure
for the stateful part, one EDB underneath, and persistence between runs.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import GlueNailSystem, rows_to_python

PROGRAM = """
% --- NAIL!: purely declarative views over the EDB -----------------------
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- ancestor(X, Y) & parent(Y, Z).

siblings(X, Y) :- parent(P, X) & parent(P, Y) & X != Y.

% --- Glue: a procedure with state (a local relation + a loop) ----------
proc family_tree(Root:Member)
rels known(R, M);
  known(R, R) := in(R).
  repeat
    known(R, C) += known(R, P) & parent(P, C).
  until unchanged(known(_, _));
  return(Root:Member) := known(Root, Member).
end
"""


def main() -> None:
    system = GlueNailSystem()
    system.load(PROGRAM)

    # The EDB: plain Python values are lifted to Glue-Nail terms.
    system.facts(
        "parent",
        [
            ("alice", "bob"),
            ("alice", "carol"),
            ("bob", "dan"),
            ("carol", "erin"),
            ("dan", "fay"),
        ],
    )

    print("== NAIL! queries (computed on demand) ==")
    print("ancestor(alice, X)? ->", rows_to_python(system.query("ancestor(alice, X)?")))
    print("siblings(bob, X)?   ->", rows_to_python(system.query("siblings(bob, X)?")))

    print("\n== Demand-driven (magic sets) gives the same answers ==")
    print("magic ancestor(alice, X)? ->",
          rows_to_python(system.query_magic("ancestor(alice, X)?")))

    print("\n== Glue procedure: called once on a set of inputs ==")
    rows = system.call("family_tree", [("alice",), ("bob",)])
    print("family_tree({alice, bob}) ->", sorted(rows_to_python(rows)))

    print("\n== The EDB persists between runs ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "family.gnd")
        count = system.save_edb(path)
        print(f"saved {count} facts to {os.path.basename(path)}")

        fresh = GlueNailSystem()
        fresh.load(PROGRAM)
        fresh.load_edb(path)
        print("reloaded; ancestor(alice, X)? ->",
              rows_to_python(fresh.query("ancestor(alice, X)?")))

    print("\n== Cost counters (the back end's work) ==")
    interesting = {k: v for k, v in system.counters.snapshot().items() if v}
    for key, value in sorted(interesting.items()):
        print(f"  {key:22s} {value}")


if __name__ == "__main__":
    main()
