#!/usr/bin/env python3
"""Graph analysis four ways: the engineering trade-offs of Sections 9-10.

One reachability problem, four evaluation routes:

  1. NAIL! seminaive (the uniondiff-based design of Section 10),
  2. NAIL! naive (the baseline it replaces),
  3. demand-driven magic sets (on-demand evaluation, Section 2),
  4. a hand-written procedural Glue loop (the "assembler" escape hatch
     of Section 1).

All four agree on answers; the cost counters show who does how much work.

Run:  python examples/graph_analysis.py
"""

from repro import Database, GlueNailSystem, rows_to_python
from repro.lang.parser import parse_program
from repro.nail.engine import NailEngine, magic_query
from repro.terms.term import Atom, Num, Var

RULES = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y) & edge(Y, Z).
"""

GLUE_TC = """
proc tc_e(X:Y)
rels connected(X, Y);
  connected(X, Y) := in(X) & e(X, Y).
  repeat
    connected(X, Y) += connected(X, Z) & e(Z, Y).
  until unchanged(connected(_, _));
  return(X:Y) := connected(X, Y).
end
"""


def ladder_edges(n):
    """A long chain plus a disconnected second component."""
    edges = [(i, i + 1) for i in range(n)]
    edges += [(1000 + i, 1001 + i) for i in range(n)]
    return edges


def main() -> None:
    n = 60
    edges = ladder_edges(n)
    rules = list(parse_program(RULES).items)

    print(f"graph: two chains of {n} edges; query: nodes reachable from 0\n")
    results = {}
    costs = {}

    # 1. seminaive
    db = Database()
    db.facts("edge", edges)
    db.counters.reset()
    engine = NailEngine(db, rules, strategy="seminaive")
    results["seminaive (full)"] = {
        r[1].value for r in engine.query(Atom("path"), (Num(0), Var("Y")))
    }
    costs["seminaive (full)"] = db.counters.tuples_scanned

    # 2. naive
    db = Database()
    db.facts("edge", edges)
    db.counters.reset()
    engine = NailEngine(db, rules, strategy="naive")
    results["naive (full)"] = {
        r[1].value for r in engine.query(Atom("path"), (Num(0), Var("Y")))
    }
    costs["naive (full)"] = db.counters.tuples_scanned

    # 3. magic sets
    db = Database()
    db.facts("edge", edges)
    db.counters.reset()
    answers, _ = magic_query(db, rules, Atom("path"), (Num(0), Var("Y")))
    results["magic (demand)"] = {r[1].value for r in answers}
    costs["magic (demand)"] = db.counters.tuples_scanned

    # 4. hand-written Glue
    system = GlueNailSystem()
    system.load(GLUE_TC)
    system.facts("e", edges)
    system.compile()
    system.reset_counters()
    rows = system.call("tc_e", [(0,)])
    results["glue tc_e (proc)"] = {r[1] for r in rows_to_python(rows)}
    costs["glue tc_e (proc)"] = system.counters.tuples_scanned

    expected = set(range(1, n + 1))
    print(f"{'route':20s} {'answers':>8s} {'tuples scanned':>15s}  agree?")
    for name in results:
        ok = results[name] == expected
        print(f"{name:20s} {len(results[name]):8d} {costs[name]:15d}  {ok}")

    print(
        "\nShapes to notice (Sections 9-10): naive re-derives everything "
        "every round,\nseminaive touches each fact once per new derivation, "
        "and magic only explores\nthe component the query demands.  The "
        "procedural Glue loop is competitive\nbecause its delta is the whole "
        "connected relation -- the hand-tuned escape\nhatch the paper "
        "compares to writing assembler."
    )


if __name__ == "__main__":
    main()
