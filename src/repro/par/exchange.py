"""The exchange operator: choose how a join's inputs move to the workers.

Raco-style distinction (see ROADMAP): a partitioned join either
**shuffles** -- both sides partitioned on the shared key, each worker
probing only its own key range -- or **broadcasts** -- the small build
side replicated (here: shared read-only) while the probe side is split
into contiguous chunks.

The decision is the classic cost-model one, fed by the same
:meth:`~repro.storage.relation.Relation.stats_snapshot` cardinalities the
``repro.opt`` planner orders joins with: replicating the build side costs
``workers x |build|``; shuffling costs repartitioning both sides but keeps
each worker's build share at ``|build| / K``.  In shared memory
replication is free until the build side stops fitting hot caches, so the
rule reduces to a cardinality threshold -- small sources broadcast, large
sources shuffle.  Joins with no probe key cannot shuffle and always
broadcast.
"""

from __future__ import annotations

from typing import Optional, Tuple

# Build sides at or below this many rows are broadcast (shared) rather
# than shuffled.  Chosen as the point where a per-worker build share
# would stop being meaningfully smaller than the whole table.
BROADCAST_MAX_ROWS = 4096


class ExchangeDecision:
    """What the exchange operator decided for one join."""

    __slots__ = ("strategy", "source_rows", "est_matches")

    def __init__(
        self,
        strategy: str,
        source_rows: int,
        est_matches: Optional[float] = None,
    ):
        self.strategy = strategy  # "shuffle" | "broadcast"
        self.source_rows = source_rows
        self.est_matches = est_matches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Exchange {self.strategy} source={self.source_rows}>"


def choose_exchange(
    source,
    probe_cols: Tuple[int, ...],
    broadcast_rows: int = BROADCAST_MAX_ROWS,
) -> ExchangeDecision:
    """Pick shuffle vs broadcast for one join against ``source``.

    ``source`` is a join source in the :mod:`repro.nail.bodyeval` sense;
    when it wraps a stored :class:`~repro.storage.relation.Relation`, the
    estimate of matches per probe key comes from its statistics snapshot
    (the ``repro.opt`` selectivity model); other sources are judged by
    size alone.
    """
    rows = len(source)
    est: Optional[float] = None
    if probe_cols:
        relation = getattr(source, "relation", None)
        if relation is not None and hasattr(relation, "stats_snapshot"):
            snapshot = relation.stats_snapshot()
            rows = snapshot.rows
            est = snapshot.est_matches(probe_cols)
    if not probe_cols or rows <= broadcast_rows:
        return ExchangeDecision("broadcast", rows, est)
    return ExchangeDecision("shuffle", rows, est)
