"""Hash partitioning of join inputs.

A :class:`Partitioner` splits the *probe side* of a join (a list of
binding dicts or supplementary rows) into K partitions.  Two splits exist,
matching the two exchange strategies (see :mod:`repro.par.exchange`):

* :meth:`Partitioner.hash_split` -- the **shuffle** side: partition by
  ``hash(probe_key) % K``.  Because a :class:`~repro.storage.index.HashIndex`
  stores one bucket per distinct key, the same function applied to the
  *bucket keys* assigns every stored bucket to exactly one partition --
  partitioning an indexed build side is bucket assignment over the
  existing bucket dict, never a re-hash of its rows
  (:meth:`Partitioner.bucket_sizes`).
* :meth:`Partitioner.chunk_split` -- the **chunked** (broadcast) side:
  contiguous, order-preserving chunks; the small build side is shared by
  every worker.

Both splits are pure functions of their input, so a parallel run touches
exactly the rows a serial run touches.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple


class Partitioner:
    """Splits a join's probe input into at most ``parts`` partitions."""

    __slots__ = ("parts",)

    def __init__(self, parts: int):
        if parts < 1:
            raise ValueError(f"need at least 1 partition, got {parts}")
        self.parts = parts

    def chunk_split(self, items: Sequence) -> List[list]:
        """Contiguous order-preserving chunks covering ``items`` exactly.

        Concatenating the chunks in partition order reproduces the input
        order, which is what makes the chunked work-split differential-
        exact for order-sensitive consumers (Glue ``+=[K]`` statements).
        """
        n = len(items)
        parts = min(self.parts, n) or 1
        base, extra = divmod(n, parts)
        out: List[list] = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            out.append(list(items[start : start + size]))
            start += size
        return out

    def hash_split(self, items: Sequence, key_fn: Callable) -> List[list]:
        """Partition by ``hash(key_fn(item)) % parts`` (the shuffle side)."""
        parts = self.parts
        out: List[list] = [[] for _ in range(parts)]
        for item in items:
            out[hash(key_fn(item)) % parts].append(item)
        return out

    def bucket_sizes(self, buckets) -> List[int]:
        """Per-partition stored-row counts for an already-built hash table.

        ``buckets`` is any ``{key: rows}`` mapping (a ``HashIndex``'s
        bucket dict, a ``DeltaRelation`` table).  Each *bucket* -- not each
        row -- is assigned with the same ``hash(key) % parts`` the shuffle
        split uses, so a shuffle partition probes exactly the buckets
        counted here.  This is the build-side skew report.
        """
        sizes = [0] * self.parts
        for key, rows in buckets.items():
            sizes[hash(key) % self.parts] += len(rows)
        return sizes


def chunk_bounds(n_rows: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` row bounds covering ``n_rows`` exactly.

    The batch-aware twin of :meth:`Partitioner.chunk_split`: a columnar
    :class:`~repro.col.batch.Batch` is split by slicing its id columns at
    these bounds (``Batch.slices``), never by materializing row lists.
    Same size policy as ``chunk_split`` -- front partitions absorb the
    remainder -- and concatenating the slices in order reproduces the
    input, so the parallel kernel stays differential-exact.
    """
    parts = min(parts, n_rows) or 1
    base, extra = divmod(n_rows, parts)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def partition_count(n_items: int, workers: int, min_partition_rows: int) -> int:
    """How many partitions a probe side of ``n_items`` rows deserves:
    one per worker, but never so many that a partition falls under the
    amortization floor."""
    if min_partition_rows <= 0:
        return max(1, workers)
    return max(1, min(workers, n_items // min_partition_rows))


def prepare_probe_source(source, probe_cols: Tuple[int, ...]) -> bool:
    """Build a source's hash state *before* workers probe it concurrently.

    The lazy builds inside ``DeltaRelation.probe`` / ``_IterSource.probe``
    are unsynchronized (safe single-threaded, a race under fan-out), so
    the coordinator forces them here -- charging exactly the counters the
    first serial probe would have charged.  Returns False for sources this
    layer cannot make concurrency-safe; the caller then falls back to the
    serial join.
    """
    if len(source) == 0:
        return True
    if not probe_cols:
        # Scan-only path: every supported source scans a frozen row list.
        return hasattr(source, "scan")
    relation = getattr(source, "relation", None)
    if relation is not None and hasattr(relation, "build_index"):
        relation.build_index(probe_cols)
        return True
    ensure = getattr(source, "ensure_table", None)
    if ensure is not None:
        ensure(probe_cols)
        return True
    return False


def prepare_contains_source(source) -> bool:
    """Same as :func:`prepare_probe_source` for membership-test sources."""
    if len(source) == 0:
        return True
    relation = getattr(source, "relation", None)
    if relation is not None:
        return True  # Relation.__contains__ reads its frozen row set
    ensure = getattr(source, "ensure_set", None)
    if ensure is not None:
        ensure()
        return True
    return False


def source_buckets(source, probe_cols: Tuple[int, ...]) -> Optional[dict]:
    """The built hash table of a prepared source, for skew accounting.

    Returns the live ``{key: rows}`` mapping (do not mutate), or None when
    the source has no materialized table on these columns.
    """
    relation = getattr(source, "relation", None)
    if relation is not None and hasattr(relation, "build_index"):
        return relation.build_index(probe_cols).buckets_view()
    tables = getattr(source, "_tables", None)
    if tables is not None:
        return tables.get(probe_cols)
    return None
