"""Run-time coordination for partition-parallel evaluation.

:class:`ParallelContext` is the object threaded through
``GlueNailSystem`` -> ``NailEngine`` / ``ExecContext`` -> the join
evaluators, the way ``join_mode`` / ``order_mode`` flags already flow.  It
owns the persistent :class:`~repro.par.pool.WorkerPool` and implements the
two invariants that make ``parallel_mode="partition"`` differential-exact:

* **Counter folding.**  Workers count into their own thread-local
  :class:`~repro.storage.stats.CostCounters` block (the context converts
  the database to :class:`~repro.storage.stats.ThreadLocalCounters` on
  adoption).  Around every task the wrapper snapshots the worker's block,
  computes the task's delta, *removes* it from the worker block and hands
  it to the coordinator, which folds it into the calling thread's block
  via ``Counters.merge``.  Net effect: every increment lands exactly once,
  on the thread that owns the query -- a parallel run reports the same
  counter totals as a serial run, and per-task deltas double as the
  per-worker skew report.

* **Reentrancy.**  A task that reaches another parallel join runs it
  serially (the ``active`` flag is false inside a worker), so a bounded
  pool can never deadlock on nested fan-out.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional, Sequence

from repro.par.pool import WorkerPool
from repro.storage.stats import COUNTER_FIELDS, CostCounters, ThreadLocalCounters

# The indexes into an ``as_tuple`` snapshot that make up
# ``CostCounters.total_tuple_touches`` -- the scalar used for skew.
_TOUCH_FIELDS = (
    "tuples_scanned",
    "index_probe_tuples",
    "index_build_tuples",
    "inserts",
    "deletes",
    "materialized_tuples",
)
_TOUCH_INDEXES = tuple(COUNTER_FIELDS.index(name) for name in _TOUCH_FIELDS)

# Floors keeping per-task Python overhead amortized: a probe side smaller
# than this is not worth a cross-thread hop.
DEFAULT_MIN_PARTITION_ROWS = 64
# How many supplementary rows the Glue VM accumulates per parallel batch
# (the VM is a row generator; batching is what turns it set-at-a-time).
DEFAULT_GLUE_BATCH = 4096


def ensure_thread_local_counters(db) -> ThreadLocalCounters:
    """Convert a database's counters to per-thread blocks, in place.

    Relations capture the counters object by reference at creation, so the
    conversion re-points every existing relation (and the tracer) at the
    facade; the previous totals seed the calling thread's block.  A
    database already running on :class:`ThreadLocalCounters` (the query
    server's) is returned unchanged.
    """
    counters = db.counters
    if isinstance(counters, ThreadLocalCounters):
        return counters
    wrapper = ThreadLocalCounters()
    wrapper.merge(counters.as_tuple())
    db.counters = wrapper
    if getattr(db.tracer, "counters", None) is counters:
        db.tracer.counters = wrapper
    for _key, relation in db.snapshot_relations():
        relation.counters = wrapper
    return wrapper


class ParallelContext:
    """Pool + policy + accounting for one system's parallel execution."""

    def __init__(
        self,
        workers: Optional[int] = None,
        db=None,
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        broadcast_rows: Optional[int] = None,
        glue_batch: int = DEFAULT_GLUE_BATCH,
        pool: Optional[WorkerPool] = None,
    ):
        from repro.par.exchange import BROADCAST_MAX_ROWS

        self.workers = max(1, int(workers if workers is not None else os.cpu_count() or 1))
        self.min_partition_rows = max(1, min_partition_rows)
        self.broadcast_rows = BROADCAST_MAX_ROWS if broadcast_rows is None else broadcast_rows
        self.glue_batch = max(self.min_partition_rows, glue_batch)
        self.pool = pool if pool is not None else WorkerPool(self.workers)
        self.counters = None  # set by adopt(); None disables folding
        self._tls = threading.local()
        self._stats_lock = threading.Lock()
        self.regions = 0  # parallel joins executed
        self.tasks = 0  # partition tasks dispatched
        if db is not None:
            self.adopt(db)

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def adopt(self, db) -> "ParallelContext":
        """Attach to a database: makes its counters thread-partitioned so
        worker increments neither race nor double-count."""
        self.counters = ensure_thread_local_counters(db)
        return self

    def shutdown(self) -> None:
        self.pool.shutdown()

    @property
    def active(self) -> bool:
        """Is parallel fan-out worthwhile and safe from this thread?
        False with one worker, after shutdown, and *inside a pool task*
        (nested fan-out runs serially -- the deadlock guard)."""
        return (
            self.workers > 1
            and not self.pool.closed
            and not getattr(self._tls, "inside", False)
        )

    def partition_count(self, n_items: int) -> int:
        from repro.par.partition import partition_count

        return partition_count(n_items, self.workers, self.min_partition_rows)

    def stats(self) -> dict:
        """Pool/region numbers for ``.profile`` and the server stats op."""
        with self._stats_lock:
            return {
                "mode": "partition" if self.workers > 1 else "serial",
                "workers": self.workers,
                "parallel_joins": self.regions,
                "parallel_tasks": self.tasks,
            }

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def _wrap(self, thunk: Callable[[], object]) -> Callable[[], tuple]:
        """Wrap a task to capture its counter delta on the worker thread."""
        counters = self.counters

        def run():
            tls = self._tls
            outer = getattr(tls, "inside", False)
            tls.inside = True
            try:
                if counters is None:
                    return thunk(), None
                before = counters.as_tuple()
                result = thunk()
                after = counters.as_tuple()
                delta = tuple(a - b for a, b in zip(after, before))
                if any(delta):
                    # Withdraw the delta from this worker's block; the
                    # coordinator re-deposits it exactly once.  (A task
                    # executed inline on the coordinator nets to zero.)
                    counters.merge(tuple(-d for d in delta))
                return result, delta
            finally:
                tls.inside = outer

        return run

    def run_region(
        self,
        thunks: Sequence[Callable[[], object]],
        label: str = "",
        tracer=None,
        strategy: Optional[str] = None,
        partition_rows: Optional[List[int]] = None,
    ) -> List[object]:
        """Run one parallel join region; returns per-task results in order.

        Folds every worker's counter delta into the calling thread's block,
        charges the ``parallel_joins`` / ``parallel_tasks`` counters, and
        emits one ``parallel_partition`` tracer event carrying partition
        counts and the per-worker tuple-touch skew.
        """
        outcomes = self.pool.run([self._wrap(thunk) for thunk in thunks])
        counters = self.counters
        touches: List[int] = []
        for _result, delta in outcomes:
            if delta is None:
                touches.append(0)
                continue
            touches.append(sum(delta[i] for i in _TOUCH_INDEXES))
            if counters is not None and any(delta):
                counters.merge(delta)
        if counters is not None:
            counters.parallel_joins += 1
            counters.parallel_tasks += len(thunks)
        with self._stats_lock:
            self.regions += 1
            self.tasks += len(thunks)
        if tracer is not None and tracer.enabled:
            tracer.event(
                "parallel_partition",
                label,
                rows=None,
                workers=self.workers,
                partitions=len(thunks),
                partition_rows=partition_rows,
                worker_touches=touches,
                strategy=strategy,
            )
        return [result for result, _delta in outcomes]
