"""The persistent worker pool behind partition-parallel evaluation.

Thread-backed today: the hot join loops are dict/set probes over Python
objects, so a :class:`~concurrent.futures.ThreadPoolExecutor` buys overlap
only where the interpreter releases the GIL -- the pool's job in this PR
is to be *correct* and cheap enough that ``workers=N`` costs nothing when
cores are scarce.  The surface is deliberately process-pool-shaped (submit
a batch of zero-argument callables, collect results in task order,
propagate the first failure, explicit shutdown) so a later PR can slot a
process/shared-memory backend behind the same API.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence


class WorkerPool:
    """A persistent, reusable pool executing batches of tasks.

    Workers are started lazily on the first batch and persist across
    batches (fixpoint rounds reuse the same threads).  ``run`` is the
    whole execution interface: no futures escape, which is what keeps the
    abstraction swappable for a process pool.
    """

    def __init__(self, workers: int, name: str = "gluenail-par"):
        if workers < 1:
            raise ValueError(f"worker pool needs at least 1 worker, got {workers}")
        self.workers = workers
        self._name = name
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self._name
                )
            return self._executor

    def run(self, tasks: Sequence[Callable[[], object]]) -> List[object]:
        """Execute every task; results come back in task order.

        Every task runs to completion even when one fails -- a partial
        cancellation would leave shared join state half-built -- and the
        first failure (in task order) is then re-raised, so the caller's
        fixpoint loop sees the worker's exception exactly where a serial
        evaluation would have raised it.  The pool stays usable after a
        failed batch.
        """
        if not tasks:
            return []
        if len(tasks) == 1 or self.workers == 1:
            # Inline fast path: no cross-thread hop for degenerate batches.
            return [task() for task in tasks]
        executor = self._ensure_executor()
        futures = [executor.submit(task) for task in tasks]
        results: List[object] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; the pool cannot be restarted afterwards."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
