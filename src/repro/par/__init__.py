"""Partition-parallel evaluation (``parallel_mode="partition"``).

The execution layer that hash-partitions a join's probe side on the
planner-chosen key and fans the partitions out over a persistent worker
pool, while keeping results *and cost-counter totals* identical to the
serial engine:

* :mod:`repro.par.pool` -- the persistent, process-pool-shaped
  :class:`WorkerPool` (thread-backed in this PR).
* :mod:`repro.par.partition` -- :class:`Partitioner`: key-hash (shuffle)
  and contiguous (chunked/broadcast) splits, aligned with ``HashIndex``
  buckets so build-side partitioning is bucket assignment, not re-hashing.
* :mod:`repro.par.exchange` -- the shuffle-vs-broadcast decision from
  ``Relation.stats_snapshot()`` cardinalities.
* :mod:`repro.par.runtime` -- :class:`ParallelContext`: counter folding
  (``Counters.merge``), nested-fan-out guard, ``parallel_partition``
  tracer spans.

Selected via ``GlueNailSystem(parallel_mode="partition", workers=N)`` and
threaded through ``NailEngine`` / ``ExecContext`` like the existing
``join_mode`` / ``order_mode`` flags; the serial engine remains the
differential baseline.  See docs/PERFORMANCE.md for the decision rule and
the serial-fallback matrix.
"""

from repro.par.exchange import BROADCAST_MAX_ROWS, ExchangeDecision, choose_exchange
from repro.par.partition import (
    Partitioner,
    partition_count,
    prepare_contains_source,
    prepare_probe_source,
    source_buckets,
)
from repro.par.pool import WorkerPool
from repro.par.runtime import ParallelContext, ensure_thread_local_counters

__all__ = [
    "BROADCAST_MAX_ROWS",
    "ExchangeDecision",
    "ParallelContext",
    "Partitioner",
    "WorkerPool",
    "choose_exchange",
    "ensure_thread_local_counters",
    "partition_count",
    "prepare_contains_source",
    "prepare_probe_source",
    "source_buckets",
]
