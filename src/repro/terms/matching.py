"""Matching and substitution over terms.

Because relations may contain only completely ground tuples (paper Section
2), comparing a subgoal against stored data needs one-sided *matching*
rather than full unification: the stored side never contains variables.
This restriction is what lets the compiler do binding-time analysis -- after
matching, every variable in the pattern is ground.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.terms.term import Atom, Compound, Num, Term, Var

Bindings = dict  # Var name -> ground Term


class MatchError(Exception):
    """Raised when instantiation meets an unbound variable."""


def match(pattern: Term, ground: Term, bindings: Optional[Bindings] = None) -> Optional[Bindings]:
    """Match ``pattern`` (may contain variables) against a ground term.

    Returns the extended bindings dict on success (a *new* dict; the input is
    not mutated) or ``None`` on failure.  Anonymous variables (name starting
    with ``_``) match anything without binding.
    """
    result = dict(bindings) if bindings else {}
    if _match_into(pattern, ground, result):
        return result
    return None


def _match_into(pattern: Term, ground: Term, bindings: Bindings) -> bool:
    stack = [(pattern, ground)]
    while stack:
        pat, grd = stack.pop()
        if isinstance(pat, Var):
            if pat.is_anonymous:
                continue
            bound = bindings.get(pat.name)
            if bound is None:
                bindings[pat.name] = grd
            elif bound != grd:
                return False
            continue
        if isinstance(pat, Atom):
            if not (isinstance(grd, Atom) and grd.name == pat.name):
                return False
            continue
        if isinstance(pat, Num):
            # ints and equal-valued floats are interchangeable in matching,
            # mirroring Glue's single numeric comparison semantics.
            if not (isinstance(grd, Num) and grd.value == pat.value):
                return False
            continue
        if isinstance(pat, Compound):
            if not (isinstance(grd, Compound) and len(grd.args) == len(pat.args)):
                return False
            stack.append((pat.functor, grd.functor))
            stack.extend(zip(pat.args, grd.args))
            continue
        raise TypeError(f"not a Term: {pat!r}")
    return True


def match_tuple(
    patterns: Iterable[Term],
    ground: Iterable[Term],
    bindings: Optional[Bindings] = None,
) -> Optional[Bindings]:
    """Match a tuple of patterns against a ground tuple, position by position."""
    patterns = tuple(patterns)
    ground = tuple(ground)
    if len(patterns) != len(ground):
        return None
    result = dict(bindings) if bindings else {}
    for pat, grd in zip(patterns, ground):
        if not _match_into(pat, grd, result):
            return None
    return result


def substitute(term: Term, bindings: Mapping[str, Term]) -> Term:
    """Replace bound variables in ``term``; unbound variables stay in place."""
    if isinstance(term, Var):
        return bindings.get(term.name, term)
    if isinstance(term, Compound):
        functor = substitute(term.functor, bindings)
        args = tuple(substitute(a, bindings) for a in term.args)
        if functor is term.functor and args == term.args:
            return term
        return Compound(functor, args)
    return term


def instantiate(term: Term, bindings: Mapping[str, Term]) -> Term:
    """Like :func:`substitute` but every variable must be bound.

    Used when constructing head tuples: Glue heads must be fully bound by the
    statement body, so an unbound variable here is a program error.
    """
    if isinstance(term, Var):
        value = bindings.get(term.name)
        if value is None:
            raise MatchError(f"unbound variable {term.name} in instantiation")
        return value
    if isinstance(term, Compound):
        return Compound(
            instantiate(term.functor, bindings),
            tuple(instantiate(a, bindings) for a in term.args),
        )
    return term


def rename_apart(term: Term, suffix: str) -> Term:
    """Rename every variable in ``term`` by appending ``suffix``.

    Used by the rule rectifier and the NAIL!-to-Glue compiler to keep
    variables from distinct rule copies disjoint.
    """
    if isinstance(term, Var):
        return Var(term.name + suffix)
    if isinstance(term, Compound):
        return Compound(
            rename_apart(term.functor, suffix),
            tuple(rename_apart(a, suffix) for a in term.args),
        )
    return term
