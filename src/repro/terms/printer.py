"""Rendering terms back to Glue-Nail surface syntax.

The printer and the parser are inverses: ``parse_term(term_to_str(t)) == t``
for every ground term, a property the test suite checks with hypothesis.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.terms.term import Atom, Compound, Num, Term, Var

_IDENTIFIER = re.compile(r"[a-z][A-Za-z0-9_]*\Z")

# Names with contextual meaning in the grammar.  Printing them quoted keeps
# the parse/print round trip exact; the parser treats quoted atoms as plain
# names.  Kept in sync with repro.lang.tokens (checked by a test; duplicated
# here because terms/ must not import lang/).
_RESERVED_NAMES = frozenset(
    {
        # keywords
        "module", "export", "import", "from", "edb", "proc", "procedure",
        "rels", "repeat", "until", "end", "watch",
        # aggregate operators
        "min", "max", "mean", "sum", "product", "arbitrary", "std_dev", "count",
        # builtin functions and the infix operator name
        "concat", "length", "substring", "abs", "mod", "to_string", "to_number",
    }
)


def _quote_atom(name: str) -> str:
    """Quote an atom unless it is a plain, non-reserved identifier."""
    if _IDENTIFIER.match(name) and name not in _RESERVED_NAMES:
        return name
    escaped = (
        name.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )
    return f"'{escaped}'"


def term_to_str(term: Term) -> str:
    if isinstance(term, Atom):
        return _quote_atom(term.name)
    if isinstance(term, Num):
        if isinstance(term.value, float):
            return repr(term.value)
        return str(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Compound):
        functor = term_to_str(term.functor)
        # A compound functor (HiLog set name like students(cs99)) prints
        # naturally as application: students(cs99)(wilson).
        args = ", ".join(term_to_str(a) for a in term.args)
        return f"{functor}({args})"
    raise TypeError(f"not a Term: {term!r}")


def tuple_to_str(values: Iterable[Term]) -> str:
    return "(" + ", ".join(term_to_str(v) for v in values) + ")"
