"""Term model for Glue-Nail.

Terms are the values that live in relation attributes (paper Section 2):
atoms (which double as strings -- "In Glue there is no difference between
atoms and strings"), numbers, and compound terms.  Following HiLog (paper
Section 5), the functor of a compound term may itself be an arbitrary term,
not just an atom.  Variables appear only in programs, never inside stored
relations: relations hold completely ground tuples, so the engine uses
*matching*, not full unification.
"""

from repro.terms.term import (
    Atom,
    Compound,
    Num,
    Term,
    Var,
    fresh_var,
    is_ground,
    mk,
    sort_key,
    variables,
)
from repro.terms.matching import (
    MatchError,
    instantiate,
    match,
    match_tuple,
    rename_apart,
    substitute,
)
from repro.terms.printer import term_to_str, tuple_to_str

__all__ = [
    "Atom",
    "Compound",
    "MatchError",
    "Num",
    "Term",
    "Var",
    "fresh_var",
    "instantiate",
    "is_ground",
    "match",
    "match_tuple",
    "mk",
    "rename_apart",
    "sort_key",
    "substitute",
    "term_to_str",
    "tuple_to_str",
    "variables",
]
