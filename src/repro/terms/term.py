"""Core term classes: Atom, Num, Var, Compound.

All terms are immutable and hashable so they can be stored directly in the
hash-based relation storage.  A total, deterministic ordering over ground
terms is provided by :func:`sort_key` so relation dumps and benchmark output
are reproducible run-to-run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Union


class Term:
    """Base class for all Glue-Nail terms."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        return is_ground(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.terms.printer import term_to_str

        return f"<{type(self).__name__} {term_to_str(self)}>"

    def __str__(self) -> str:
        from repro.terms.printer import term_to_str

        return term_to_str(self)


@dataclass(frozen=True, slots=True)
class Atom(Term):
    """An atom.  Atoms and strings are the same data type (paper Section 2).

    The empty atom ``Atom("")`` is legal: it is the empty string.
    """

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str):
            raise TypeError(f"Atom name must be str, got {type(self.name).__name__}")

    def __hash__(self) -> int:
        # Hash the field directly: CPython caches str hashes, so this is a
        # slot read on the hot storage paths instead of a tuple build.
        return hash(self.name)


@dataclass(frozen=True, slots=True)
class Num(Term):
    """A number (integer or float)."""

    value: Union[int, float]

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise TypeError(f"Num value must be int or float, got {type(self.value).__name__}")

    def __hash__(self) -> int:
        # hash(2) == hash(2.0), matching Num(2) == Num(2.0).
        return hash(self.value)


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A logic variable.  Named ``_`` variables are anonymous (each use is
    distinct; the parser renames them apart)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TypeError("Var name must be a non-empty string")

    def __hash__(self) -> int:
        return hash(self.name)

    @property
    def is_anonymous(self) -> bool:
        return self.name.startswith("_")


@dataclass(frozen=True, slots=True)
class Compound(Term):
    """A compound term.  HiLog-style: the functor may be any term, so
    ``students(cs99)`` is a legal *predicate name* and ``E(X, Y)`` (variable
    functor) is a legal subgoal pattern."""

    functor: Term
    args: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.functor, Term):
            raise TypeError("Compound functor must be a Term")
        if not isinstance(self.args, tuple) or not self.args:
            raise TypeError("Compound args must be a non-empty tuple of Terms")
        for arg in self.args:
            if not isinstance(arg, Term):
                raise TypeError("Compound args must all be Terms")

    @property
    def arity(self) -> int:
        return len(self.args)


_FRESH_COUNTER = itertools.count()


def fresh_var(prefix: str = "Gen") -> Var:
    """Return a variable guaranteed distinct from any user-written variable.

    User variables never contain ``#``, so the generated names cannot clash.
    """
    return Var(f"{prefix}#{next(_FRESH_COUNTER)}")


def mk(value: object) -> Term:
    """Convenience constructor: lift a Python value to a Term.

    Strings become atoms, ints/floats become numbers, tuples/lists become
    left-to-right compound terms ``(functor, arg, ...)``, and Terms pass
    through unchanged.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Atom(value)
    if isinstance(value, bool):
        raise TypeError("bool is not a Glue-Nail value; use Atom('true')/Atom('false')")
    if isinstance(value, (int, float)):
        return Num(value)
    if isinstance(value, (tuple, list)):
        if len(value) < 2:
            raise TypeError("compound construction needs a functor and at least one arg")
        functor, *args = value
        return Compound(mk(functor), tuple(mk(a) for a in args))
    raise TypeError(f"cannot lift {type(value).__name__} to a Term")


def variables(term: Term) -> Iterator[Var]:
    """Yield each variable occurrence in ``term``, left to right, duplicates
    included (callers dedupe when they need a set)."""
    stack = [term]
    # An explicit stack keeps deep compound terms from hitting recursion limits.
    out: list[Var] = []
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            out.append(current)
        elif isinstance(current, Compound):
            stack.append(current.functor)
            stack.extend(current.args)
    # The stack visits right-to-left; reverse to restore source order.
    return iter(reversed(out))


def is_ground(term: Term) -> bool:
    """True when the term contains no variables."""
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            return False
        if isinstance(current, Compound):
            stack.append(current.functor)
            stack.extend(current.args)
    return True


# Kind ranks give a total order across heterogeneous terms: numbers sort
# before atoms, atoms before compounds; variables sort last (they only occur
# in program text, never in stored data).
_RANK_NUM = 0
_RANK_ATOM = 1
_RANK_COMPOUND = 2
_RANK_VAR = 3


def sort_key(term: Term) -> tuple:
    """A deterministic total-order key, consistent with term equality.

    Mixed int/float values compare numerically; ``Num(2)`` and ``Num(2.0)``
    are *equal* terms (same hash, same key), so a relation can only ever
    hold one of them.
    """
    if isinstance(term, Num):
        return (_RANK_NUM, term.value)
    if isinstance(term, Atom):
        return (_RANK_ATOM, term.name)
    if isinstance(term, Compound):
        return (
            _RANK_COMPOUND,
            len(term.args),
            sort_key(term.functor),
            tuple(sort_key(a) for a in term.args),
        )
    if isinstance(term, Var):
        return (_RANK_VAR, term.name)
    raise TypeError(f"not a Term: {term!r}")
