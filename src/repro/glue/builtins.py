"""Built-in scalar functions, term comparison, and built-in procedures.

Strings are first-class (paper Section 2): concatenation, length and
substring are built in.  The predefined I/O procedures (write and friends)
are all *fixed* subgoals.  Like every Glue procedure, a builtin is called
once on the whole set of input bindings, not once per tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import GlueRuntimeError
from repro.terms.printer import term_to_str
from repro.terms.term import Atom, Num, Term, sort_key

Row = Tuple[Term, ...]


# --------------------------------------------------------------------- #
# arithmetic and comparison over terms
# --------------------------------------------------------------------- #


def term_arith(op: str, left: Term, right: Term) -> Term:
    """Binary arithmetic; both operands must be numbers."""
    if not isinstance(left, Num) or not isinstance(right, Num):
        raise GlueRuntimeError(f"arithmetic '{op}' needs numbers, got {left} {op} {right}")
    a, b = left.value, right.value
    if op == "+":
        return Num(a + b)
    if op == "-":
        return Num(a - b)
    if op == "*":
        return Num(a * b)
    if op == "/":
        if b == 0:
            raise GlueRuntimeError("division by zero")
        result = a / b
        # Exact integer division stays integral so 4/2 joins with 2.
        if isinstance(a, int) and isinstance(b, int) and a % b == 0:
            return Num(a // b)
        return Num(result)
    if op == "mod":
        if b == 0:
            raise GlueRuntimeError("mod by zero")
        return Num(a % b)
    raise GlueRuntimeError(f"unknown arithmetic operator {op}")


def compare_terms(op: str, left: Term, right: Term) -> bool:
    """Comparison subgoal semantics.

    ``=``/``!=`` are structural equality over ground terms.  Ordering
    comparisons are numeric between numbers, lexicographic between atoms,
    and fall back to the canonical term order for mixed operands so every
    comparison is total and deterministic.
    """
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if isinstance(left, Num) and isinstance(right, Num):
        a, b = left.value, right.value
    elif isinstance(left, Atom) and isinstance(right, Atom):
        a, b = left.name, right.name
    else:
        a, b = sort_key(left), sort_key(right)
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    raise GlueRuntimeError(f"unknown comparison operator {op}")


# --------------------------------------------------------------------- #
# scalar builtin functions (expression position)
# --------------------------------------------------------------------- #


def _need_atom(name: str, value: Term) -> str:
    if not isinstance(value, Atom):
        raise GlueRuntimeError(f"{name} needs a string/atom, got {value}")
    return value.name


def _need_int(name: str, value: Term) -> int:
    if not isinstance(value, Num) or not isinstance(value.value, int):
        raise GlueRuntimeError(f"{name} needs an integer, got {value}")
    return value.value


def _fn_concat(args: Sequence[Term]) -> Term:
    return Atom("".join(_need_atom("concat", a) for a in args))


def _fn_length(args: Sequence[Term]) -> Term:
    (value,) = args
    return Num(len(_need_atom("length", value)))


def _fn_substring(args: Sequence[Term]) -> Term:
    """substring(S, Start, Len): 1-based start, like the SQL SUBSTRING."""
    text, start, length = args
    s = _need_atom("substring", text)
    i = _need_int("substring", start)
    n = _need_int("substring", length)
    if i < 1 or n < 0:
        raise GlueRuntimeError("substring needs start >= 1 and length >= 0")
    return Atom(s[i - 1 : i - 1 + n])


def _fn_abs(args: Sequence[Term]) -> Term:
    (value,) = args
    if not isinstance(value, Num):
        raise GlueRuntimeError(f"abs needs a number, got {value}")
    return Num(abs(value.value))


def _fn_mod(args: Sequence[Term]) -> Term:
    a, b = args
    return term_arith("mod", a, b)


def _fn_to_string(args: Sequence[Term]) -> Term:
    (value,) = args
    if isinstance(value, Atom):
        return value
    return Atom(term_to_str(value))


def _fn_to_number(args: Sequence[Term]) -> Term:
    (value,) = args
    if isinstance(value, Num):
        return value
    text = _need_atom("to_number", value)
    try:
        if any(ch in text for ch in ".eE"):
            return Num(float(text))
        return Num(int(text))
    except ValueError as exc:
        raise GlueRuntimeError(f"to_number: cannot parse {text!r}") from exc


_FUNCTIONS: Dict[str, Tuple[Callable[[Sequence[Term]], Term], int, int]] = {
    # name -> (fn, min_args, max_args)
    "concat": (_fn_concat, 2, 16),
    "length": (_fn_length, 1, 1),
    "substring": (_fn_substring, 3, 3),
    "abs": (_fn_abs, 1, 1),
    "mod": (_fn_mod, 2, 2),
    "to_string": (_fn_to_string, 1, 1),
    "to_number": (_fn_to_number, 1, 1),
}


def eval_function(name: str, args: Sequence[Term]) -> Term:
    entry = _FUNCTIONS.get(name)
    if entry is None:
        raise GlueRuntimeError(f"unknown builtin function {name}")
    fn, lo, hi = entry
    if not lo <= len(args) <= hi:
        raise GlueRuntimeError(f"{name} takes {lo}..{hi} arguments, got {len(args)}")
    return fn(args)


# --------------------------------------------------------------------- #
# builtin procedures (subgoal position)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BuiltinProc:
    """A built-in procedure callable as a subgoal.

    ``fn(ctx, rows)`` receives the execution context and the full set of
    input rows (set-at-a-time, like any Glue procedure) and returns the
    output rows (arity = ``arity``).
    """

    name: str
    arity: int
    bound_arity: int
    fixed: bool
    fn: Callable[[object, List[Row]], List[Row]]


def _write_rows(ctx, rows: List[Row], newline: bool) -> List[Row]:
    for row in sorted(rows, key=lambda r: tuple(sort_key(v) for v in r)):
        ctx.out.write(_render(row[0]))
        if newline:
            ctx.out.write("\n")
    return rows


def _render(value: Term) -> str:
    # write() prints the raw string of an atom (no quotes) -- the natural
    # behaviour for user-facing output.
    if isinstance(value, Atom):
        return value.name
    return term_to_str(value)


def _bp_write(ctx, rows: List[Row]) -> List[Row]:
    return _write_rows(ctx, rows, newline=False)


def _bp_writeln(ctx, rows: List[Row]) -> List[Row]:
    return _write_rows(ctx, rows, newline=True)


def _bp_nl(ctx, rows: List[Row]) -> List[Row]:
    ctx.out.write("\n")
    return rows


def _bp_read_line(ctx, rows: List[Row]) -> List[Row]:
    line = ctx.inp.readline()
    if line.endswith("\n"):
        line = line[:-1]
    return [(Atom(line),)]


BUILTIN_PROCS: Dict[Tuple[str, int], BuiltinProc] = {
    ("write", 1): BuiltinProc("write", 1, 1, True, _bp_write),
    ("writeln", 1): BuiltinProc("writeln", 1, 1, True, _bp_writeln),
    ("nl", 0): BuiltinProc("nl", 0, 0, True, _bp_nl),
    ("read_line", 1): BuiltinProc("read_line", 1, 0, True, _bp_read_line),
}
