"""Glue run-time semantics: aggregate operators, built-in procedures and
scalar functions (paper Sections 2, 3.3, 4)."""

from repro.glue.aggregates import AGGREGATES, apply_aggregate
from repro.glue.builtins import (
    BUILTIN_PROCS,
    BuiltinProc,
    compare_terms,
    eval_function,
    term_arith,
)

__all__ = [
    "AGGREGATES",
    "BUILTIN_PROCS",
    "BuiltinProc",
    "apply_aggregate",
    "compare_terms",
    "eval_function",
    "term_arith",
]
