"""Aggregate operators (paper Section 3.3).

    "The aggregate operators (aggregators) available in Glue are: min, max,
    mean, sum, product, arbitrary, std_dev (standard deviation), and
    count.  These operators take a single bound term as an argument, and
    return a single value."

Aggregators range over the tuples of the preceding supplementary relation
-- *not* over the projection onto the argument term, which would delete
meaningful duplicates (the paper's temperature-reading example).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.errors import GlueRuntimeError
from repro.terms.term import Num, Term, sort_key


def _numeric_values(op: str, values: Sequence[Term]) -> List[float]:
    out = []
    for value in values:
        if not isinstance(value, Num):
            raise GlueRuntimeError(f"{op} needs numeric values, got {value}")
        out.append(value.value)
    return out


def _agg_min(values: Sequence[Term]) -> Term:
    return min(values, key=sort_key)


def _agg_max(values: Sequence[Term]) -> Term:
    return max(values, key=sort_key)


def _agg_sum(values: Sequence[Term]) -> Term:
    return Num(sum(_numeric_values("sum", values)))


def _agg_product(values: Sequence[Term]) -> Term:
    result = 1
    for value in _numeric_values("product", values):
        result *= value
    return Num(result)


def _agg_mean(values: Sequence[Term]) -> Term:
    nums = _numeric_values("mean", values)
    return Num(sum(nums) / len(nums))


def _agg_std_dev(values: Sequence[Term]) -> Term:
    nums = _numeric_values("std_dev", values)
    mean = sum(nums) / len(nums)
    variance = sum((x - mean) ** 2 for x in nums) / len(nums)
    return Num(math.sqrt(variance))


def _agg_count(values: Sequence[Term]) -> Term:
    return Num(len(values))


def _agg_arbitrary(values: Sequence[Term]) -> Term:
    # "returns a single arbitrary value from the binding set" -- we pick the
    # first in supplementary order, which keeps runs deterministic.
    return values[0]


AGGREGATES: Dict[str, Callable[[Sequence[Term]], Term]] = {
    "min": _agg_min,
    "max": _agg_max,
    "mean": _agg_mean,
    "sum": _agg_sum,
    "product": _agg_product,
    "arbitrary": _agg_arbitrary,
    "std_dev": _agg_std_dev,
    "count": _agg_count,
}


def apply_aggregate(op: str, values: Sequence[Term]) -> Term:
    """Apply aggregator ``op`` to the per-tuple values of one group.

    The group is never empty: an empty supplementary relation stops the
    statement before the aggregator runs (paper Section 3.2).
    """
    fn = AGGREGATES.get(op)
    if fn is None:
        raise GlueRuntimeError(f"unknown aggregate operator {op}")
    if not values:
        raise GlueRuntimeError(f"{op} applied to an empty group")
    return fn(values)
