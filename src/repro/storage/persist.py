"""EDB persistence: store relations on disk between runs (paper Section 10).

The format is the obvious one -- the facts themselves, one per line, in
Glue-Nail surface syntax -- so a saved database is also a loadable program
fragment and diffs cleanly under version control.  Arity-0 relations that
currently hold the empty tuple are written as ``name().``; declared-but-
empty relations are recorded with a ``% rel`` directive so the catalog
round-trips exactly.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.storage.database import Database
from repro.terms.printer import term_to_str
from repro.terms.term import Term

_HEADER = "% Glue-Nail EDB dump (format 1)"


def fact_to_line(name: Term, row: tuple) -> str:
    """One fact in dump syntax: ``name(arg, ...).`` (``name().`` at arity 0)."""
    head = term_to_str(name)
    if not row:
        return f"{head}()."
    args = ", ".join(term_to_str(v) for v in row)
    return f"{head}({args})."


_fact_to_line = fact_to_line  # backward-compatible alias


def fsync_directory(directory: str) -> None:
    """Flush a directory's entry table; best-effort on non-POSIX systems."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def save_database(db: Database, path: str) -> int:
    """Write every relation of ``db`` to ``path``; returns the fact count.

    The dump is written atomically: contents go to a temporary file in the
    same directory, which is fsynced and then renamed over the target, so a
    crash mid-dump can never leave a torn file behind -- readers see either
    the old complete dump or the new complete dump.
    """
    count = 0
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    handle = open(tmp_path, "w", encoding="utf-8")
    try:
        with handle:
            handle.write(_HEADER + "\n")
            for key in db.sorted_keys():
                name, arity = key
                relation = db.get(name, arity)
                handle.write(f"% rel {term_to_str(name)} / {arity}\n")
                for row in relation.sorted_rows():
                    handle.write(fact_to_line(name, row) + "\n")
                    count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return count


def load_database(path: str, db: Optional[Database] = None) -> Database:
    """Load a dump produced by :func:`save_database` into ``db`` (or a new one)."""
    from repro.lang.parser import parse_directive_rel, parse_ground_fact

    if db is None:
        db = Database()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("%"):
                declared = parse_directive_rel(line)
                if declared is not None:
                    name, arity = declared
                    db.declare(name, arity)
                continue
            try:
                name, row = parse_ground_fact(line)
            except Exception as exc:
                raise ValueError(f"{path}:{lineno}: bad fact line: {line!r}") from exc
            db.relation(name, len(row)).insert(row)
    return db
