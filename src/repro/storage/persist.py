"""EDB persistence: store relations on disk between runs (paper Section 10).

The format is the obvious one -- the facts themselves, one per line, in
Glue-Nail surface syntax -- so a saved database is also a loadable program
fragment and diffs cleanly under version control.  Arity-0 relations that
currently hold the empty tuple are written as ``name().``; declared-but-
empty relations are recorded with a ``% rel`` directive so the catalog
round-trips exactly.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.storage.database import Database
from repro.terms.printer import term_to_str
from repro.terms.term import Term

_HEADER = "% Glue-Nail EDB dump (format 1)"


def _fact_to_line(name: Term, row: tuple) -> str:
    head = term_to_str(name)
    if not row:
        return f"{head}()."
    args = ", ".join(term_to_str(v) for v in row)
    return f"{head}({args})."


def save_database(db: Database, path: str) -> int:
    """Write every relation of ``db`` to ``path``; returns the fact count."""
    count = 0
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_HEADER + "\n")
        for key in db.sorted_keys():
            name, arity = key
            relation = db.get(name, arity)
            handle.write(f"% rel {term_to_str(name)} / {arity}\n")
            for row in relation.sorted_rows():
                handle.write(_fact_to_line(name, row) + "\n")
                count += 1
    return count


def load_database(path: str, db: Optional[Database] = None) -> Database:
    """Load a dump produced by :func:`save_database` into ``db`` (or a new one)."""
    from repro.lang.parser import parse_directive_rel, parse_ground_fact

    if db is None:
        db = Database()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("%"):
                declared = parse_directive_rel(line)
                if declared is not None:
                    name, arity = declared
                    db.declare(name, arity)
                continue
            try:
                name, row = parse_ground_fact(line)
            except Exception as exc:
                raise ValueError(f"{path}:{lineno}: bad fact line: {line!r}") from exc
            db.relation(name, len(row)).insert(row)
    return db
