"""The Extensional Data Base: a catalog of named relations.

Predicates are identified by (name term, arity); the name may be a compound
HiLog term, which is how set-valued attributes ("the name of a predicate")
resolve to storage.  The database tracks a global version number so that
IDB caches can be invalidated when any EDB relation changes.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Tuple

from repro.obs.tracer import Tracer
from repro.storage.adaptive import AdaptiveIndexPolicy, IndexPolicy
from repro.storage.relation import Relation
from repro.storage.stats import CostCounters
from repro.terms.term import Atom, Term, is_ground, sort_key

PredKey = Tuple[Term, int]


def pred_key(name, arity: int) -> PredKey:
    """Normalize a predicate key; plain strings are lifted to atoms."""
    if isinstance(name, str):
        name = Atom(name)
    if not isinstance(name, Term):
        raise TypeError(f"predicate name must be a Term or str, got {type(name).__name__}")
    if not is_ground(name):
        raise ValueError(f"predicate name must be ground: {name}")
    return (name, arity)


class Database:
    """A main-memory EDB: relations keyed by (ground name term, arity)."""

    def __init__(
        self,
        index_policy: Optional[IndexPolicy] = None,
        counters: Optional[CostCounters] = None,
        tracer: Optional[Tracer] = None,
        columnar=None,
    ):
        from repro.col.kernels import ColumnarContext

        self.index_policy = index_policy if index_policy is not None else AdaptiveIndexPolicy()
        self.counters = counters if counters is not None else CostCounters()
        # One tracing hub per database; disabled until a sink is installed.
        self.tracer = tracer if tracer is not None else Tracer(self.counters)
        # Shared columnar state (atom table + kernel caches, see repro.col).
        # Databases that evaluate against each other -- the NAIL! engine's
        # IDB over this EDB -- pass the owning database's context so ids
        # stay comparable across join keys.
        self.columnar = columnar if columnar is not None else ColumnarContext()
        self._relations: dict = {}  # PredKey -> Relation
        self._version = 0
        self._journal = None
        # Guards catalog mutation (declare/drop): the server lets read-only
        # queries run concurrently, and their compile step declares EDB
        # relations on first reference.
        self._catalog_lock = threading.RLock()

    @property
    def version(self) -> int:
        """Bumped whenever any relation in the database changes."""
        return self._version

    def _bump(self, _relation: Relation) -> None:
        self._version += 1

    def snapshot_relations(self) -> list:
        """A stable ``[(key, relation), ...]`` snapshot of the catalog.

        Taken under the catalog lock so concurrent declares (a reader
        session's compile) cannot resize the dict mid-iteration; callers
        (the NAIL! engine's per-relation freshness check) then fingerprint
        each relation without holding any lock.
        """
        with self._catalog_lock:
            return list(self._relations.items())

    def version_vector(self) -> dict:
        """``{(name, arity): (uid, version)}`` for every relation -- the
        per-relation replacement for the single global counter."""
        return {key: rel.fingerprint for key, rel in self.snapshot_relations()}

    # ------------------------------------------------------------------ #
    # journal (transactions / write-ahead logging)
    # ------------------------------------------------------------------ #

    @property
    def journal(self):
        """The attached mutation journal, or None (plain in-memory EDB)."""
        return self._journal

    def attach_journal(self, journal) -> None:
        """Install (or with None, remove) a mutation journal.

        The journal observes every EDB mutation: tuple inserts/deletes on
        each relation plus catalog declares and drops.  The transaction
        subsystem (``repro.txn``) uses this to undo-log open transactions
        and to redo-log committed ones into the write-ahead log.
        """
        with self._catalog_lock:
            self._journal = journal
            for relation in self._relations.values():
                relation.journal = journal

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #

    def declare(self, name, arity: int) -> Relation:
        """Declare (create if absent) a relation and return it."""
        key = pred_key(name, arity)
        relation = self._relations.get(key)
        if relation is None:
            with self._catalog_lock:
                relation = self._relations.get(key)
                if relation is None:
                    relation = Relation(
                        key[0],
                        arity,
                        counters=self.counters,
                        index_policy=self.index_policy,
                        listener=self._bump,
                        tracer=self.tracer,
                    )
                    relation.journal = self._journal
                    relation.columnar = self.columnar
                    self._relations[key] = relation
                    self._version += 1
                    if self._journal is not None:
                        self._journal.record_declare(key[0], arity)
        if relation.arity != arity:
            raise ValueError(f"relation {key[0]} exists with arity {relation.arity}")
        return relation

    def get(self, name, arity: int) -> Optional[Relation]:
        return self._relations.get(pred_key(name, arity))

    def relation(self, name, arity: int) -> Relation:
        """Fetch a relation, creating it on first reference.

        Deductive programs create hundreds of small short-lived relations
        (paper Section 10), so creation-on-reference is the normal path.
        """
        return self.declare(name, arity)

    def exists(self, name, arity: int) -> bool:
        return pred_key(name, arity) in self._relations

    def drop(self, name, arity: int) -> bool:
        key = pred_key(name, arity)
        with self._catalog_lock:
            relation = self._relations.get(key)
            if relation is None:
                return False
            if self._journal is not None:
                self._journal.record_drop(key[0], arity, relation.copy_rows())
            del self._relations[key]
            self._version += 1
            return True

    def keys(self) -> Iterator[PredKey]:
        return iter(self._relations)

    def items(self) -> Iterator[Tuple[PredKey, Relation]]:
        return iter(self._relations.items())

    def sorted_keys(self) -> list:
        return sorted(self._relations, key=lambda key: (sort_key(key[0]), key[1]))

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, key) -> bool:
        if isinstance(key, tuple) and len(key) == 2 and isinstance(key[1], int):
            return pred_key(key[0], key[1]) in self._relations
        raise TypeError("membership test needs a (name, arity) pair")

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def fact(self, name, *values) -> bool:
        """Convenience: insert one ground fact, lifting Python values.

        ``db.fact("edge", 1, 2)`` inserts ``edge(1, 2)``.
        """
        from repro.terms.term import mk

        row = tuple(mk(v) for v in values)
        return self.relation(name, len(row)).insert(row)

    def facts(self, name, rows) -> int:
        """Insert many facts at once; returns the number genuinely new."""
        from repro.terms.term import mk

        inserted = 0
        for row in rows:
            values = tuple(mk(v) for v in row)
            if self.relation(name, len(values)).insert(values):
                inserted += 1
        return inserted
