"""Hash indexes over relation columns.

An index maps the projection of a tuple onto a fixed column set to the list
of matching tuples.  Indexes are maintained incrementally on insert/delete
and may be created lazily at run time by the adaptive policy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.terms.term import Term

Row = Tuple[Term, ...]


class HashIndex:
    """A hash index on a subset of a relation's columns.

    ``columns`` is a sorted tuple of 0-based column positions.
    """

    __slots__ = ("columns", "_buckets")

    def __init__(self, columns: Tuple[int, ...]):
        if not columns:
            raise ValueError("an index needs at least one column")
        if tuple(sorted(set(columns))) != tuple(columns):
            raise ValueError("index columns must be sorted and distinct")
        self.columns = columns
        self._buckets: dict = {}

    def key_of(self, row: Row) -> Row:
        return tuple(row[c] for c in self.columns)

    def add(self, row: Row) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(row)

    def remove(self, row: Row) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if not bucket:
            return
        try:
            bucket.remove(row)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def probe(self, key: Row) -> Iterator[Row]:
        """Yield rows whose projection equals ``key``."""
        return iter(self._buckets.get(key, ()))

    def bucket(self, key: Row) -> Sequence[Row]:
        """The rows whose projection equals ``key``, as a sized sequence.

        The hash-join evaluator needs ``len()`` of a probe result to charge
        cost counters without a second lookup.
        """
        return self._buckets.get(key, ())

    def probe_count(self, key: Row) -> int:
        return len(self._buckets.get(key, ()))

    def buckets_view(self) -> dict:
        """The live ``{key: rows}`` bucket mapping (read-only by contract).

        The parallel partitioner assigns whole buckets to partitions by
        hashing the bucket *keys* -- this accessor is what lets it do that
        without re-hashing any stored row.
        """
        return self._buckets

    def probe_many(self, keys: Iterable[Row]) -> Iterator[Row]:
        """Rows for a batch of keys, bucket by bucket (bulk bucket access).

        Callers pass distinct keys; the union is therefore duplicate-free.
        The keyed-update path uses this to collect all victim tuples of a
        ``+=[keys]`` statement in one pass over the key set.
        """
        buckets = self._buckets
        for key in keys:
            yield from buckets.get(key, ())

    def bulk_load(self, rows: Iterable[Row]) -> int:
        """Load all rows; returns the number loaded (the build cost in tuples)."""
        count = 0
        for row in rows:
            self.add(row)
            count += 1
        return count

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
