"""Directory-of-TSV persistence: one ``<name>.facts`` file per relation.

A second on-disk format next to the single-file dump of
:mod:`repro.storage.persist`, convenient for bulk data exchange (the
layout Datalog practitioners know from Soufflé).  Each relation becomes
``<mangled-name>.arity.facts`` with one tab-separated ground term per
column; terms are written in surface syntax, so compound values and
quoted atoms survive.

Tabs and newlines inside atoms are no problem: such atoms print quoted
with escape sequences, never raw control characters.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional, Tuple

from repro.storage.database import Database
from repro.terms.printer import term_to_str
from repro.terms.term import Term

_SAFE_NAME = re.compile(r"[A-Za-z0-9_]+\Z")


def _file_stem(name: Term, arity: int) -> str:
    """A filesystem-safe stem for a relation name term.

    Plain identifier atoms map to themselves; anything else (quoted atoms,
    compound HiLog names) is percent-encoded from its surface syntax.
    """
    text = term_to_str(name)
    if _SAFE_NAME.match(text):
        return f"{text}.{arity}"
    encoded = "".join(
        ch if ch.isalnum() or ch == "_" else f"%{ord(ch):02x}" for ch in text
    )
    return f"{encoded}.{arity}"


def _decode_stem(stem: str) -> Tuple[Term, int]:
    from repro.lang.parser import parse_term

    base, _, arity_text = stem.rpartition(".")
    decoded = re.sub(r"%([0-9a-f]{2})", lambda m: chr(int(m.group(1), 16)), base)
    return parse_term(decoded), int(arity_text)


def save_tsv_dir(db: Database, directory: str) -> int:
    """Write every relation of ``db`` as ``directory/<name>.<arity>.facts``.

    Returns the number of fact rows written.  Existing ``.facts`` files for
    relations no longer in the database are left untouched (the caller owns
    the directory's lifecycle).
    """
    os.makedirs(directory, exist_ok=True)
    count = 0
    for name, arity in db.sorted_keys():
        relation = db.get(name, arity)
        path = os.path.join(directory, _file_stem(name, arity) + ".facts")
        with open(path, "w", encoding="utf-8") as handle:
            for row in relation.sorted_rows():
                handle.write("\t".join(term_to_str(v) for v in row) + "\n")
                count += 1
    return count


def load_tsv_dir(directory: str, db: Optional[Database] = None) -> Database:
    """Load every ``*.facts`` file in ``directory`` into ``db`` (or a new DB)."""
    from repro.lang.parser import parse_term

    if db is None:
        db = Database()
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".facts"):
            continue
        stem = filename[: -len(".facts")]
        name, arity = _decode_stem(stem)
        relation = db.relation(name, arity)
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line and arity > 0:
                    continue
                fields = line.split("\t") if arity > 0 else []
                if len(fields) != arity:
                    raise ValueError(
                        f"{path}:{lineno}: expected {arity} fields, got {len(fields)}"
                    )
                try:
                    row = tuple(parse_term(field) for field in fields)
                except Exception as exc:
                    raise ValueError(f"{path}:{lineno}: bad term: {exc}") from exc
                relation.insert(row)
    return db
