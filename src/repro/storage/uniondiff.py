"""The ``uniondiff`` operator (paper Section 10, citing the Aditi work).

``uniondiff(target, delta)`` adds the rows of ``delta`` to ``target`` and
returns exactly those rows that were genuinely new -- the union and the
difference in a single pass.  This is the primitive that makes compiled
recursive NAIL! queries (seminaive evaluation) efficient: each iteration's
delta is computed without a separate set-difference scan.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.storage.relation import Relation
from repro.terms.term import Term

Row = Tuple[Term, ...]


def uniondiff(target: Relation, delta: Iterable[Row]) -> List[Row]:
    """Insert ``delta`` into ``target``; return the rows that were new.

    The returned list preserves the first-occurrence order of new rows and
    contains no duplicates, even when ``delta`` itself repeats rows.
    """
    insert_new = getattr(target, "insert_new", None)
    if insert_new is not None:
        # The relation's bulk-load path: one version bump per batch.
        return insert_new(delta)
    new_rows: List[Row] = []
    for row in delta:
        if target.insert(row):
            new_rows.append(row)
    return new_rows
