"""Cost counters shared by the storage layer and the virtual machine.

The paper's evaluation claims (Section 9/10) are about *costs* -- tuples
loaded and stored across pipeline breaks, duplicate-elimination work, scan
vs. index trade-offs -- so every storage and execution primitive reports
into one of these counter blocks.  Benchmarks read them to regenerate the
paper's qualitative tables.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import FrozenSet, Mapping, Optional, Tuple


@dataclass
class CostCounters:
    """Abstract work counters (not wall-clock): deterministic across runs."""

    tuples_scanned: int = 0
    index_lookups: int = 0
    index_probe_tuples: int = 0
    index_builds: int = 0
    index_build_tuples: int = 0
    inserts: int = 0
    duplicate_inserts: int = 0
    deletes: int = 0
    materializations: int = 0
    materialized_tuples: int = 0
    pipeline_breaks: int = 0
    dedup_removed: int = 0
    proc_calls: int = 0
    dynamic_dispatches: int = 0  # per-row run-time predicate-class checks
    # Glue VM statement bodies executed as planned hash joins: one count
    # per (scan step, resolved source) that probed a hash table instead of
    # matching per accumulated row (see repro.vm.plan).
    glue_hash_joins: int = 0
    # IDB cache maintenance (see repro.nail.engine): strata served from
    # cache, strata repaired by delta propagation (with the seminaive
    # rounds that took), and strata discarded for full recomputation.
    idb_cache_hits: int = 0
    idb_delta_repairs: int = 0
    idb_delta_rounds: int = 0
    idb_invalidations: int = 0
    # Delta-precision losses: an EDB change log overflowed (or the
    # relation was dropped) so exact per-row deltas were unavailable and
    # dependent strata had to be rebuilt from scratch.  Subscribers over
    # those predicates fall back to snapshot diffing or a resync event.
    idb_resyncs: int = 0
    # Push-based subscriptions (see repro.sub): notifications delivered to
    # subscriber sinks/queues, including resync markers.
    notifications_pushed: int = 0
    # Partition-parallel execution (see repro.par): joins that ran split
    # across the worker pool, and the partition tasks dispatched for them.
    parallel_joins: int = 0
    parallel_tasks: int = 0
    # MVCC snapshot reads (see repro.mvcc): read-only requests served from
    # a pinned published version (no read-lock acquisition), catalog pins
    # taken, and requests that had to fall back to the read lock because
    # no published catalog was available mid-window.
    snapshot_reads: int = 0
    snapshot_pins: int = 0
    snapshot_fallbacks: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def as_tuple(self) -> tuple:
        """A cheap positional snapshot (field order of ``COUNTER_FIELDS``).

        The tracer takes these at span boundaries, so this avoids building
        a dict per instrumentation point.
        """
        return tuple(getattr(self, name) for name in COUNTER_FIELDS)

    def __add__(self, other: "CostCounters") -> "CostCounters":
        merged = CostCounters()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def merge(self, other) -> None:
        """Fold another counter block (or an ``as_tuple`` snapshot, or a
        ``counter_delta`` dict) into this one, in place.

        This is the worker-fold primitive for partition-parallel execution
        (see :mod:`repro.par`): each pool worker counts into its own
        thread-local block, and the coordinating thread merges the
        per-task deltas back so the query's before/after accounting holds.
        The caller is responsible for any locking; :class:`CostCounters`
        itself is not synchronized.
        """
        if isinstance(other, tuple):
            for name, value in zip(COUNTER_FIELDS, other):
                if value:
                    setattr(self, name, getattr(self, name) + value)
        elif isinstance(other, dict):
            for name, value in other.items():
                if value:
                    setattr(self, name, getattr(self, name) + value)
        else:
            for name in COUNTER_FIELDS:
                value = getattr(other, name)
                if value:
                    setattr(self, name, getattr(self, name) + value)

    @property
    def total_tuple_touches(self) -> int:
        """A single scalar for who-wins comparisons: every tuple load/store."""
        return (
            self.tuples_scanned
            + self.index_probe_tuples
            + self.index_build_tuples
            + self.inserts
            + self.deletes
            + self.materialized_tuples
        )


COUNTER_FIELDS: tuple = tuple(f.name for f in fields(CostCounters))


class ThreadLocalCounters:
    """A :class:`CostCounters` facade that isolates counting per thread.

    The query server shares one :class:`~repro.storage.database.Database`
    between concurrent sessions; with a single counter block, two
    overlapping queries corrupt each other's before/after deltas (and lose
    increments outright on the read-modify-write).  Installing this object
    as ``Database(counters=...)`` gives every thread -- hence every server
    session, which is pinned to its connection thread -- a private
    :class:`CostCounters`, while :meth:`aggregate` still answers
    whole-server questions.

    The facade is attribute-compatible with :class:`CostCounters`:
    ``counters.inserts += 1``, ``as_tuple()``, ``snapshot()``, ``reset()``
    and ``total_tuple_touches`` all resolve against the calling thread's
    block, so instrumentation sites need no changes.
    """

    def __init__(self):
        object.__setattr__(self, "_tls", threading.local())
        object.__setattr__(self, "_blocks", [])
        object.__setattr__(self, "_lock", threading.Lock())

    def _mine(self) -> CostCounters:
        block = getattr(self._tls, "block", None)
        if block is None:
            block = CostCounters()
            self._tls.block = block
            with self._lock:
                self._blocks.append(block)
        return block

    def __getattr__(self, name):
        # Only reached for names not defined on the class: counter fields,
        # CostCounters methods and properties.
        return getattr(self._mine(), name)

    def __setattr__(self, name, value):
        setattr(self._mine(), name, value)

    def aggregate(self) -> CostCounters:
        """The sum over every thread's block (a snapshot copy)."""
        total = CostCounters()
        with self._lock:
            blocks = list(self._blocks)
        for block in blocks:
            total = total + block
        return total

    def merge(self, other) -> None:
        """Merge another block/snapshot into the *calling thread's* block."""
        self._mine().merge(other)

    def reset_all(self) -> None:
        """Reset every thread's block (``reset()`` is per-thread)."""
        with self._lock:
            blocks = list(self._blocks)
        for block in blocks:
            block.reset()


def counter_delta(before: tuple, after: tuple) -> dict:
    """Full per-counter difference of two ``as_tuple`` snapshots."""
    return {name: after[i] - before[i] for i, name in enumerate(COUNTER_FIELDS)}


def nonzero_delta(before: tuple, after: tuple) -> dict:
    """Like :func:`counter_delta` but only the counters that moved."""
    out = {}
    for i, name in enumerate(COUNTER_FIELDS):
        diff = after[i] - before[i]
        if diff:
            out[name] = diff
    return out


@dataclass
class ScanCostLedger:
    """Per-(relation, column-set) record of cumulative scanning cost.

    Drives the adaptive index policy: the ledger accumulates the cost of
    selections answered by scanning, and the policy compares it against the
    cost of building an index on those columns.
    """

    cumulative_scan_cost: float = 0.0
    scans: int = 0

    def record_scan(self, tuples: int) -> None:
        self.cumulative_scan_cost += tuples
        self.scans += 1


@dataclass
class CardinalityProfile:
    """Per-column distinct-value sets backing the planner's selectivity
    estimates.

    Maintained off the relation's version counter and change log: a profile
    built at version ``v`` is refreshed by replaying the net row changes
    since ``v``.  Insert-only nets extend the value sets in place; nets
    containing deletes (or an exhausted change-log window) force a rebuild,
    since a distinct count cannot be decremented without per-value counts.
    """

    version: int = -1
    column_values: Optional[list] = None  # one set of values per column

    def distincts(self) -> Tuple[int, ...]:
        return tuple(len(values) for values in self.column_values or ())


@dataclass
class RelationStats:
    """Per-relation bookkeeping used by adaptive optimization."""

    ledgers: dict = field(default_factory=dict)  # tuple[int, ...] -> ScanCostLedger
    profile: Optional[CardinalityProfile] = None

    def ledger(self, columns: tuple) -> ScanCostLedger:
        entry = self.ledgers.get(columns)
        if entry is None:
            entry = ScanCostLedger()
            self.ledgers[columns] = entry
        return entry


@dataclass(frozen=True)
class RelationSnapshot:
    """One consistent, planner-facing read of a relation's statistics.

    Built by :meth:`~repro.storage.relation.Relation.stats_snapshot` in a
    single acquisition of the relation's index lock, so the cardinality,
    distinct counts, scan-cost ledgers and available indexes all describe
    the same instant.  (The planner previously consulted these fields one
    by one while adaptive index builds were mutating them from concurrent
    read paths.)  ``scan_costs`` maps a column set to its ledger reading
    ``(cumulative_scan_cost, scans)``.
    """

    name: object
    arity: int
    rows: int
    version: int = -1
    distincts: Optional[Tuple[int, ...]] = None
    indexed: FrozenSet[Tuple[int, ...]] = frozenset()
    scan_costs: Mapping = field(default_factory=dict)

    def distinct(self, col: int) -> Optional[int]:
        if self.distincts is None or not 0 <= col < len(self.distincts):
            return None
        return self.distincts[col]

    def est_matches(self, probe_cols: Tuple[int, ...]) -> float:
        """Expected rows matching one probe key on ``probe_cols``, under
        uniform value frequencies and independent columns:
        ``rows / prod(distinct(c))``."""
        est = float(self.rows)
        for col in probe_cols:
            d = self.distinct(col)
            if d:
                est /= d
        return est
