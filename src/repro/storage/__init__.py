"""The Glue-Nail relational back end (paper Section 10).

A single-user, main-memory storage manager tailored to deductive-database
workloads: many small, short-lived relations, no concurrency control, EDB
relations persisted to disk between runs, a ``uniondiff`` operator to
support compiled recursive queries, and adaptive run-time index creation
("an index could be created for a relation after the cumulative cost of
selection by scanning the relation reaches the cost of creating the
index").
"""

from repro.storage.stats import CostCounters, ThreadLocalCounters
from repro.storage.index import HashIndex
from repro.storage.adaptive import AdaptiveIndexPolicy, AlwaysIndexPolicy, NeverIndexPolicy
from repro.storage.relation import Relation
from repro.storage.uniondiff import uniondiff
from repro.storage.database import Database, PredKey, pred_key
from repro.storage.persist import load_database, save_database
from repro.storage.tsvdir import load_tsv_dir, save_tsv_dir

__all__ = [
    "AdaptiveIndexPolicy",
    "AlwaysIndexPolicy",
    "CostCounters",
    "Database",
    "HashIndex",
    "NeverIndexPolicy",
    "PredKey",
    "Relation",
    "ThreadLocalCounters",
    "load_database",
    "load_tsv_dir",
    "pred_key",
    "save_database",
    "save_tsv_dir",
    "uniondiff",
]
