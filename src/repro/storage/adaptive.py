"""Adaptive run-time index creation (paper Section 10).

    "the back end will employ adaptive optimization techniques that select
    appropriate storage structures and access methods at run-time based on
    changing properties of the database and patterns of access.  For
    example, an index could be created for a relation after the cumulative
    cost of selection by scanning the relation reaches the cost of creating
    the index."

The policy sees, for each (relation, bound-column-set) pair, the cumulative
cost of selections answered by scanning, and decides when to amortize an
index build.  Two degenerate policies -- never index, always index -- serve
as the baselines for experiment E5.
"""

from __future__ import annotations

from repro.storage.stats import ScanCostLedger


class IndexPolicy:
    """Interface: decide whether to build an index for a column set now."""

    def should_build(self, ledger: ScanCostLedger, relation_size: int) -> bool:
        raise NotImplementedError


class AdaptiveIndexPolicy(IndexPolicy):
    """Build once cumulative scan cost reaches the index-build cost.

    The build cost is modeled as ``build_factor * relation_size +
    build_constant`` tuple-touches; the cumulative scan cost is the total
    number of tuples examined by scans that an index would have avoided.
    With the defaults, after roughly one full scan's worth of wasted work
    the index pays for itself -- the paper's stated crossover rule.
    """

    def __init__(self, build_factor: float = 1.0, build_constant: float = 0.0):
        if build_factor <= 0:
            raise ValueError("build_factor must be positive")
        self.build_factor = build_factor
        self.build_constant = build_constant

    def build_cost(self, relation_size: int) -> float:
        return self.build_factor * relation_size + self.build_constant

    def should_build(self, ledger: ScanCostLedger, relation_size: int) -> bool:
        if relation_size == 0:
            return False
        return ledger.cumulative_scan_cost >= self.build_cost(relation_size)


class NeverIndexPolicy(IndexPolicy):
    """Baseline: always answer selections by scanning."""

    def should_build(self, ledger: ScanCostLedger, relation_size: int) -> bool:
        return False


class AlwaysIndexPolicy(IndexPolicy):
    """Baseline: build an index on the first selection, however small."""

    def should_build(self, ledger: ScanCostLedger, relation_size: int) -> bool:
        return relation_size > 0
