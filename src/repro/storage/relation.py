"""Duplicate-free, main-memory relations over ground tuples.

Relations are the single data structure of Glue-Nail: the EDB, procedure
local relations, supplementary relations and IDB results are all instances
of this class.  Tuples must be completely ground (paper Section 2), which
is enforced on insert; predicates do not have duplicates, which the storage
representation guarantees by construction.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage.adaptive import IndexPolicy
from repro.storage.index import HashIndex
from repro.storage.stats import (
    CardinalityProfile,
    CostCounters,
    RelationSnapshot,
    RelationStats,
)
from repro.terms.matching import Bindings, match_tuple, substitute
from repro.terms.term import Atom, Num, Term, Var, is_ground, sort_key

Row = Tuple[Term, ...]

# Monotone id assigned to every Relation instance: lets a cache tell a
# dropped-and-redeclared relation (fresh counter, same name) apart from the
# object it fingerprinted earlier.
_uid_lock = threading.Lock()
_next_uid = 0


def _fresh_uid() -> int:
    global _next_uid
    with _uid_lock:
        _next_uid += 1
        return _next_uid


class ChangeLog:
    """A bounded journal of row-level changes since a version.

    Entries are ``(version_after, kind, rows)`` with kind ``"+"`` (rows
    genuinely inserted) or ``"-"`` (rows genuinely deleted).  The log is
    *windowed*: ``horizon`` is the oldest version the log can answer from;
    when the entry cap is exceeded the oldest entries are dropped and the
    horizon advances, so memory stays bounded and a reader that fell too
    far behind simply gets "unknown" (and recomputes from scratch).

    Tracking is opt-in (:meth:`Relation.track_changes`): relations nobody
    watches -- VM locals, supplementary relations -- pay only a ``None``
    check per mutation.
    """

    __slots__ = ("horizon", "entries", "max_entries")

    def __init__(self, horizon: int, max_entries: int = 1024):
        self.horizon = horizon
        self.entries: list = []  # (version_after, kind, tuple(rows))
        self.max_entries = max_entries

    def record(self, version: int, kind: str, rows) -> None:
        self.entries.append((version, kind, tuple(rows)))
        if len(self.entries) > self.max_entries:
            overflow = len(self.entries) - self.max_entries
            self.horizon = self.entries[overflow - 1][0]
            del self.entries[:overflow]

    def copy(self) -> "ChangeLog":
        """An independent copy (frozen-snapshot clones take one at freeze
        time, so a reader netting changes never races writer appends or
        the overflow compaction shifting ``entries`` indices)."""
        clone = ChangeLog(self.horizon, self.max_entries)
        clone.entries = list(self.entries)
        return clone

    def net_since(self, version: int):
        """Net row changes after ``version``: ``(inserted, deleted)`` lists,
        or ``None`` when the window no longer reaches back that far.

        Offsetting pairs cancel: a row inserted then deleted (or deleted
        then restored, e.g. by a transaction rollback) contributes nothing,
        so a rolled-back transaction nets to *no change at all*.
        """
        if version < self.horizon:
            return None
        # Entry versions are strictly increasing; bisect to the first entry
        # past ``version`` so a reader that polls every round (the planner's
        # column profile) pays for its delta, not the whole window.
        entries = self.entries
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] <= version:
                lo = mid + 1
            else:
                hi = mid
        first: dict = {}
        last: dict = {}
        for _entry_version, kind, rows in entries[lo:]:
            for row in rows:
                if row not in first:
                    first[row] = kind
                last[row] = kind
        inserted = []
        deleted = []
        for row, last_kind in last.items():
            if first[row] == "+" and last_kind == "+":
                inserted.append(row)  # absent before, present now
            elif first[row] == "-" and last_kind == "-":
                deleted.append(row)  # present before, absent now
            # "+..-" and "-..+" sequences net to zero.
        return inserted, deleted


class Relation:
    """A set of ground tuples of fixed arity, with optional hash indexes.

    ``name`` is a ground term (relation names may be compound HiLog terms
    such as ``students(cs99)``).  Insertion order is preserved for
    deterministic iteration; :meth:`sorted_rows` gives a canonical order.
    """

    def __init__(
        self,
        name: Term,
        arity: int,
        counters: Optional[CostCounters] = None,
        index_policy: Optional[IndexPolicy] = None,
        listener: Optional[Callable[["Relation"], None]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        if not is_ground(name):
            raise ValueError(f"relation name must be ground: {name}")
        self.name = name
        self.arity = arity
        self.counters = counters if counters is not None else CostCounters()
        self.index_policy = index_policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Optional mutation journal (transactions / write-ahead logging).
        # Relations outside a durable Database never pay more than one
        # attribute read per mutation for it.
        self.journal = None
        self.stats = RelationStats()
        self._rows: dict = {}  # Row -> None; dict preserves insertion order
        self._indexes: dict = {}  # tuple[int, ...] -> HashIndex
        # Guards index creation/lookup and the scan-cost ledgers: adaptive
        # index builds fire from *read* paths, which the query server runs
        # concurrently under its read lock.
        self._index_lock = threading.RLock()
        self._version = 0
        self._listener = listener
        self.uid = _fresh_uid()
        # Row-level change journal; None until a cache calls track_changes.
        self._changelog: Optional[ChangeLog] = None
        # The shared per-database columnar context (repro.col), set by
        # Database.declare; None for free-standing relations, which the
        # batch kernels then leave to the row engine.
        self.columnar = None
        # MVCC snapshot state (see repro.mvcc): while ``_rows_shared`` a
        # frozen clone aliases ``_rows``, so the next mutation copies the
        # dict first; ``_frozen`` caches the clone for the current version;
        # ``_immutable`` marks the clone itself (mutations are an error).
        self._rows_shared = False
        self._frozen: Optional["Relation"] = None
        self._immutable = False

    # ------------------------------------------------------------------ #
    # basic set operations
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Bumped on every successful mutation; drives ``unchanged(P)``."""
        return self._version

    @property
    def fingerprint(self) -> Tuple[int, int]:
        """``(uid, version)``: equal iff this is the same relation object in
        the same state -- the unit of IDB-cache invalidation."""
        return (self.uid, self._version)

    def track_changes(self) -> None:
        """Start journaling row-level changes (idempotent).

        After this call, :meth:`changes_since` can answer "what happened
        after version v" for any v at or past the current version.  The
        NAIL! engine enables tracking on the EDB relations in its
        dependency support sets so inserts can be propagated as seminaive
        deltas instead of triggering full recomputation.
        """
        if self._changelog is None:
            self._changelog = ChangeLog(self._version)

    def changes_since(self, version: int):
        """Net ``(inserted_rows, deleted_rows)`` after ``version``, or
        ``None`` when unknown (tracking off, or the window was exceeded)."""
        if self._changelog is None:
            return None
        if version > self._version:
            # The caller cached a NEWER state than this relation -- e.g. a
            # live query ran, then a pinned MVCC snapshot moved time
            # backwards.  Un-applying changes is not a delta we journal.
            return None
        return self._changelog.net_since(version)

    def _changed(self) -> None:
        self._version += 1
        if self._listener is not None:
            self._listener(self)

    # ------------------------------------------------------------------ #
    # immutable snapshots (MVCC read path, see repro.mvcc)
    # ------------------------------------------------------------------ #

    def _cow(self) -> None:
        """Copy-on-write barrier: detach from any frozen clone's rows.

        Called at the top of every mutation path.  A dict copy is one
        C-level pass over row pointers, paid once per written relation per
        frozen generation; unwritten relations never pay it.  The live
        indexes keep working unchanged -- they hold row tuples, not dict
        references -- while the clone (which starts with no indexes)
        builds its own lazily over the shared, now-immutable dict.
        """
        if self._immutable:
            raise ValueError(
                f"relation {self.name}/{self.arity} is a frozen snapshot; "
                "mutate the live relation instead"
            )
        if self._rows_shared:
            self._rows = dict(self._rows)
            self._rows_shared = False

    def freeze(self) -> "Relation":
        """An immutable snapshot of this relation at its current version.

        The clone shares this relation's row dict until the next mutation
        copies it (:meth:`_cow`), keeps the same ``uid`` and version --
        so fingerprint-keyed caches (the NAIL! engine's incremental IDB
        maintenance, columnar kernel tables) treat it as the same relation
        in the same state -- and carries a private copy of the change log,
        letting ``changes_since`` answer across published generations.
        Freezing also turns on change tracking on the *live* relation so
        the next generation's clone can answer incrementally.

        Repeated calls at an unchanged version return the cached clone,
        making whole-catalog snapshots cheap between writes.  The caller
        serializes freezes against mutations (the version store freezes
        only while no write window is open).
        """
        frozen = self._frozen
        if frozen is not None and frozen._version == self._version:
            return frozen
        self.track_changes()
        clone = Relation.__new__(Relation)
        clone.name = self.name
        clone.arity = self.arity
        clone.counters = self.counters
        clone.index_policy = self.index_policy
        clone.tracer = self.tracer
        clone.journal = None
        clone.stats = RelationStats()
        clone._rows = self._rows
        clone._indexes = {}
        clone._index_lock = threading.RLock()
        clone._version = self._version
        clone._listener = None
        clone.uid = self.uid
        clone._changelog = self._changelog.copy()
        clone.columnar = self.columnar
        clone._rows_shared = False
        clone._frozen = None
        clone._immutable = True
        self._rows_shared = True
        self._frozen = clone
        return clone

    def _check_row(self, row: Row) -> Row:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {len(row)}"
            )
        for value in row:
            cls = value.__class__
            if cls is Num or cls is Atom:
                continue  # ground by construction; skip the general walk
            if not isinstance(value, Term):
                raise TypeError(f"relation values must be Terms, got {type(value).__name__}")
            if not is_ground(value):
                raise ValueError(f"relations hold only ground tuples; got {value}")
        return row

    def insert(self, row: Row) -> bool:
        """Insert a tuple; returns True when it was genuinely new."""
        row = self._check_row(row)
        if row in self._rows:
            self.counters.duplicate_inserts += 1
            return False
        self._cow()
        self._rows[row] = None
        self.counters.inserts += 1
        for index in self._indexes.values():
            index.add(row)
        self._changed()
        self._profile_add((row,))
        if self._changelog is not None:
            self._changelog.record(self._version, "+", (row,))
        if self.journal is not None:
            self.journal.record_insert(self, row)
        return True

    def _profile_add(self, rows) -> None:
        """Keep a live column profile current across an insert.

        Growing the per-column distinct sets here costs the same set-adds
        the change-log replay in :meth:`column_profile` would pay later,
        but skips re-netting the log -- the planner's every-round refresh
        on seminaive-growing relations becomes a version check.  Deletes
        drop the profile instead (distinct counts cannot shrink a set).
        """
        profile = self.stats.profile
        if profile is not None and profile.column_values is not None:
            columns = profile.column_values
            for row in rows:
                for col, value in enumerate(row):
                    columns[col].add(value)
            profile.version = self._version

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Insert many rows through the :meth:`insert_new` bulk path.

        One version bump, one listener notification and one change-log
        entry per batch -- so columnar invalidation and subscriptions see
        a single delta per load instead of one per row.
        """
        return len(self.insert_new(rows))

    def insert_new(self, rows: Iterable[Row]) -> list:
        """Bulk-load: insert many rows, returning the genuinely new ones.

        Equivalent to calling :meth:`insert` per row (duplicates skipped,
        indexes maintained, journal notified per row) but with one version
        bump and one listener notification per batch -- the hot path behind
        ``uniondiff`` and IDB seeding, where the seminaive evaluator loads
        whole deltas at once.
        """
        self._cow()
        new: list = []
        append = new.append
        check = self._check_row
        stored = self._rows
        indexes = list(self._indexes.values())
        journal = self.journal
        duplicates = 0
        for row in rows:
            row = check(row)
            if row in stored:
                duplicates += 1
                continue
            stored[row] = None
            append(row)
            for index in indexes:
                index.add(row)
            if journal is not None:
                journal.record_insert(self, row)
        if duplicates:
            self.counters.duplicate_inserts += duplicates
        if new:
            self.counters.inserts += len(new)
            self._changed()
            self._profile_add(new)
            if self._changelog is not None:
                self._changelog.record(self._version, "+", new)
        return new

    def delete(self, row: Row) -> bool:
        row = tuple(row)
        if row not in self._rows:
            return False
        self._cow()
        del self._rows[row]
        self.counters.deletes += 1
        for index in self._indexes.values():
            index.remove(row)
        self.stats.profile = None  # distinct counts cannot shrink in place
        self._changed()
        if self._changelog is not None:
            self._changelog.record(self._version, "-", (row,))
        if self.journal is not None:
            self.journal.record_delete(self, row)
        return True

    def delete_many(self, rows: Iterable[Row]) -> int:
        # Materialize first: callers may pass iterators over this relation.
        return sum(1 for row in list(rows) if self.delete(row))

    def clear(self) -> None:
        if not self._rows:
            return
        self._cow()
        watched = self.journal is not None or self._changelog is not None
        dropped = list(self._rows) if watched else None
        self.counters.deletes += len(self._rows)
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        self.stats.profile = None
        self._changed()
        if self._changelog is not None:
            self._changelog.record(self._version, "-", dropped)
        if self.journal is not None:
            for row in dropped:
                self.journal.record_delete(self, row)

    def replace(self, rows: Iterable[Row]) -> None:
        """Clearing assignment ``:=``: overwrite the contents.

        Overwriting with the identical set of tuples is a no-op, so
        ``unchanged(P)`` (which watches the version counter) answers
        according to *content*, not syntactic re-assignment -- the reading
        the paper's repeat/until termination tests rely on.
        """
        new_rows = [self._check_row(row) for row in rows]
        new_set = dict.fromkeys(new_rows)
        if new_set.keys() == self._rows.keys():
            return
        self.clear()
        self.insert_many(new_set)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def rows(self) -> Iterator[Row]:
        return iter(self._rows)

    def sorted_rows(self) -> list:
        return sorted(self._rows, key=lambda row: tuple(sort_key(v) for v in row))

    def copy_rows(self) -> list:
        return list(self._rows)

    # ------------------------------------------------------------------ #
    # indexes and selection
    # ------------------------------------------------------------------ #

    def build_index(self, columns: Tuple[int, ...]) -> HashIndex:
        """Build (or return) a hash index on the given column positions."""
        columns = tuple(sorted(set(columns)))
        for c in columns:
            if not 0 <= c < self.arity:
                raise ValueError(f"index column {c} out of range for arity {self.arity}")
        with self._index_lock:
            existing = self._indexes.get(columns)
            if existing is not None:
                return existing
            index = HashIndex(columns)
            loaded = index.bulk_load(self._rows)
            self._indexes[columns] = index
        self.counters.index_builds += 1
        self.counters.index_build_tuples += loaded
        if self.tracer.enabled:
            self.tracer.event(
                "index_build",
                f"{self.name}/{self.arity} cols={list(columns)}",
                rows=loaded,
            )
        return index

    def probe_buckets(self, columns: Tuple[int, ...], keys: Iterable[Row]) -> list:
        """Bulk bucket access: all stored rows matching any of ``keys``.

        One index lookup is charged per key; callers pass distinct keys so
        the result is duplicate-free (rows live in exactly one bucket).
        """
        index = self.build_index(columns)
        keys = list(keys)
        hits = list(index.probe_many(keys))
        self.counters.index_lookups += len(keys)
        self.counters.index_probe_tuples += len(hits)
        return hits

    def has_index(self, columns: Tuple[int, ...]) -> bool:
        with self._index_lock:
            return tuple(sorted(set(columns))) in self._indexes

    @property
    def index_columns(self) -> list:
        with self._index_lock:
            return sorted(self._indexes)

    # ------------------------------------------------------------------ #
    # planner statistics
    # ------------------------------------------------------------------ #

    def column_profile(self) -> Tuple[int, ...]:
        """Per-column distinct-value counts, for selectivity estimates.

        The first call scans the relation once and turns on change
        tracking; later calls replay the change log's net inserts since the
        profiled version, so a relation that only grows (the seminaive
        common case) refreshes in time proportional to its delta.  Nets
        with deletes, or a log window that fell behind, rebuild -- but the
        O(rows) rebuild runs *outside* ``_index_lock`` (only the row-list
        copy is taken under it), so a post-delete stats read never stalls
        concurrent selections, index builds, or other planners' snapshot
        reads behind a full scan.
        """
        with self._index_lock:
            distincts = self._profile_refresh_locked()
            if distincts is not None:
                return distincts
            self.track_changes()
            version = self._version
            rows = list(self._rows)
        values = [set() for _ in range(self.arity)]
        for row in rows:
            for col, value in enumerate(row):
                values[col].add(value)
        with self._index_lock:
            if self._version == version:
                self.stats.profile = CardinalityProfile(
                    version=version, column_values=values
                )
            # A concurrent mutation slipped in: the computed counts still
            # describe a consistent instant, so answer from them without
            # installing a stale profile.
        return tuple(len(column) for column in values)

    def _profile_refresh_locked(self) -> Optional[Tuple[int, ...]]:
        """The cheap profile paths (version hit, insert-only log replay);
        None when a full rebuild is needed.  Caller holds ``_index_lock``."""
        profile = self.stats.profile
        if profile is not None and profile.column_values is not None:
            if profile.version == self._version:
                return profile.distincts()
            if self._changelog is not None:
                net = self._changelog.net_since(profile.version)
                if net is not None and not net[1]:
                    for row in net[0]:
                        for col, value in enumerate(row):
                            profile.column_values[col].add(value)
                    profile.version = self._version
                    return profile.distincts()
        return None

    def stats_snapshot(self) -> RelationSnapshot:
        """Everything the cost-based planner consults in one consistent
        read -- cardinality, distinct counts, scan-cost ledgers and
        available indexes.  The profile is refreshed first (a full rebuild,
        when one is due, runs outside ``_index_lock``); the remaining
        fields are then read in a single lock acquisition, so they describe
        one instant even while concurrent reads trigger adaptive index
        builds.  ``distincts`` may lag the reported ``version`` by whatever
        mutations landed during an unlocked rebuild -- an estimate-grade
        discrepancy the planner tolerates by design."""
        distincts = self.column_profile()
        with self._index_lock:
            scan_costs = {
                cols: (ledger.cumulative_scan_cost, ledger.scans)
                for cols, ledger in self.stats.ledgers.items()
            }
            return RelationSnapshot(
                name=self.name,
                arity=self.arity,
                rows=len(self._rows),
                version=self._version,
                distincts=distincts,
                indexed=frozenset(self._indexes),
                scan_costs=scan_costs,
            )

    def _bound_positions(self, patterns: Row) -> Tuple[int, ...]:
        return tuple(i for i, pat in enumerate(patterns) if is_ground(pat))

    def select(self, patterns: Iterable[Term], bindings: Optional[Mapping] = None) -> Iterator[Bindings]:
        """Match a subgoal's argument patterns against the stored tuples.

        Substitutes ``bindings`` into the patterns first, then yields one
        extended bindings dict per matching tuple.  Uses a hash index when
        one covers the bound positions; otherwise scans, charging the scan
        to the adaptive-index ledger which may trigger an index build for
        *future* selections.
        """
        base = dict(bindings) if bindings else {}
        patterns = tuple(substitute(p, base) for p in patterns)
        if len(patterns) != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {len(patterns)}"
            )
        if all(is_ground(p) for p in patterns):
            # Fully bound: a hash membership test, no scan at all.
            if patterns in self._rows:
                self.counters.index_probe_tuples += 1
                yield base
            return
        for row in self._candidate_rows(patterns):
            extended = match_tuple(patterns, row, base)
            if extended is not None:
                yield extended

    def count_matching(self, patterns: Iterable[Term], bindings: Optional[Mapping] = None) -> int:
        return sum(1 for _ in self.select(patterns, bindings))

    def match_rows(self, patterns: Row) -> Iterator[Row]:
        """Stored rows matching a *flat* pattern: every position is either a
        ground term (equality test) or an unconstrained variable.

        The fast path behind simple scans: no per-row bindings dict is
        built.  Callers (the compiler) guarantee flatness -- variables
        distinct and not nested inside compounds.
        """
        if len(patterns) != self.arity:
            raise ValueError(
                f"arity mismatch for {self.name}: expected {self.arity}, got {len(patterns)}"
            )
        checks = [
            (i, pattern)
            for i, pattern in enumerate(patterns)
            if not isinstance(pattern, Var)
        ]
        if len(checks) == self.arity:
            if patterns in self._rows:
                self.counters.index_probe_tuples += 1
                yield patterns
            return
        for row in self._candidate_rows(tuple(patterns)):
            if all(row[i] == value for i, value in checks):
                yield row

    def _candidate_rows(self, patterns: Row) -> Iterator[Row]:
        """Rows that could match fully-substituted ``patterns``."""
        bound = self._bound_positions(patterns)
        if not bound:
            self.counters.tuples_scanned += len(self._rows)
            yield from list(self._rows)
            return
        with self._index_lock:
            index = self._usable_index(bound)
            if index is None and self.index_policy is not None:
                ledger = self.stats.ledger(bound)
                if self.index_policy.should_build(ledger, len(self._rows)):
                    index = self.build_index(bound)
            if index is None:
                # Fall back to a scan; charge it to the adaptive ledger.
                self.stats.ledger(bound).record_scan(len(self._rows))
        if index is not None:
            key = tuple(patterns[c] for c in index.columns)
            self.counters.index_lookups += 1
            hits = list(index.probe(key))
            self.counters.index_probe_tuples += len(hits)
            yield from hits
            return
        self.counters.tuples_scanned += len(self._rows)
        yield from list(self._rows)

    def _usable_index(self, bound: Tuple[int, ...]) -> Optional[HashIndex]:
        """An index is usable when its columns are a subset of the bound ones.

        The exact-match index is preferred; otherwise the widest subset wins
        (it is the most selective).  Callers hold ``_index_lock``; the
        snapshot below keeps even an unlocked call safe from a concurrent
        build resizing the dict mid-iteration.
        """
        exact = self._indexes.get(bound)
        if exact is not None:
            return exact
        bound_set = set(bound)
        best = None
        for columns, index in list(self._indexes.items()):
            if set(columns) <= bound_set:
                if best is None or len(columns) > len(best.columns):
                    best = index
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name}/{self.arity} rows={len(self._rows)}>"
