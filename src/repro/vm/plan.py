"""Compiled plans: the instruction set of the Glue virtual machine.

A plan is a list of steps; each step transforms the stream of supplementary
rows (paper Section 3.2).  Steps are compiled closures over column
positions, so execution does no name lookups.  ``is_barrier`` marks the
steps that force a pipeline break (paper Section 9): procedure calls,
aggregators, and update subgoals.

Steps are executed by :class:`repro.vm.machine.Machine`; the ``rt``
parameter below is that machine (duck-typed to avoid an import cycle).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.scope import PredInfo
from repro.errors import GlueRuntimeError
from repro.glue.builtins import compare_terms
from repro.lang.ast import AssignStmt, ProcDecl, RuleDecl
from repro.terms.matching import match_tuple
from repro.terms.term import Term, is_ground

Row = Tuple[Term, ...]
RowFn = Callable[[Row], Term]
PatternFn = Callable[[Row], Tuple[Term, ...]]


@dataclass(frozen=True)
class PredRef:
    """A (possibly dynamic) reference to a predicate.

    ``pred`` may contain variables -- a HiLog predicate-variable subgoal --
    in which case ``info`` is None and ``candidates`` holds the
    compile-time narrowed candidate set.
    """

    pred: Term
    arity: int
    info: Optional[PredInfo] = None
    candidates: Tuple[PredInfo, ...] = ()

    @property
    def is_dynamic(self) -> bool:
        return not is_ground(self.pred)


@dataclass(frozen=True)
class StmtJoinShape:
    """The positional join shape of one scan step.

    Computed once at compile time by running the shared literal classifier
    (:func:`repro.nail.rules.classify_join_columns`) over the subgoal with
    the statement's already-bound columns as the bound-variable set, then
    mapping variable names onto supplementary-row positions.  At run time
    the step uses the shape to execute as a planned hash join -- build (or
    reuse) the stored side's persistent hash index once, probe it per
    supplementary row -- instead of re-matching the whole stored relation
    per accumulated row.

    ``key_build`` produces the probe key from an incoming row: each entry
    is ``(sup_position, None)`` for a bound variable or ``(None, const)``
    for a ground argument, listed in stored-column order.  ``probe_cols``
    are the corresponding stored-side columns (sorted, so they are directly
    a :class:`~repro.storage.index.HashIndex` column set).  ``covers_all``
    marks keys that determine the entire stored row (the probe degenerates
    to a membership test).  ``extract_cols`` is the flat extraction
    template -- stored positions in new-variable order -- or ``None`` when
    some argument is a compound containing variables (those keep general
    per-candidate matching).  ``eq_checks`` are repeated-fresh-variable
    equalities ``(col, first_col)`` checked on the stored row.
    ``residual_bound`` marks non-key arguments that mention bound
    variables (compounds), which make the probe pattern row-dependent.
    """

    key_build: Tuple[Tuple[Optional[int], Optional[Term]], ...]
    probe_cols: Tuple[int, ...]
    covers_all: bool
    extract_cols: Optional[Tuple[int, ...]]
    eq_checks: Tuple[Tuple[int, int], ...]
    residual_bound: bool


def _probe_key(key_build, row: Row) -> Row:
    return tuple(row[pos] if pos is not None else const for pos, const in key_build)


def _joinable_relation(relation):
    """The hashable Relation behind ``relation``, or None.

    ``resolve_relation`` may hand back a demand-driven NAIL! view that has
    no stored extension to index; such sources keep per-row ``select``.
    """
    if hasattr(relation, "build_index"):
        return relation
    joinable = getattr(relation, "joinable_relation", None)
    if joinable is not None:
        return joinable()
    return None


# The join strategies whose emit closures are pure per-row reads over
# prepared state -- safe to fan out across the worker pool.  Excluded:
# select/anti-select (may trigger demand-driven NAIL! evaluation),
# broadcast/anti-static (build shared lazy state on first call).
_PARALLEL_EMIT_STRATEGIES = frozenset(
    {"member", "probe", "probe+match", "scan+match"}
)
_PARALLEL_FILTER_STRATEGIES = frozenset(
    {"anti-member", "anti-probe", "anti-probe+match", "anti-scan+match"}
)


def _batched(rows, size: int):
    """Accumulate a row generator into lists of at most ``size`` rows."""
    batch: List[Row] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _parallel_emit(par, emit, batch, tracer, label, source_size):
    """Run ``emit`` over a batch split into contiguous chunks on the pool.

    Returns the per-row output lists in input order (the chunked split is
    order-preserving, which Glue's keyed-update semantics require), or
    None when the batch does not split into at least two chunks.
    """
    from repro.par import Partitioner

    parts = Partitioner(par.partition_count(len(batch))).chunk_split(batch)
    if len(parts) < 2:
        return None
    if tracer.enabled:
        tracer.event(
            "exchange",
            label,
            strategy="broadcast",
            source=source_size,
            bindings=len(batch),
            partitions=len(parts),
        )
    results = par.run_region(
        [(lambda chunk=chunk: [emit(row) for row in chunk]) for chunk in parts],
        label=label,
        tracer=tracer,
        strategy="chunked",
        partition_rows=[len(p) for p in parts],
    )
    out: List[list] = []
    for chunk_outs in results:
        out.extend(chunk_outs)
    return out


class Step:
    """Base class: a plan step."""

    is_barrier = False  # True -> forces materialization in pipelined mode

    # Non-barrier steps implement iterate(); barrier steps implement
    # materialize_apply() over a fully materialized row list.
    def iterate(self, rows: Iterable[Row], rt, frame) -> Iterator[Row]:
        raise NotImplementedError

    def materialize_apply(self, rows: List[Row], rt, frame) -> List[Row]:
        raise NotImplementedError


@dataclass
class ScanStep(Step):
    """Join the supplementary relation with a stored/derived relation.

    When the compiler proves the argument pattern *flat* (each position a
    constant, a bound variable, or a distinct fresh variable) it sets
    ``flat_extract`` to the stored-row positions of the new variables and
    the step skips the per-row bindings dict entirely.
    """

    ref: PredRef
    pattern_fn: PatternFn
    new_vars: Tuple[str, ...]
    name_fn: Optional[RowFn] = None  # dynamic predicate-name instantiation
    columns_out: Tuple[str, ...] = ()
    flat_extract: Optional[Tuple[int, ...]] = None
    join_shape: Optional[StmtJoinShape] = None
    est_rows: Optional[float] = None  # planner's output-size estimate

    def iterate(self, rows, rt, frame):
        if self.join_shape is not None and rt.ctx.join_mode == "hash":
            return self._iterate_hash(rows, rt, frame)
        return self._iterate_nested(rows, rt, frame)

    def _iterate_nested(self, rows, rt, frame):
        ref = self.ref
        static_rel = None
        if self.name_fn is None:
            static_rel = rt.resolve_relation(ref, ref.pred, frame)
        new_vars = self.new_vars
        extract = self.flat_extract
        for row in rows:
            if static_rel is None:
                relation = rt.resolve_relation(ref, self.name_fn(row), frame)
            else:
                relation = static_rel
            patterns = self.pattern_fn(row)
            if extract is not None and hasattr(relation, "match_rows"):
                for stored in relation.match_rows(patterns):
                    yield row + tuple(stored[i] for i in extract)
                continue
            for bindings in relation.select(patterns):
                yield row + tuple(bindings[v] for v in new_vars)

    def _iterate_hash(self, rows, rt, frame):
        """Planned set-at-a-time execution: one join state per resolved
        source (dynamic-name scans get one per distinct name), then a hash
        probe -- not a relation-wide match -- per supplementary row."""
        ref = self.ref
        name_fn = self.name_fn
        parallel = rt.ctx.parallel
        if parallel is not None and name_fn is None and parallel.active:
            # Static-name scans batch their supplementary rows and split
            # each batch across the worker pool; dynamic-name (HiLog)
            # scans stay serial -- see docs/PERFORMANCE.md.
            return self._iterate_hash_parallel(rows, rt, frame, parallel)
        return self._iterate_hash_serial(rows, rt, frame)

    def _iterate_hash_serial(self, rows, rt, frame):
        ref = self.ref
        name_fn = self.name_fn
        tracer = rt.ctx.tracer
        states: Dict[Term, list] = {}
        try:
            for row in rows:
                name = ref.pred if name_fn is None else name_fn(row)
                state = states.get(name)
                if state is None:
                    relation = rt.resolve_relation(ref, name, frame)
                    emit, strategy, source_size = self._join_state(relation, rt)
                    state = [emit, strategy, source_size, 0, 0]
                    states[name] = state
                state[3] += 1
                out = state[0](row)
                state[4] += len(out)
                yield from out
        finally:
            if tracer.enabled and states:
                # Unified join-event schema shared with the NAIL! body
                # evaluator: strategy, bindings, source, key, est vs actual.
                for name, (_e, strategy, source_size, rows_in, rows_out) in states.items():
                    tracer.event(
                        "join",
                        f"{name}/{ref.arity}",
                        rows=rows_out,
                        strategy=strategy,
                        bindings=rows_in,
                        source=source_size,
                        key=list(self.join_shape.probe_cols),
                        est_rows=self.est_rows,
                        actual_rows=rows_out,
                    )

    def _iterate_hash_parallel(self, rows, rt, frame, parallel):
        """Chunked set-at-a-time execution across the worker pool.

        The supplementary stream is gathered into batches; each batch of a
        partitionable strategy is split into contiguous chunks whose
        outputs are re-concatenated in input order, so downstream steps
        (including keyed updates, where collision order is semantics) see
        exactly the serial row sequence.
        """
        ref = self.ref
        tracer = rt.ctx.tracer
        # Join state is built on the first batch, like the serial path's
        # first-row initialization: an empty supplementary stream charges
        # nothing (same counters as serial).
        emit = strategy = source_size = None
        splittable = False
        label = f"{ref.pred}/{ref.arity}"
        rows_in = rows_out = 0
        split_used = False
        try:
            for batch in _batched(rows, parallel.glue_batch):
                if emit is None:
                    relation = rt.resolve_relation(ref, ref.pred, frame)
                    emit, strategy, source_size = self._join_state(relation, rt)
                    splittable = strategy in _PARALLEL_EMIT_STRATEGIES
                rows_in += len(batch)
                outs = None
                if splittable and len(batch) >= 2 * parallel.min_partition_rows:
                    outs = _parallel_emit(
                        parallel, emit, batch, tracer, label, source_size
                    )
                if outs is None:
                    for row in batch:
                        out = emit(row)
                        rows_out += len(out)
                        yield from out
                else:
                    split_used = True
                    for out in outs:
                        rows_out += len(out)
                        yield from out
        finally:
            if tracer.enabled and emit is not None:
                tracer.event(
                    "join",
                    label,
                    rows=rows_out,
                    strategy=strategy + "+chunked" if split_used else strategy,
                    bindings=rows_in,
                    source=source_size,
                    key=list(self.join_shape.probe_cols),
                    est_rows=self.est_rows,
                    actual_rows=rows_out,
                )

    def _join_state(self, relation, rt):
        """Pick a join strategy for one resolved source.

        Returns ``(emit(row) -> list[Row], strategy_name, source_size)``.
        Mirrors the NAIL! body evaluator's strategy menu (member / probe /
        probe+match / broadcast / scan+match), positionally compiled.
        """
        shape = self.join_shape
        counters = rt.ctx.counters
        new_vars = self.new_vars
        pattern_fn = self.pattern_fn
        target = _joinable_relation(relation)
        if target is None:
            # Demand-driven NAIL! view: no stored extension to hash.
            def select_rows(row):
                patterns = pattern_fn(row)
                return [
                    row + tuple(b[v] for v in new_vars)
                    for b in relation.select(patterns)
                ]

            return select_rows, "select", None
        counters.glue_hash_joins += 1
        key_build = shape.key_build
        eq_checks = shape.eq_checks
        extract = shape.extract_cols
        if shape.probe_cols:
            if shape.covers_all:
                # Fully determined flat pattern: membership test per row.
                def member(row):
                    if _probe_key(key_build, row) in target:
                        counters.index_probe_tuples += 1
                        return (row,)
                    return ()

                return member, "member", len(target)
            if (
                extract is not None
                and rt.ctx.batch_mode == "columnar"
                and hasattr(target, "uid")
            ):
                # Columnar kernel: the suffix table pre-applies eq-checks
                # and the extraction template once per (relation version,
                # shape), so the per-row work is one dict lookup plus a
                # concatenation.  Counter charges match the row probe
                # exactly: one lookup per row, probe tuples by raw bucket.
                table, cached = rt.ctx.db.columnar.glue_probe_table(target, shape)
                tracer = rt.ctx.tracer
                if tracer.enabled:
                    tracer.event(
                        "batch_kernel",
                        f"glue:{target.name}/{target.arity}",
                        kernel="probe",
                        batch=len(target),
                        cache="hit" if cached else "miss",
                        rows=sum(len(sfx) for _raw, sfx in table.values()),
                    )
                if len(key_build) == 1:
                    pos, const = key_build[0]
                    if pos is None:

                        def probe_const(row):
                            counters.index_lookups += 1
                            entry = table.get(const)
                            if entry is None:
                                return ()
                            raw, suffixes = entry
                            counters.index_probe_tuples += raw
                            return [row + sfx for sfx in suffixes]

                        return probe_const, "probe", len(target)

                    def probe_scalar(row):
                        counters.index_lookups += 1
                        entry = table.get(row[pos])
                        if entry is None:
                            return ()
                        raw, suffixes = entry
                        counters.index_probe_tuples += raw
                        return [row + sfx for sfx in suffixes]

                    return probe_scalar, "probe", len(target)

                def probe_wide(row):
                    counters.index_lookups += 1
                    entry = table.get(_probe_key(key_build, row))
                    if entry is None:
                        return ()
                    raw, suffixes = entry
                    counters.index_probe_tuples += raw
                    return [row + sfx for sfx in suffixes]

                return probe_wide, "probe", len(target)
            index = target.build_index(shape.probe_cols)
            if extract is not None:

                def probe(row):
                    hits = index.bucket(_probe_key(key_build, row))
                    counters.index_lookups += 1
                    counters.index_probe_tuples += len(hits)
                    if eq_checks:
                        return [
                            row + tuple(stored[c] for c in extract)
                            for stored in hits
                            if all(stored[c] == stored[c0] for c, c0 in eq_checks)
                        ]
                    return [row + tuple(stored[c] for c in extract) for stored in hits]

                return probe, "probe", len(target)

            def probe_match(row):
                hits = index.bucket(_probe_key(key_build, row))
                counters.index_lookups += 1
                counters.index_probe_tuples += len(hits)
                patterns = pattern_fn(row)
                out = []
                for stored in hits:
                    bindings = match_tuple(patterns, stored)
                    if bindings is not None:
                        out.append(row + tuple(bindings[v] for v in new_vars))
                return out

            return probe_match, "probe+match", len(target)
        if shape.residual_bound:
            # Compounds mention bound variables: the pattern is
            # row-dependent even without key columns.
            def scan_match(row):
                patterns = pattern_fn(row)
                counters.tuples_scanned += len(target)
                out = []
                for stored in target.rows():
                    bindings = match_tuple(patterns, stored)
                    if bindings is not None:
                        out.append(row + tuple(bindings[v] for v in new_vars))
                return out

            return scan_match, "scan+match", len(target)

        # No key columns and a row-independent pattern: compute the new
        # column fragments once and broadcast them across all rows.
        fragments = None

        def broadcast(row):
            nonlocal fragments
            if fragments is None:
                counters.tuples_scanned += len(target)
                fragments = []
                if extract is not None:
                    for stored in target.rows():
                        if eq_checks and not all(
                            stored[c] == stored[c0] for c, c0 in eq_checks
                        ):
                            continue
                        fragments.append(tuple(stored[c] for c in extract))
                else:
                    patterns = pattern_fn(row)
                    for stored in target.rows():
                        bindings = match_tuple(patterns, stored)
                        if bindings is not None:
                            fragments.append(tuple(bindings[v] for v in new_vars))
            return [row + fragment for fragment in fragments]

        return broadcast, "broadcast", len(target)


@dataclass
class NegScanStep(Step):
    """Anti-join: keep rows with no matching tuple (safe negation).

    ``flat`` marks patterns that need no real matching (every position
    ground or anonymous): the existence check is a membership test / a
    positional filter with no bindings dict.
    """

    ref: PredRef
    pattern_fn: PatternFn
    name_fn: Optional[RowFn] = None
    columns_out: Tuple[str, ...] = ()
    flat: bool = False
    join_shape: Optional[StmtJoinShape] = None
    est_rows: Optional[float] = None  # planner's output-size estimate

    def iterate(self, rows, rt, frame):
        if self.join_shape is not None and rt.ctx.join_mode == "hash":
            return self._iterate_hash(rows, rt, frame)
        return self._iterate_nested(rows, rt, frame)

    def _iterate_nested(self, rows, rt, frame):
        static_rel = None
        if self.name_fn is None:
            static_rel = rt.resolve_relation(self.ref, self.ref.pred, frame)
        for row in rows:
            relation = static_rel
            if relation is None:
                relation = rt.resolve_relation(self.ref, self.name_fn(row), frame)
            patterns = self.pattern_fn(row)
            if self.flat and hasattr(relation, "match_rows"):
                matched = next(iter(relation.match_rows(patterns)), None)
            else:
                matched = next(iter(relation.select(patterns)), None)
            if matched is None:
                yield row

    def _iterate_hash(self, rows, rt, frame):
        """Hash anti-join: keep rows whose probe finds no witness."""
        parallel = rt.ctx.parallel
        if parallel is not None and self.name_fn is None and parallel.active:
            return self._iterate_hash_parallel(rows, rt, frame, parallel)
        return self._iterate_hash_serial(rows, rt, frame)

    def _iterate_hash_serial(self, rows, rt, frame):
        ref = self.ref
        name_fn = self.name_fn
        tracer = rt.ctx.tracer
        states: Dict[Term, list] = {}
        try:
            for row in rows:
                name = ref.pred if name_fn is None else name_fn(row)
                state = states.get(name)
                if state is None:
                    relation = rt.resolve_relation(ref, name, frame)
                    survives, strategy, source_size = self._join_state(relation, rt)
                    state = [survives, strategy, source_size, 0, 0]
                    states[name] = state
                state[3] += 1
                if state[0](row):
                    state[4] += 1
                    yield row
        finally:
            if tracer.enabled and states:
                for name, (_s, strategy, source_size, rows_in, rows_out) in states.items():
                    tracer.event(
                        "join",
                        f"{name}/{ref.arity}",
                        rows=rows_out,
                        strategy=strategy,
                        bindings=rows_in,
                        source=source_size,
                        key=list(self.join_shape.probe_cols),
                        est_rows=self.est_rows,
                        actual_rows=rows_out,
                    )

    def _iterate_hash_parallel(self, rows, rt, frame, parallel):
        """Chunked anti-join: the ScanStep batching with a filter emit."""
        ref = self.ref
        tracer = rt.ctx.tracer
        # Lazily initialized on the first batch, like the serial path.
        survives = emit = strategy = source_size = None
        splittable = False
        label = f"{ref.pred}/{ref.arity}"
        rows_in = rows_out = 0
        split_used = False
        try:
            for batch in _batched(rows, parallel.glue_batch):
                if survives is None:
                    relation = rt.resolve_relation(ref, ref.pred, frame)
                    survives, strategy, source_size = self._join_state(relation, rt)
                    splittable = strategy in _PARALLEL_FILTER_STRATEGIES
                    emit = lambda row: (row,) if survives(row) else ()  # noqa: B023,E731
                rows_in += len(batch)
                outs = None
                if splittable and len(batch) >= 2 * parallel.min_partition_rows:
                    outs = _parallel_emit(
                        parallel, emit, batch, tracer, label, source_size
                    )
                if outs is None:
                    for row in batch:
                        if survives(row):
                            rows_out += 1
                            yield row
                else:
                    split_used = True
                    for out in outs:
                        rows_out += len(out)
                        yield from out
        finally:
            if tracer.enabled and survives is not None:
                tracer.event(
                    "join",
                    label,
                    rows=rows_out,
                    strategy=strategy + "+chunked" if split_used else strategy,
                    bindings=rows_in,
                    source=source_size,
                    key=list(self.join_shape.probe_cols),
                    est_rows=self.est_rows,
                    actual_rows=rows_out,
                )

    def _join_state(self, relation, rt):
        """Pick an anti-join strategy: ``(survives(row) -> bool, name, size)``."""
        shape = self.join_shape
        counters = rt.ctx.counters
        pattern_fn = self.pattern_fn
        target = _joinable_relation(relation)
        if target is None:
            def select_absent(row):
                patterns = pattern_fn(row)
                return next(iter(relation.select(patterns)), None) is None

            return select_absent, "anti-select", None
        counters.glue_hash_joins += 1
        key_build = shape.key_build
        eq_checks = shape.eq_checks
        flat = shape.extract_cols is not None  # no compound arguments
        if shape.probe_cols:
            if shape.covers_all:
                def absent(row):
                    if _probe_key(key_build, row) in target:
                        counters.index_probe_tuples += 1
                        return False
                    return True

                return absent, "anti-member", len(target)
            index = target.build_index(shape.probe_cols)
            if flat:

                def anti_probe(row):
                    hits = index.bucket(_probe_key(key_build, row))
                    counters.index_lookups += 1
                    counters.index_probe_tuples += len(hits)
                    if not eq_checks:
                        return not hits
                    for stored in hits:
                        if all(stored[c] == stored[c0] for c, c0 in eq_checks):
                            return False
                    return True

                return anti_probe, "anti-probe", len(target)

            def anti_probe_match(row):
                hits = index.bucket(_probe_key(key_build, row))
                counters.index_lookups += 1
                counters.index_probe_tuples += len(hits)
                patterns = pattern_fn(row)
                return not any(match_tuple(patterns, s) is not None for s in hits)

            return anti_probe_match, "anti-probe+match", len(target)
        if shape.residual_bound:

            def anti_scan(row):
                patterns = pattern_fn(row)
                counters.tuples_scanned += len(target)
                return not any(
                    match_tuple(patterns, s) is not None for s in target.rows()
                )

            return anti_scan, "anti-scan+match", len(target)

        # Row-independent pattern: one existence test serves every row.
        verdict = None

        def anti_static(row):
            nonlocal verdict
            if verdict is None:
                counters.tuples_scanned += len(target)
                patterns = pattern_fn(row)
                verdict = not any(
                    match_tuple(patterns, s) is not None for s in target.rows()
                )
            return verdict

        return anti_static, "anti-static", len(target)


@dataclass
class CompareStep(Step):
    """A comparison filter: ``left op right`` over bound expressions."""

    op: str
    left_fn: RowFn
    right_fn: RowFn
    columns_out: Tuple[str, ...] = ()

    def iterate(self, rows, rt, frame):
        op, left_fn, right_fn = self.op, self.left_fn, self.right_fn
        for row in rows:
            if compare_terms(op, left_fn(row), right_fn(row)):
                yield row


@dataclass
class BindStep(Step):
    """``Var = expr`` with Var unbound: extend each row with the value."""

    var: str
    fn: RowFn
    columns_out: Tuple[str, ...] = ()

    def iterate(self, rows, rt, frame):
        fn = self.fn
        for row in rows:
            yield row + (fn(row),)


@dataclass
class TruthStep(Step):
    """The literal ``true`` (identity) or ``false`` (annihilator)."""

    value: bool
    columns_out: Tuple[str, ...] = ()

    def iterate(self, rows, rt, frame):
        if self.value:
            yield from rows


@dataclass
class GroupByStep(Step):
    """``group_by(...)``: a compile-time partition marker.

    The grouping columns are baked into the following aggregate steps, so
    at run time this step is the identity; it exists in the plan so costs
    and explanations show where the partition happens.
    """

    group_cols: Tuple[str, ...] = ()
    columns_out: Tuple[str, ...] = ()

    def iterate(self, rows, rt, frame):
        yield from rows


@dataclass
class AggStep(Step):
    """An aggregation subgoal (barrier; paper Sections 3.3 and 9).

    Computes ``agg_op`` over the per-tuple values of ``arg_fn`` within each
    group (``group_positions`` select the grouping columns fixed by earlier
    group_by subgoals).  If ``binds`` the result extends each row as a new
    column; otherwise rows are filtered by ``compare_op(left_fn(row), agg)``.
    """

    agg_op: str
    arg_fn: RowFn
    binds: bool
    compare_op: str = "="
    left_fn: Optional[RowFn] = None
    group_positions: Tuple[int, ...] = ()
    columns_out: Tuple[str, ...] = ()

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        from repro.glue.aggregates import apply_aggregate

        if not rows:
            return []
        # Aggregation is over the supplementary *relation*: dedup first.
        rows = list(dict.fromkeys(rows))
        groups: Dict[Row, List[Row]] = {}
        for row in rows:
            key = tuple(row[p] for p in self.group_positions)
            groups.setdefault(key, []).append(row)
        agg_of: Dict[Row, Term] = {
            key: apply_aggregate(self.agg_op, [self.arg_fn(r) for r in members])
            for key, members in groups.items()
        }
        out: List[Row] = []
        if self.binds:
            for row in rows:
                key = tuple(row[p] for p in self.group_positions)
                out.append(row + (agg_of[key],))
            return out
        for row in rows:
            key = tuple(row[p] for p in self.group_positions)
            if compare_terms(self.compare_op, self.left_fn(row), agg_of[key]):
                out.append(row)
        return out


@dataclass
class CallStep(Step):
    """A call to a Glue procedure, builtin or foreign procedure (barrier).

    "When a Glue procedure is used as a subgoal it is called once on all of
    the bindings for its input arguments" (paper Section 4): the step
    projects the supplementary rows onto the input arguments, calls the
    procedure once, and joins the result back.
    """

    ref: PredRef
    input_fns: Tuple[RowFn, ...]
    free_pattern_fn: PatternFn  # patterns for the output (free) arguments
    new_vars: Tuple[str, ...]
    columns_out: Tuple[str, ...] = ()
    fixed: bool = True

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        from repro.terms.matching import match_tuple

        if not rows:
            return []
        bound_arity = len(self.input_fns)
        inputs: Dict[Row, None] = {}
        input_of: List[Row] = []
        for row in rows:
            key = tuple(fn(row) for fn in self.input_fns)
            inputs[key] = None
            input_of.append(key)
        result_rows = rt.call_predicate(self.ref, list(inputs), frame)
        by_input: Dict[Row, List[Row]] = {}
        for res in result_rows:
            by_input.setdefault(tuple(res[:bound_arity]), []).append(res)
        out: List[Row] = []
        for row, key in zip(rows, input_of):
            for res in by_input.get(key, ()):
                free_patterns = self.free_pattern_fn(row)
                bindings = match_tuple(free_patterns, res[bound_arity:])
                if bindings is not None:
                    out.append(row + tuple(bindings[v] for v in self.new_vars))
        return out


@dataclass
class DynamicStep(Step):
    """A predicate-variable subgoal whose candidates include callables, so
    the class dispatch happens at run time (the un-optimized path; the
    compile-time dereferencing of paper Section 9 avoids this step whenever
    the candidate set contains only stored relations)."""

    ref: PredRef
    name_fn: RowFn
    pattern_fn: PatternFn
    new_vars: Tuple[str, ...]
    columns_out: Tuple[str, ...] = ()

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        out: List[Row] = []
        for row in rows:
            name = self.name_fn(row)
            relation = rt.resolve_relation(self.ref, name, frame, dynamic_dispatch=True)
            patterns = self.pattern_fn(row)
            for bindings in relation.select(patterns):
                out.append(row + tuple(bindings[v] for v in self.new_vars))
        return out


@dataclass
class UpdateStep(Step):
    """An EDB-updating body subgoal ``++p``/``--p`` (barrier).

    Inserts are ground per-row instantiations; deletes accept anonymous
    variables as wildcards and remove all matching tuples.
    """

    op: str  # "++" or "--"
    ref: PredRef
    pattern_fn: PatternFn
    name_fn: Optional[RowFn] = None
    columns_out: Tuple[str, ...] = ()

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        if not rows:
            return []
        # Apply each distinct instantiation once.
        seen = {}
        for row in rows:
            name = self.name_fn(row) if self.name_fn is not None else self.ref.pred
            seen[(name, self.pattern_fn(row))] = None
        for name, patterns in seen:
            relation = rt.resolve_relation(self.ref, name, frame, for_update=True)
            if self.op == "++":
                if not all(is_ground(p) for p in patterns):
                    raise GlueRuntimeError(f"++{name}: insert needs ground arguments")
                relation.insert(patterns)
            else:
                # Delete all tuples matching the (possibly wildcard) pattern.
                matches = [row_ for row_ in relation.rows() if _matches(patterns, row_)]
                relation.delete_many(matches)
        return rows


def _matches(patterns: Tuple[Term, ...], row: Row) -> bool:
    from repro.terms.matching import match_tuple

    return match_tuple(patterns, row) is not None


@dataclass
class EmptyStep(Step):
    """``empty(p(args))``: keep rows for which no tuple matches."""

    ref: PredRef
    pattern_fn: PatternFn
    name_fn: Optional[RowFn] = None
    columns_out: Tuple[str, ...] = ()

    def iterate(self, rows, rt, frame):
        static_rel = None
        if self.name_fn is None:
            static_rel = rt.resolve_relation(self.ref, self.ref.pred, frame)
        for row in rows:
            relation = static_rel
            if relation is None:
                relation = rt.resolve_relation(self.ref, self.name_fn(row), frame)
            patterns = self.pattern_fn(row)
            if next(iter(relation.select(patterns)), None) is None:
                yield row


@dataclass
class UnchangedStep(Step):
    """``unchanged(p(...))`` (barrier: its evaluation must happen exactly
    once per statement execution, and its answer depends on history).

    True when the relation's version equals the version recorded the last
    time *this occurrence* ran in *this frame*; always false on first run.
    """

    ref: PredRef
    columns_out: Tuple[str, ...] = ()

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        relation = rt.resolve_relation(self.ref, self.ref.pred, frame)
        key = id(self)
        previous = frame.unchanged_state.get(key)
        current = relation.version
        frame.unchanged_state[key] = current
        if previous is not None and previous == current:
            return rows
        return []


@dataclass
class UnionStep(Step):
    """A body disjunction ``{ c1 | c2 }`` (the footnote-5 extension).

    Each alternative is a sub-plan evaluated over the incoming rows; the
    results are unioned.  ``extract`` maps each alternative's final column
    layout onto the canonical new-variable order.
    """

    alternatives: List[Tuple[List[Step], Tuple[int, ...]]]
    new_vars: Tuple[str, ...] = ()
    columns_out: Tuple[str, ...] = ()

    is_barrier = True

    def materialize_apply(self, rows, rt, frame):
        width = len(self.columns_out) - len(self.new_vars)
        out: List[Row] = []
        for plan, extract in self.alternatives:
            for res in rt.run_plan_seeded(plan, rows, frame):
                out.append(res[:width] + tuple(res[i] for i in extract))
        return list(dict.fromkeys(out))


Plan = List[Step]


# --------------------------------------------------------------------- #
# compiled containers
# --------------------------------------------------------------------- #


@dataclass
class CompiledStmt:
    """One compiled assignment statement.

    ``reorder_input`` / ``ordered_body`` / ``variants`` support adaptive
    run-time re-optimization (paper Section 10): the machine may re-order
    the body by current relation cardinalities and cache a re-compiled
    variant per ordering.
    """

    plan: Plan
    head_ref: PredRef
    head_fns: Tuple[RowFn, ...]
    op: str  # ":=", "+=", "-=", "modify"
    key_positions: Tuple[int, ...] = ()
    head_name_fn: Optional[RowFn] = None
    is_return: bool = False
    fixed: bool = False
    columns_final: Tuple[str, ...] = ()
    source: Optional[AssignStmt] = None
    reorder_input: Optional[tuple] = None  # body after implicit-in prepend
    ordered_body: Optional[tuple] = None   # body order actually compiled
    source_scope: object = None            # compile-time Scope for variants
    source_proc: object = None             # enclosing ProcDecl (or None)
    variants: Dict[tuple, "CompiledStmt"] = field(default_factory=dict)
    # Serializes adaptive recompilation: concurrent sessions executing the
    # same compiled statement race on reading/populating ``variants`` and
    # on the (scope-mutating) recompile itself (see Machine._adapted_variant).
    variants_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )


@dataclass
class CompiledRepeat:
    """A compiled repeat/until loop."""

    body: List[object]  # CompiledStmt | CompiledRepeat
    until_alts: List[Plan]
    source: object = None


@dataclass
class CompiledProc:
    """A compiled Glue procedure."""

    module: Optional[str]
    name: str
    bound_params: Tuple[str, ...]
    free_params: Tuple[str, ...]
    locals: Tuple[Tuple[str, int], ...]
    body: List[object]
    fixed: bool = False
    exported: bool = False
    decl: Optional[ProcDecl] = None

    @property
    def arity(self) -> int:
        return len(self.bound_params) + len(self.free_params)

    @property
    def bound_arity(self) -> int:
        return len(self.bound_params)

    @property
    def key(self) -> Tuple[Optional[str], str, int]:
        return (self.module, self.name, self.arity)


@dataclass
class CompiledProgram:
    """A fully compiled Glue-Nail program."""

    procs: Dict[Tuple[Optional[str], str, int], CompiledProc] = field(default_factory=dict)
    exported: Dict[Tuple[str, int], CompiledProc] = field(default_factory=dict)
    rules: List[RuleDecl] = field(default_factory=list)
    script: List[object] = field(default_factory=list)  # loose compiled stmts
    edb_decls: List[Tuple[str, int]] = field(default_factory=list)
    #: ``watch`` declarations (active rules); the system facade registers
    #: them with its SubscriptionManager after compilation.
    watches: List[object] = field(default_factory=list)
    statement_count: int = 0
    compiler: object = None  # the ProgramCompiler, for run-time variants

    def find_proc(self, name: str, arity: int, module: Optional[str] = None) -> CompiledProc:
        if module is not None:
            proc = self.procs.get((module, name, arity))
            if proc is not None:
                return proc
        proc = self.exported.get((name, arity))
        if proc is not None:
            return proc
        matches = [p for key, p in self.procs.items() if key[1] == name and key[2] == arity]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise GlueRuntimeError(f"no procedure {name}/{arity}")
        raise GlueRuntimeError(f"ambiguous procedure {name}/{arity}; give a module")
