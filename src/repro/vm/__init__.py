"""The Glue virtual machine.

The experimental Glue-Nail implementation compiled programs "for a small
virtual machine" (paper Section 9).  Here the compiler turns each
assignment-statement body into a *plan*: a sequence of steps that transform
the supplementary relation left to right.  The machine executes plans with
either a pipelined (nested-join, tuple-at-a-time) strategy or a
materialized (set-at-a-time) strategy; fixed subgoals -- procedure calls,
aggregators, updates -- force pipeline breaks exactly as Section 9
describes, and every break is visible in the cost counters.
"""

from repro.vm.plan import (
    AggStep,
    BindStep,
    CallStep,
    CompareStep,
    CompiledProc,
    CompiledProgram,
    CompiledRepeat,
    CompiledStmt,
    DynamicStep,
    EmptyStep,
    GroupByStep,
    NegScanStep,
    PredRef,
    ScanStep,
    TruthStep,
    UnchangedStep,
    UpdateStep,
)
from repro.vm.compiler import ProgramCompiler, compile_program
from repro.vm.machine import ExecContext, Frame, Machine

__all__ = [
    "AggStep",
    "BindStep",
    "CallStep",
    "CompareStep",
    "CompiledProc",
    "CompiledProgram",
    "CompiledRepeat",
    "CompiledStmt",
    "DynamicStep",
    "EmptyStep",
    "ExecContext",
    "Frame",
    "GroupByStep",
    "Machine",
    "NegScanStep",
    "PredRef",
    "ProgramCompiler",
    "ScanStep",
    "TruthStep",
    "UnchangedStep",
    "UpdateStep",
    "compile_program",
]
