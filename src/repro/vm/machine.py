"""The Glue virtual machine: plan execution, procedures, repeat loops.

Two execution strategies (paper Section 9):

* ``pipelined`` -- the nested-join, tuple-at-a-time strategy of the
  experimental implementation.  Fixed subgoals (procedure calls,
  aggregators, updates) force pipeline breaks: the supplementary relation
  is materialized, optionally duplicate-eliminated, and the pipeline
  restarts after the barrier.
* ``materialized`` -- the textbook supplementary-relation strategy: each
  sup_i is fully computed (and deduplicated) before sup_{i+1} begins.

Both strategies produce identical head relations; the cost counters make
the trade-off measurable, which is what the paper's Section 9 observations
are about.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.scope import PredClass, pred_skeleton
from repro.errors import GlueRuntimeError
from repro.glue.builtins import BUILTIN_PROCS
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.stats import COUNTER_FIELDS, CostCounters
from repro.terms.term import Atom, Term
from repro.vm.plan import (
    CompiledProc,
    CompiledProgram,
    CompiledRepeat,
    CompiledStmt,
    Plan,
    PredRef,
    Row,
)

ForeignFn = Callable[["ExecContext", List[Row]], List[Row]]


@dataclass
class ForeignProc:
    """A Python function registered as a Glue procedure (the foreign
    language interface of paper Section 10, realised in Python)."""

    module: str
    name: str
    arity: int
    bound_arity: int
    fn: ForeignFn
    fixed: bool = True


class ExecContext:
    """Everything the machine needs at run time."""

    def __init__(
        self,
        db: Optional[Database] = None,
        strategy: str = "pipelined",
        dedup_on_break: bool = True,
        out=None,
        inp=None,
        max_loop_iterations: int = 1_000_000,
        adaptive_reorder: bool = False,
        join_mode: str = "hash",
        order_mode: str = "cost",
        parallel=None,
        batch_mode: str = "columnar",
    ):
        if strategy not in ("pipelined", "materialized"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if join_mode not in ("hash", "nested"):
            raise ValueError(f"unknown join mode {join_mode!r}")
        if order_mode not in ("cost", "program"):
            raise ValueError(f"unknown order mode {order_mode!r}")
        if batch_mode not in ("columnar", "row"):
            raise ValueError(f"unknown batch mode {batch_mode!r}")
        self.db = db if db is not None else Database()
        self.counters: CostCounters = self.db.counters
        # A repro.par.ParallelContext (or None): statement-body joins split
        # large supplementary batches across its worker pool.
        self.parallel = parallel
        self.strategy = strategy
        self.dedup_on_break = dedup_on_break
        self.out = out if out is not None else sys.stdout
        self.inp = inp if inp is not None else sys.stdin
        self.max_loop_iterations = max_loop_iterations
        self.adaptive_reorder = adaptive_reorder
        self.join_mode = join_mode
        self.order_mode = order_mode
        # "columnar" precomputes cached suffix tables for hash-join scan
        # steps (repro.col); "row" is the per-probe baseline.
        self.batch_mode = batch_mode
        self.tracer = self.db.tracer
        self.foreign: Dict[Tuple[str, int], ForeignProc] = {}
        self.nail_engine = None  # wired by repro.core.system

    def register_foreign(self, proc: ForeignProc) -> None:
        self.foreign[(proc.name, proc.arity)] = proc


class Frame:
    """One procedure invocation: local relations, in/return, loop state.

    "Each invocation of a procedure has its own copies of its local
    relations" (paper Section 4).
    """

    __slots__ = ("proc", "locals", "in_rel", "return_rel", "unchanged_state")

    def __init__(self, proc: Optional[CompiledProc], ctx: ExecContext):
        self.proc = proc
        self.locals: Dict[Tuple[str, int], Relation] = {}
        self.unchanged_state: Dict[int, int] = {}
        if proc is not None:
            for name, arity in proc.locals:
                self.locals[(name, arity)] = Relation(
                    Atom(name), arity, counters=ctx.counters, tracer=ctx.tracer
                )
            self.in_rel = Relation(
                Atom("in"), proc.bound_arity, counters=ctx.counters, tracer=ctx.tracer
            )
            self.return_rel = Relation(
                Atom("return"), proc.arity, counters=ctx.counters, tracer=ctx.tracer
            )
        else:
            self.in_rel = None
            self.return_rel = None


class _ReturnSignal(Exception):
    """Raised when a statement assigns to ``return``: exits the procedure."""


class Machine:
    """Executes compiled programs against an :class:`ExecContext`."""

    def __init__(self, program: CompiledProgram, ctx: ExecContext):
        self.program = program
        self.ctx = ctx

    # ------------------------------------------------------------------ #
    # predicate resolution
    # ------------------------------------------------------------------ #

    def resolve_relation(
        self,
        ref: PredRef,
        name: Term,
        frame: Frame,
        for_update: bool = False,
        dynamic_dispatch: bool = False,
    ) -> Relation:
        """Resolve a predicate reference (with a ground name) to a Relation."""
        info = ref.info
        if info is not None:
            klass = info.klass
            if klass is PredClass.LOCAL:
                relation = frame.locals.get((info.skeleton[0], ref.arity))
                if relation is None:
                    raise GlueRuntimeError(f"no local relation {name}/{ref.arity}")
                return relation
            if klass is PredClass.SPECIAL:
                if info.skeleton[0] == "in":
                    if frame.in_rel is None:
                        raise GlueRuntimeError("'in' used outside a procedure")
                    return frame.in_rel
                if frame.return_rel is None:
                    raise GlueRuntimeError("'return' used outside a procedure")
                return frame.return_rel
            if klass is PredClass.NAIL:
                if for_update:
                    raise GlueRuntimeError(f"cannot update NAIL! predicate {name}")
                return self._materialize_nail(name, ref.arity)
            # EDB (declared or implicit).
            return self.ctx.db.relation(name, ref.arity)
        # Dynamic reference: resolve the ground name at run time.
        return self._resolve_dynamic(name, ref.arity, frame, for_update, dynamic_dispatch)

    def _resolve_dynamic(
        self,
        name: Term,
        arity: int,
        frame: Frame,
        for_update: bool,
        dynamic_dispatch: bool,
    ) -> Relation:
        """The run-time predicate-class dispatch.

        With compile-time dereferencing the compiler only emits this for
        names whose candidate set was ambiguous; the DynamicStep baseline
        (experiment E8) forces the full check for every row.
        """
        skeleton = pred_skeleton(name, arity)
        if dynamic_dispatch:
            self.ctx.counters.dynamic_dispatches += 1
        if isinstance(name, Atom):
            local = frame.locals.get((name.name, arity))
            if local is not None:
                return local
        if dynamic_dispatch:
            proc = self.program.procs.get((None, skeleton[0], arity)) if skeleton[0] else None
            if proc is None and skeleton[0] is not None:
                proc = self.program.exported.get((skeleton[0], arity))
            if proc is not None:
                raise GlueRuntimeError(
                    f"dynamic call to procedure {name}/{arity} is not supported; "
                    "bind the procedure name statically"
                )
        if self.ctx.nail_engine is not None and self.ctx.nail_engine.defines(skeleton):
            if for_update:
                raise GlueRuntimeError(f"cannot update NAIL! predicate {name}")
            return self._materialize_nail(name, arity)
        return self.ctx.db.relation(name, arity)

    def _materialize_nail(self, name: Term, arity: int) -> Relation:
        engine = self.ctx.nail_engine
        if engine is None:
            raise GlueRuntimeError(
                f"subgoal {name}/{arity} is a NAIL! predicate but no engine is attached"
            )
        # A view: fully materialized when possible, demand-driven otherwise.
        return engine.view(name, arity)

    def call_predicate(self, ref: PredRef, input_rows: List[Row], frame: Frame) -> List[Row]:
        """Call a procedure/builtin/foreign once on the full input set."""
        info = ref.info
        if info is None:
            raise GlueRuntimeError(f"cannot call unresolved predicate {ref.pred}")
        name = info.skeleton[0]
        if info.klass is PredClass.BUILTIN:
            builtin = BUILTIN_PROCS[(name, info.arity)]
            return builtin.fn(self.ctx, input_rows)
        if info.klass is PredClass.FOREIGN:
            foreign = self.ctx.foreign.get((name, info.arity))
            if foreign is None:
                raise GlueRuntimeError(
                    f"foreign procedure {info.module}.{name}/{info.arity} is not registered"
                )
            return foreign.fn(self.ctx, input_rows)
        proc = self.program.procs.get((info.module, name, info.arity))
        if proc is None:
            proc = self.program.exported.get((name, info.arity))
        if proc is None:
            raise GlueRuntimeError(f"no procedure {name}/{info.arity}")
        result = self.call_proc(proc, input_rows)
        return result

    # ------------------------------------------------------------------ #
    # procedures
    # ------------------------------------------------------------------ #

    def call_proc(self, proc: CompiledProc, input_rows: List[Row]) -> List[Row]:
        """Invoke a compiled procedure on a set of input tuples."""
        tracer = self.ctx.tracer
        if not tracer.enabled:
            return self._call_proc_impl(proc, input_rows)
        with tracer.span(
            "proc", f"{proc.name}/{proc.arity}", module=proc.module,
            inputs=len(input_rows),
        ) as span:
            rows = self._call_proc_impl(proc, input_rows)
            span.rows = len(rows)
            return rows

    def _call_proc_impl(self, proc: CompiledProc, input_rows: List[Row]) -> List[Row]:
        self.ctx.counters.proc_calls += 1
        frame = Frame(proc, self.ctx)
        for row in input_rows:
            if len(row) != proc.bound_arity:
                raise GlueRuntimeError(
                    f"{proc.name}: input arity {len(row)} != bound arity {proc.bound_arity}"
                )
            frame.in_rel.insert(row)
        try:
            for stmt in proc.body:
                self.exec_stmt(stmt, frame)
        except _ReturnSignal:
            pass
        return frame.return_rel.copy_rows()

    def run_script(self) -> None:
        """Execute the loose top-level statements of the program."""
        frame = Frame(None, self.ctx)
        for stmt in self.program.script:
            self.exec_stmt(stmt, frame)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def exec_stmt(self, stmt, frame: Frame) -> None:
        if isinstance(stmt, CompiledRepeat):
            self._exec_repeat(stmt, frame)
            return
        assert isinstance(stmt, CompiledStmt)
        tracer = self.ctx.tracer
        if not tracer.enabled:
            self._exec_assign(stmt, frame)
            return
        from repro.vm.explain import stmt_label

        with tracer.span("stmt", stmt_label(stmt)) as span:
            self._exec_assign(stmt, frame, span)

    def _exec_assign(self, stmt: CompiledStmt, frame: Frame, span=None) -> None:
        if self.ctx.adaptive_reorder:
            stmt = self._adapted_variant(stmt, frame)
        rows = self.run_plan(stmt.plan, frame)
        head_rows = list(dict.fromkeys(tuple(fn(r) for fn in stmt.head_fns) for r in rows))
        if span is not None:
            span.rows = len(head_rows)
        self._apply_head(stmt, rows, head_rows, frame)
        if stmt.is_return and head_rows:
            # "Assigning to this relation also has the effect of exiting the
            # procedure" -- but an empty body stops the statement before the
            # assignment happens, so control falls through to the next one.
            raise _ReturnSignal()

    def _apply_head(self, stmt: CompiledStmt, rows, head_rows, frame: Frame) -> None:
        if stmt.head_name_fn is None:
            target = self.resolve_relation(stmt.head_ref, stmt.head_ref.pred, frame,
                                           for_update=True)
            self._apply_op(stmt, target, head_rows)
            return
        # Dynamic head: group result rows by instantiated relation name.
        by_name: Dict[Term, List[Row]] = {}
        for row in rows:
            name = stmt.head_name_fn(row)
            head_row = tuple(fn(row) for fn in stmt.head_fns)
            by_name.setdefault(name, []).append(head_row)
        for name, target_rows in by_name.items():
            target = self.resolve_relation(stmt.head_ref, name, frame, for_update=True)
            self._apply_op(stmt, target, list(dict.fromkeys(target_rows)))

    def _apply_op(self, stmt: CompiledStmt, target: Relation, head_rows: List[Row]) -> None:
        op = stmt.op
        if op == ":=":
            target.replace(head_rows)
        elif op == "+=":
            target.insert_many(head_rows)
        elif op == "-=":
            target.delete_many(head_rows)
        elif op == "modify":
            # Update by key (paper Section 3.1): remove every existing tuple
            # sharing a key with a new tuple, then insert the new tuples.
            # Incoming rows are deduplicated by key first -- the *last* row
            # in result order wins -- so a body producing several tuples for
            # one key leaves exactly one (see docs/GLUE_MANUAL.md).
            key_positions = stmt.key_positions
            if not key_positions:
                # No key columns: every tuple shares the empty key, so any
                # result replaces the whole relation.
                if head_rows:
                    target.replace(head_rows[-1:])
                return
            by_key: Dict[Row, Row] = {}
            for row in head_rows:
                by_key[tuple(row[p] for p in key_positions)] = row
            if not by_key:
                return
            # Victims come from the key index, not a full relation scan.
            victims = target.probe_buckets(key_positions, by_key.keys()) if len(target) else []
            target.delete_many(victims)
            target.insert_many(by_key.values())
        else:  # pragma: no cover - parser prevents this
            raise GlueRuntimeError(f"unknown assignment operator {op}")

    def _adapted_variant(self, stmt: CompiledStmt, frame: Frame) -> CompiledStmt:
        """Adaptive run-time re-optimization (paper Section 10): re-order
        the statement body by the *current* relation cardinalities and run
        a cached re-compiled variant.

        "Because Glue programs create and update many relations at
        run-time, queries involving those relations are difficult to
        optimize at compile-time."  Statements whose plans carry
        ``unchanged`` history are left alone (re-compiling would reset it).
        """
        from repro.analysis.scope import Scope
        from repro.errors import CompileError
        from repro.opt import optimize as plan_body
        from repro.terms.term import is_ground
        from repro.vm.plan import UnchangedStep

        if (
            self.ctx.order_mode != "cost"  # program order is the baseline
            or stmt.source is None
            or stmt.reorder_input is None
            or stmt.source_scope is None
            or any(isinstance(step, UnchangedStep) for step in stmt.plan)
        ):
            return stmt
        scope: Scope = stmt.source_scope
        compiler = self.program.compiler
        if compiler is None:
            return stmt

        def stats_source(pred, arity):
            # Live cardinalities: resolve like the VM would, including the
            # frame's local relations (which the compile-time source can't
            # see).  NAIL! predicates and procedures stay unknown.
            if not is_ground(pred):
                return None
            info = compiler._try_resolve(pred, arity, scope)
            if info is None or info.klass is PredClass.EDB:
                relation = self.ctx.db.get(pred, arity)
                return relation if relation is not None else 0
            if info.klass is PredClass.LOCAL:
                relation = frame.locals.get((info.skeleton[0], arity))
                return relation if relation is not None else 0
            return None

        planned = plan_body(
            stmt.reorder_input,
            stats=stats_source,
            call_fixedness=compiler._call_fixedness(scope),
            call_bound_arity=compiler._call_bound_arity(scope),
        )
        ordered = planned.ordered_body
        if ordered == stmt.ordered_body:
            return stmt
        variant = stmt.variants.get(ordered)
        if variant is None:
            # Two sessions executing the same compiled statement must not
            # recompile concurrently: recompile_with_order mutates the
            # shared compile-time scope, and an unguarded get/recompile/put
            # can publish two variants for one ordering.
            with stmt.variants_lock:
                variant = stmt.variants.get(ordered)
                if variant is None:
                    try:
                        variant = compiler.recompile_with_order(stmt, ordered)
                    except CompileError:
                        # The planned order does not bind-check; keep the
                        # compiled plan rather than fail at run time.
                        variant = stmt
                    stmt.variants[ordered] = variant
        return variant

    def _exec_repeat(self, stmt: CompiledRepeat, frame: Frame) -> None:
        tracer = self.ctx.tracer
        if not tracer.enabled:
            self._exec_repeat_impl(stmt, frame)
            return
        with tracer.span("repeat", "repeat/until") as span:
            iterations = self._exec_repeat_impl(stmt, frame)
            span.attrs["iterations"] = iterations

    def _exec_repeat_impl(self, stmt: CompiledRepeat, frame: Frame) -> int:
        iterations = 0
        while True:
            for inner in stmt.body:
                self.exec_stmt(inner, frame)
            if self._eval_until(stmt.until_alts, frame):
                return iterations + 1
            iterations += 1
            if iterations >= self.ctx.max_loop_iterations:
                raise GlueRuntimeError(
                    f"repeat loop exceeded {self.ctx.max_loop_iterations} iterations"
                )

    def _eval_until(self, alternatives: List[Plan], frame: Frame) -> bool:
        """A condition holds when its conjunction yields a non-empty set;
        alternatives short-circuit left to right."""
        for plan in alternatives:
            if self.run_plan(plan, frame):
                return True
        return False

    # ------------------------------------------------------------------ #
    # plan execution
    # ------------------------------------------------------------------ #

    def run_plan(self, plan: Plan, frame: Frame) -> List[Row]:
        if self.ctx.strategy == "materialized":
            return self._run_materialized(plan, frame)
        return self._run_pipelined(plan, frame)

    # -- per-step instrumentation (EXPLAIN ANALYZE) -------------------- #
    #
    # Tracing must not change what executes: the pipelined strategy stays
    # lazy, so each step's output stream is wrapped in a metering iterator
    # that accumulates rows-out, wall time and counter deltas *inclusive*
    # of its upstream chain.  Since a pipeline segment is linear, a step's
    # own (exclusive) cost is its accumulator minus its upstream step's.
    # Barriers materialize eagerly and are measured directly; the segment
    # baseline restarts after each barrier.

    def _dedup(self, rows: List[Row]) -> List[Row]:
        before = len(rows)
        rows = list(dict.fromkeys(rows))
        self.ctx.counters.dedup_removed += before - len(rows)
        return rows

    def _run_materialized(self, plan: Plan, frame: Frame) -> List[Row]:
        if self.ctx.tracer.enabled:
            return self._run_materialized_traced(plan, frame)
        counters = self.ctx.counters
        current: List[Row] = [()]
        for step in plan:
            if step.is_barrier:
                current = step.materialize_apply(current, self, frame)
            else:
                current = list(step.iterate(current, self, frame))
            counters.materializations += 1
            counters.materialized_tuples += len(current)
            current = self._dedup(current)
            if not current:
                # "Execution of an assignment statement stops whenever a
                # supplementary relation is empty."
                return []
        return current

    def run_plan_seeded(self, plan: Plan, seed_rows: List[Row], frame: Frame) -> List[Row]:
        """Run a sub-plan (a disjunction alternative) over given rows."""
        return self._run_pipelined(plan, frame, seed=seed_rows, count_final=False)

    def _run_pipelined(
        self,
        plan: Plan,
        frame: Frame,
        seed: Optional[List[Row]] = None,
        count_final: bool = True,
    ) -> List[Row]:
        if self.ctx.tracer.enabled:
            return self._run_pipelined_traced(plan, frame, seed, count_final)
        counters = self.ctx.counters
        stream = iter([()] if seed is None else seed)
        for step in plan:
            if step.is_barrier:
                materialized = list(stream)
                counters.pipeline_breaks += 1
                counters.materializations += 1
                counters.materialized_tuples += len(materialized)
                if self.ctx.dedup_on_break:
                    materialized = self._dedup(materialized)
                if not materialized:
                    return []
                stream = iter(step.materialize_apply(materialized, self, frame))
            else:
                stream = step.iterate(stream, self, frame)
        result = list(stream)
        if count_final:
            counters.materializations += 1
            counters.materialized_tuples += len(result)
        return self._dedup(result)

    def _run_materialized_traced(self, plan: Plan, frame: Frame) -> List[Row]:
        counters = self.ctx.counters
        tracer = self.ctx.tracer
        from repro.vm.explain import step_label

        current: List[Row] = [()]
        for step in plan:
            c0 = counters.as_tuple()
            t0 = perf_counter()
            if step.is_barrier:
                current = step.materialize_apply(current, self, frame)
            else:
                current = list(step.iterate(current, self, frame))
            counters.materializations += 1
            counters.materialized_tuples += len(current)
            current = self._dedup(current)
            tracer.event(
                "step", step_label(step), rows=len(current),
                counters=_nonzero_counter_diff(c0, counters.as_tuple()),
                dur_s=perf_counter() - t0,
            )
            if not current:
                return []
        return current

    def _run_pipelined_traced(
        self,
        plan: Plan,
        frame: Frame,
        seed: Optional[List[Row]],
        count_final: bool,
    ) -> List[Row]:
        counters = self.ctx.counters
        snap = counters.as_tuple
        stream = iter([()] if seed is None else seed)
        meters: List[Tuple[Step, _StepMeter, Optional[_StepMeter]]] = []
        base: Optional[_StepMeter] = None
        aborted = False
        for step in plan:
            if step.is_barrier:
                materialized = list(stream)  # upstream meters finish here
                counters.pipeline_breaks += 1
                counters.materializations += 1
                counters.materialized_tuples += len(materialized)
                if self.ctx.dedup_on_break:
                    materialized = self._dedup(materialized)
                meter = _StepMeter()
                meter.break_rows = len(materialized)
                meters.append((step, meter, None))
                if not materialized:
                    aborted = True
                    result: List[Row] = []
                    break
                c0 = snap()
                t0 = perf_counter()
                out = step.materialize_apply(materialized, self, frame)
                meter.dur = perf_counter() - t0
                meter.add(c0, snap())
                meter.rows = len(out)
                stream = iter(out)
                base = None  # the next lazy step starts a fresh segment
            else:
                meter = _StepMeter()
                meters.append((step, meter, base))
                stream = _metered(step.iterate(stream, self, frame), meter, snap)
                base = meter
        if not aborted:
            result = list(stream)
            if count_final:
                counters.materializations += 1
                counters.materialized_tuples += len(result)
            result = self._dedup(result)
        self._emit_step_events(meters)
        return result

    def _emit_step_events(
        self, meters: List[Tuple["Step", "_StepMeter", Optional["_StepMeter"]]]
    ) -> None:
        tracer = self.ctx.tracer
        from repro.vm.explain import step_label

        for step, meter, base in meters:
            if meter.break_rows is not None:
                tracer.event("pipeline_break", step_label(step), rows=meter.break_rows)
            if base is None:
                dur = meter.dur
                delta = meter.delta
            else:
                dur = max(meter.dur - base.dur, 0.0)
                delta = [a - b for a, b in zip(meter.delta, base.delta)]
            tracer.event(
                "step", step_label(step), rows=meter.rows,
                counters={
                    COUNTER_FIELDS[i]: v for i, v in enumerate(delta) if v
                },
                dur_s=dur,
            )


class _StepMeter:
    """Accumulates one plan step's rows-out, wall time and counter deltas.

    For lazy (non-barrier) steps the numbers are *inclusive* of the
    upstream chain; :meth:`Machine._emit_step_events` subtracts the
    upstream meter to get the step's own cost.  ``break_rows`` is set on
    barrier meters to the supplementary-relation size at the break.
    """

    __slots__ = ("rows", "dur", "delta", "break_rows")

    def __init__(self):
        self.rows = 0
        self.dur = 0.0
        self.delta = [0] * len(COUNTER_FIELDS)
        self.break_rows: Optional[int] = None

    def add(self, before: tuple, after: tuple) -> None:
        delta = self.delta
        for i in range(len(delta)):
            delta[i] += after[i] - before[i]


def _metered(inner, meter: _StepMeter, snap) -> "Iterator[Row]":
    """Wrap a step's output stream, charging each pull to ``meter``."""
    while True:
        c0 = snap()
        t0 = perf_counter()
        try:
            row = next(inner)
        except StopIteration:
            meter.dur += perf_counter() - t0
            meter.add(c0, snap())
            return
        meter.dur += perf_counter() - t0
        meter.add(c0, snap())
        meter.rows += 1
        yield row


def _nonzero_counter_diff(before: tuple, after: tuple) -> Dict[str, int]:
    out = {}
    for i, name in enumerate(COUNTER_FIELDS):
        diff = after[i] - before[i]
        if diff:
            out[name] = diff
    return out
