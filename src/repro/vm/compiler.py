"""The Glue compiler: AST to virtual-machine plans.

Follows the paper's compile-time-first philosophy (Section 9): predicate
classes are resolved statically, binding-time analysis fixes the column
layout of every supplementary relation, fixedness analysis marks the
subgoals that anchor evaluation order, and the optimizer reorders the
remaining subgoals.  NAIL! rules pass through for the deductive engine;
their heads are declared so Glue code can reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.bindings import (
    BindingError,
    analyze_bindings,
    expr_has_agg,
    expr_vars,
    term_vars,
)
from repro.analysis.fixedness import is_fixed_subgoal
from repro.analysis.reorder import reorder_body
from repro.analysis.scope import PredClass, PredInfo, Scope, ScopeError, pred_skeleton
from repro.errors import CompileError
from repro.glue.builtins import BUILTIN_PROCS
from repro.lang.ast import (
    AggCall,
    AssignStmt,
    CompareSubgoal,
    CondDisjunction,
    EdbDecl,
    EmptyCond,
    ExportDecl,
    GroupBySubgoal,
    ImportDecl,
    ModuleDecl,
    PredSubgoal,
    ProcDecl,
    Program,
    RepeatStmt,
    RuleDecl,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
    WatchDecl,
)
from repro.opt import optimize as plan_body
from repro.opt.literal import classify_join_columns
from repro.terms.term import Atom, Term, Var, is_ground, variables
from repro.vm.exprs import compile_expr, compile_pattern, compile_term_code
from repro.vm.plan import (
    AggStep,
    BindStep,
    CallStep,
    CompareStep,
    CompiledProc,
    CompiledProgram,
    CompiledRepeat,
    CompiledStmt,
    DynamicStep,
    EmptyStep,
    GroupByStep,
    NegScanStep,
    PredRef,
    ScanStep,
    Step,
    StmtJoinShape,
    TruthStep,
    UnchangedStep,
    UnionStep,
    UpdateStep,
)

_RELOP_FLIP = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


@dataclass
class ForeignSig:
    """Compile-time signature of a foreign (Python) procedure."""

    module: str
    name: str
    arity: int
    bound_arity: int
    fixed: bool = True


@dataclass
class _ColumnState:
    """Mutable compile state for one statement body."""

    columns: List[str] = field(default_factory=list)
    group_cols: List[str] = field(default_factory=list)

    @property
    def colindex(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.columns)}

    def add(self, names: Sequence[str]) -> None:
        for name in names:
            if name not in self.columns:
                self.columns.append(name)


def _flat_extract(
    args: Sequence[Term], known: Set[str], new_vars: Sequence[str]
) -> Optional[Tuple[int, ...]]:
    """Stored-row positions of ``new_vars`` when the pattern is *flat*.

    Flat means every argument is a ground term, a bound plain variable, an
    anonymous variable, or a distinct fresh plain variable -- the cases
    where matching degenerates to positional equality and the VM can skip
    building a bindings dict per matched row.  Returns None otherwise.
    """
    positions: Dict[str, int] = {}
    for i, arg in enumerate(args):
        if isinstance(arg, Var):
            if arg.is_anonymous or arg.name in known:
                continue
            if arg.name in positions:
                return None  # repeated fresh variable: needs a consistency check
            positions[arg.name] = i
        elif not is_ground(arg):
            # A compound containing variables needs real matching (even a
            # bound one could repeat variables inside); stay conservative.
            return None
    try:
        return tuple(positions[name] for name in new_vars)
    except KeyError:
        return None


def _join_shape(
    subgoal: PredSubgoal,
    known: Set[str],
    colindex: Dict[str, int],
    new_vars: Sequence[str],
) -> StmtJoinShape:
    """The statement-level join plan of one scan: classify the subgoal's
    argument pattern with the shared NAIL! literal classifier, then map the
    bound variable names onto supplementary-row positions so the VM can
    build probe keys positionally."""
    lit = classify_join_columns(subgoal.pred, subgoal.args, frozenset(known))
    key_build = []
    for _col, kind, value in lit.key_cols:
        if kind == "const":
            key_build.append((None, value))
        else:
            key_build.append((colindex[value], None))
    extract_cols: Optional[Tuple[int, ...]] = None
    if not lit.complex_cols:
        positions = {name: col for col, name in lit.extract}
        if all(name in positions for name in new_vars):
            extract_cols = tuple(positions[name] for name in new_vars)
    return StmtJoinShape(
        key_build=tuple(key_build),
        probe_cols=lit.probe_cols,
        covers_all=lit.covers_all_columns,
        extract_cols=extract_cols,
        eq_checks=lit.eq_checks,
        residual_bound=lit.complex_has_bound,
    )


def _ordered_new_vars(terms: Sequence[Term], known: Set[str]) -> List[str]:
    """First-occurrence order of named variables not already bound."""
    out: List[str] = []
    for term in terms:
        for var in variables(term):
            if var.is_anonymous or var.name in known or var.name in out:
                continue
            out.append(var.name)
    return out


class ProgramCompiler:
    """Compiles a parsed :class:`Program` into a :class:`CompiledProgram`."""

    def __init__(
        self,
        strict: bool = False,
        optimize: bool = True,
        deref_at_compile_time: bool = True,
        foreign_sigs: Sequence[ForeignSig] = (),
        order_mode: str = "cost",
        stats_source=None,
    ):
        if order_mode not in ("cost", "program"):
            raise ValueError(f"unknown order mode {order_mode!r}")
        self.strict = strict
        self.optimize = optimize
        self.order_mode = order_mode
        # (pred, arity) -> something repro.opt.coerce_snapshot understands
        # (a Relation, a snapshot, a row count, or None for unknown).
        # Resolved per compile, so the adaptive recompile path sees live
        # cardinalities.
        self.stats_source = stats_source
        self.deref_at_compile_time = deref_at_compile_time
        self.foreign_sigs = {(sig.module, sig.name, sig.arity): sig for sig in foreign_sigs}
        self._fixed_procs: Set[Tuple[Optional[str], str, int]] = set()

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def compile_program(self, program: Program) -> CompiledProgram:
        compiled = CompiledProgram(
            statement_count=program.statement_count(), compiler=self
        )
        builtin_scope = self._builtin_scope()

        # Pass 1a: create per-module scopes with their own declarations.
        module_scopes: Dict[str, Scope] = {}
        for module in program.modules:
            module_scopes[module.name] = self._declare_module(module, builtin_scope)
        global_scope = builtin_scope.child(module="__main__")
        self._declare_loose_items(program.items, global_scope, compiled)

        # Pass 1b: resolve imports (and make exports visible to scripts).
        for module in program.modules:
            self._resolve_imports(module, module_scopes, global_scope)
        for module in program.modules:
            self._export_into(module, module_scopes[module.name], global_scope)

        # Pass 2: fixedness fixpoint across all procedures.
        self._fixed_procs = self._fixedness_fixpoint(program, module_scopes, global_scope)
        self._refresh_proc_infos(program, module_scopes, global_scope)

        # Pass 3: compile procedures, rules and loose statements.
        for module in program.modules:
            scope = module_scopes[module.name]
            for item in module.items:
                if isinstance(item, ProcDecl):
                    proc = self._compile_proc(item, module.name, scope)
                    proc.exported = any(
                        sig.name == item.name and sig.arity == item.arity
                        for sig in module.exports
                    )
                    compiled.procs[proc.key] = proc
                    if proc.exported:
                        compiled.exported[(proc.name, proc.arity)] = proc
                elif isinstance(item, RuleDecl):
                    compiled.rules.append(item)
                elif isinstance(item, EdbDecl):
                    compiled.edb_decls.append((item.name, item.arity))
                elif isinstance(item, WatchDecl):
                    compiled.watches.append(item)
                elif isinstance(item, (AssignStmt, RepeatStmt)):
                    raise CompileError(
                        f"module {module.name}: statements must live inside procedures"
                    )
        for item in program.items:
            if isinstance(item, ProcDecl):
                proc = self._compile_proc(item, None, global_scope)
                proc.exported = True
                compiled.procs[proc.key] = proc
                compiled.exported[(proc.name, proc.arity)] = proc
            elif isinstance(item, RuleDecl):
                compiled.rules.append(item)
            elif isinstance(item, EdbDecl):
                compiled.edb_decls.append((item.name, item.arity))
            elif isinstance(item, WatchDecl):
                compiled.watches.append(item)
            elif isinstance(item, AssignStmt):
                compiled.script.append(self._compile_stmt(item, global_scope, None))
            elif isinstance(item, RepeatStmt):
                compiled.script.append(self._compile_repeat(item, global_scope, None))
        return compiled

    # ------------------------------------------------------------------ #
    # scope construction
    # ------------------------------------------------------------------ #

    def _builtin_scope(self) -> Scope:
        scope = Scope(module=None, strict=self.strict)
        for (name, arity), builtin in BUILTIN_PROCS.items():
            scope.declare(
                PredInfo(
                    skeleton=(name, (), arity),
                    klass=PredClass.BUILTIN,
                    arity=arity,
                    bound_arity=builtin.bound_arity,
                    fixed=builtin.fixed,
                    display=f"{name}/{arity}",
                )
            )
        return scope

    def _info_for_proc(
        self, decl: ProcDecl, module: Optional[str], fixed: bool = False
    ) -> PredInfo:
        return PredInfo(
            skeleton=(decl.name, (), decl.arity),
            klass=PredClass.PROC,
            arity=decl.arity,
            bound_arity=decl.bound_arity,
            module=module,
            fixed=fixed,
            display=f"{decl.name}/{decl.arity}",
        )

    def _info_for_edb(self, name: str, arity: int, module: Optional[str]) -> PredInfo:
        return PredInfo(
            skeleton=(name, (), arity),
            klass=PredClass.EDB,
            arity=arity,
            module=module,
            display=f"{name}/{arity}",
        )

    def _info_for_rule_head(self, rule: RuleDecl, module: Optional[str]) -> PredInfo:
        skeleton = pred_skeleton(rule.head_pred, len(rule.head_args))
        if skeleton[0] is None:
            raise CompileError("a NAIL! rule head needs a determinate predicate name")
        return PredInfo(
            skeleton=skeleton,
            klass=PredClass.NAIL,
            arity=len(rule.head_args),
            module=module,
            display=f"{skeleton[0]}/{len(rule.head_args)}",
        )

    def _declare_module(self, module: ModuleDecl, parent: Scope) -> Scope:
        scope = parent.child(module=module.name)
        for item in module.items:
            if isinstance(item, EdbDecl):
                scope.declare(self._info_for_edb(item.name, item.arity, module.name))
            elif isinstance(item, ProcDecl):
                scope.declare(self._info_for_proc(item, module.name))
            elif isinstance(item, RuleDecl):
                scope.declare(self._info_for_rule_head(item, module.name), allow_override=True)
        return scope

    def _declare_loose_items(self, items, scope: Scope, compiled: CompiledProgram) -> None:
        for item in items:
            if isinstance(item, EdbDecl):
                scope.declare(self._info_for_edb(item.name, item.arity, None))
            elif isinstance(item, ProcDecl):
                scope.declare(self._info_for_proc(item, None))
            elif isinstance(item, RuleDecl):
                scope.declare(self._info_for_rule_head(item, None), allow_override=True)

    def _resolve_imports(
        self, module: ModuleDecl, module_scopes: Dict[str, Scope], global_scope: Scope
    ) -> None:
        scope = module_scopes[module.name]
        for decl in module.imports:
            source_scope = module_scopes.get(decl.module)
            for sig in decl.sigs:
                info = None
                if source_scope is not None:
                    info = source_scope.lookup((sig.name, (), sig.arity))
                if info is None:
                    foreign = self.foreign_sigs.get((decl.module, sig.name, sig.arity))
                    if foreign is not None:
                        info = PredInfo(
                            skeleton=(sig.name, (), sig.arity),
                            klass=PredClass.FOREIGN,
                            arity=sig.arity,
                            bound_arity=foreign.bound_arity,
                            module=decl.module,
                            fixed=foreign.fixed,
                            display=f"{decl.module}.{sig.name}/{sig.arity}",
                        )
                if info is None:
                    if self.strict:
                        raise CompileError(
                            f"module {module.name}: cannot resolve import "
                            f"{decl.module}.{sig.name}/{sig.arity}"
                        )
                    # Lenient: assume a fixed foreign procedure bound later.
                    info = PredInfo(
                        skeleton=(sig.name, (), sig.arity),
                        klass=PredClass.FOREIGN,
                        arity=sig.arity,
                        bound_arity=len(sig.bound),
                        module=decl.module,
                        fixed=True,
                        display=f"{decl.module}.{sig.name}/{sig.arity}",
                    )
                scope.declare(info, allow_override=True)

    def _export_into(self, module: ModuleDecl, scope: Scope, global_scope: Scope) -> None:
        for sig in module.exports:
            info = scope.lookup((sig.name, (), sig.arity))
            if info is None:
                raise CompileError(
                    f"module {module.name} exports undeclared {sig.name}/{sig.arity}"
                )
            global_scope.declare(info, allow_override=True)

    # ------------------------------------------------------------------ #
    # fixedness
    # ------------------------------------------------------------------ #

    def _iter_procs(self, program: Program):
        for module in program.modules:
            for item in module.items:
                if isinstance(item, ProcDecl):
                    yield module.name, item
        for item in program.items:
            if isinstance(item, ProcDecl):
                yield None, item

    def _fixedness_fixpoint(
        self, program: Program, module_scopes: Dict[str, Scope], global_scope: Scope
    ) -> Set[Tuple[Optional[str], str, int]]:
        fixed: Set[Tuple[Optional[str], str, int]] = set()
        procs = list(self._iter_procs(program))
        changed = True
        while changed:
            changed = False
            for module_name, decl in procs:
                key = (module_name, decl.name, decl.arity)
                if key in fixed:
                    continue
                scope = module_scopes[module_name] if module_name else global_scope
                if self._proc_contains_fixed(decl, scope, fixed):
                    fixed.add(key)
                    changed = True
        return fixed

    def _proc_contains_fixed(self, decl: ProcDecl, scope: Scope, fixed: Set) -> bool:
        local_names = {(d.name, d.arity) for d in decl.locals}

        def call_fixedness(subgoal: PredSubgoal) -> Optional[bool]:
            info = self._try_resolve(subgoal.pred, len(subgoal.args), scope)
            if info is None or not info.is_callable:
                return None
            if info.klass is PredClass.PROC:
                return (info.module, info.skeleton[0], info.arity) in fixed
            return info.fixed

        def stmt_fixed(stmt) -> bool:
            if isinstance(stmt, RepeatStmt):
                if any(stmt_fixed(inner) for inner in stmt.body):
                    return True
                return any(
                    is_fixed_subgoal(s, call_fixedness)
                    for alt in stmt.until.alternatives
                    for s in alt
                )
            assert isinstance(stmt, AssignStmt)
            if any(is_fixed_subgoal(s, call_fixedness) for s in stmt.body):
                return True
            # Assignments to EDB relations are updates, hence fixed; local
            # relations and the return relation are not.
            head_skel = pred_skeleton(stmt.head_pred, len(stmt.head_args))
            if head_skel[0] in ("return",) and not head_skel[1]:
                return False
            if (head_skel[0], head_skel[2]) in local_names and not head_skel[1]:
                return False
            if head_skel[0] is None:
                return True  # dynamic head -> assume EDB update
            info = self._try_resolve(stmt.head_pred, len(stmt.head_args), scope)
            if info is not None and info.klass in (PredClass.LOCAL, PredClass.SPECIAL):
                return False
            return True

        return any(stmt_fixed(stmt) for stmt in decl.body)

    def _try_resolve(self, pred: Term, arity: int, scope: Scope) -> Optional[PredInfo]:
        try:
            return scope.resolve(pred, arity)
        except ScopeError:
            return None

    def _refresh_proc_infos(
        self, program: Program, module_scopes: Dict[str, Scope], global_scope: Scope
    ) -> None:
        """Re-declare proc infos with the final fixedness bits."""
        for module in program.modules:
            scope = module_scopes[module.name]
            for item in module.items:
                if isinstance(item, ProcDecl):
                    key = (module.name, item.name, item.arity)
                    scope.declare(
                        self._info_for_proc(item, module.name, key in self._fixed_procs),
                        allow_override=True,
                    )
        for item in program.items:
            if isinstance(item, ProcDecl):
                key = (None, item.name, item.arity)
                global_scope.declare(
                    self._info_for_proc(item, None, key in self._fixed_procs),
                    allow_override=True,
                )
        # Exports must reflect the refreshed infos too.
        for module in program.modules:
            self._export_into(module, module_scopes[module.name], global_scope)

    # ------------------------------------------------------------------ #
    # procedures
    # ------------------------------------------------------------------ #

    def _compile_proc(self, decl: ProcDecl, module: Optional[str], scope: Scope) -> CompiledProc:
        proc_scope = scope.child()
        for local in decl.locals:
            proc_scope.declare(
                PredInfo(
                    skeleton=(local.name, (), local.arity),
                    klass=PredClass.LOCAL,
                    arity=local.arity,
                    module=module,
                    display=f"{local.name}/{local.arity} (local)",
                ),
                allow_override=True,
            )
        proc_scope.declare(
            PredInfo(
                skeleton=("in", (), decl.bound_arity),
                klass=PredClass.SPECIAL,
                arity=decl.bound_arity,
                display="in",
            ),
            allow_override=True,
        )
        proc_scope.declare(
            PredInfo(
                skeleton=("return", (), decl.arity),
                klass=PredClass.SPECIAL,
                arity=decl.arity,
                display="return",
            ),
            allow_override=True,
        )
        body = [self._compile_any_stmt(stmt, proc_scope, decl) for stmt in decl.body]
        key = (module, decl.name, decl.arity)
        return CompiledProc(
            module=module,
            name=decl.name,
            bound_params=tuple(v.name for v in decl.bound_params),
            free_params=tuple(v.name for v in decl.free_params),
            locals=tuple((d.name, d.arity) for d in decl.locals),
            body=body,
            fixed=key in self._fixed_procs,
            decl=decl,
        )

    def _compile_any_stmt(self, stmt, scope: Scope, proc: Optional[ProcDecl]):
        if isinstance(stmt, RepeatStmt):
            return self._compile_repeat(stmt, scope, proc)
        return self._compile_stmt(stmt, scope, proc)

    def _compile_repeat(self, stmt: RepeatStmt, scope: Scope, proc) -> CompiledRepeat:
        body = [self._compile_any_stmt(inner, scope, proc) for inner in stmt.body]
        until_alts = [
            self._compile_body(list(alt), scope, proc, context="until")[0]
            for alt in stmt.until.alternatives
        ]
        return CompiledRepeat(body=body, until_alts=until_alts, source=stmt)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def _compile_stmt(
        self,
        stmt: AssignStmt,
        scope: Scope,
        proc,
        body_override: Optional[Tuple[object, ...]] = None,
    ) -> CompiledStmt:
        body = list(stmt.body)
        is_return = False
        head_pred = stmt.head_pred
        head_args = stmt.head_args

        if isinstance(head_pred, Atom) and head_pred.name == "return":
            if proc is None:
                raise CompileError("return assignment outside a procedure")
            is_return = True
            if len(head_args) != proc.arity:
                raise CompileError(
                    f"return head arity {len(head_args)} != procedure arity {proc.arity}"
                )
            split = stmt.head_bound if stmt.head_bound is not None else proc.bound_arity
            if split != proc.bound_arity:
                raise CompileError(
                    "':' in return head must match the procedure's bound arity"
                )
            # "An assignment statement that assigns to the return relation
            # has an implicit in subgoal as its first subgoal."
            body = [PredSubgoal(pred=Atom("in"), args=head_args[:split])] + body
        elif stmt.head_bound is not None:
            raise CompileError("':' in a head is only meaningful for return")

        reorder_input = tuple(body)
        if body_override is not None:
            body = list(body_override)
        plan, state, ordered_body = self._compile_body(
            body, scope, proc, context="body", stmt=stmt,
            preordered=body_override is not None,
        )

        colindex = state.colindex
        head_fns = []
        for arg in head_args:
            try:
                head_fns.append(compile_term_code(arg, colindex))
            except CompileError as exc:
                raise CompileError(f"line {stmt.line}: head argument {arg}: {exc}") from exc

        head_ref, head_name_fn = self._compile_head_target(
            head_pred, len(head_args), scope, colindex, stmt, is_return
        )

        key_positions: Tuple[int, ...] = ()
        if stmt.op == "modify":
            positions = []
            key_names = {v.name for v in stmt.keys}
            found = set()
            for i, arg in enumerate(head_args):
                if isinstance(arg, Var) and arg.name in key_names:
                    positions.append(i)
                    found.add(arg.name)
            missing = key_names - found
            if missing:
                raise CompileError(
                    f"modify keys {sorted(missing)} do not appear in the head"
                )
            key_positions = tuple(positions)

        fixed = any(step.is_barrier or isinstance(step, UpdateStep) for step in plan)
        if head_ref.info is None or head_ref.info.klass is PredClass.EDB:
            fixed = True

        return CompiledStmt(
            plan=plan,
            head_ref=head_ref,
            head_fns=tuple(head_fns),
            op=stmt.op,
            key_positions=key_positions,
            head_name_fn=head_name_fn,
            is_return=is_return,
            fixed=fixed,
            columns_final=tuple(state.columns),
            source=stmt,
            reorder_input=reorder_input,
            ordered_body=ordered_body,
            source_scope=scope,
            source_proc=proc,
        )

    def recompile_with_order(
        self, stmt: CompiledStmt, ordered_body: Tuple[object, ...]
    ) -> CompiledStmt:
        """Re-compile a statement with an explicit body order -- the
        adaptive run-time re-optimization hook (paper Section 10)."""
        return self._compile_stmt(
            stmt.source, stmt.source_scope, stmt.source_proc,
            body_override=ordered_body,
        )

    def _compile_head_target(
        self,
        head_pred: Term,
        arity: int,
        scope: Scope,
        colindex: Dict[str, int],
        stmt: AssignStmt,
        is_return: bool,
    ):
        head_name_fn = None
        if not is_ground(head_pred):
            free = term_vars(head_pred) - set(colindex)
            if free:
                raise CompileError(
                    f"line {stmt.line}: head predicate variables {sorted(free)} unbound"
                )
            head_name_fn = compile_term_code(head_pred, colindex)
            return PredRef(pred=head_pred, arity=arity, info=None), head_name_fn

        info = self._try_resolve(head_pred, arity, scope)
        if info is None and self.strict and not is_return:
            raise CompileError(f"line {stmt.line}: undeclared head relation {head_pred}/{arity}")
        if info is not None:
            if info.klass is PredClass.NAIL:
                raise CompileError(
                    f"line {stmt.line}: cannot assign to NAIL! predicate {head_pred}"
                )
            if info.is_callable:
                raise CompileError(
                    f"line {stmt.line}: cannot assign to procedure {head_pred}"
                )
        elif not is_return:
            # Lenient: implicitly declare an EDB relation.
            skeleton = pred_skeleton(head_pred, arity)
            info = PredInfo(
                skeleton=skeleton,
                klass=PredClass.EDB,
                arity=arity,
                display=f"{head_pred}/{arity}",
            )
            scope.declare(info, allow_override=True)
        return PredRef(pred=head_pred, arity=arity, info=info), head_name_fn

    # ------------------------------------------------------------------ #
    # bodies
    # ------------------------------------------------------------------ #

    def _call_fixedness(self, scope: Scope):
        def call_fixedness(subgoal: PredSubgoal) -> Optional[bool]:
            info = self._try_resolve(subgoal.pred, len(subgoal.args), scope)
            if info is None or not info.is_callable:
                return None
            return info.fixed

        return call_fixedness

    def _call_bound_arity(self, scope: Scope):
        def call_bound_arity(subgoal: PredSubgoal) -> Optional[int]:
            info = self._try_resolve(subgoal.pred, len(subgoal.args), scope)
            if info is None or not info.is_callable:
                return None
            return info.bound_arity

        return call_bound_arity

    def _compile_body(
        self,
        body: List[object],
        scope: Scope,
        proc,
        context: str = "body",
        stmt: Optional[AssignStmt] = None,
        preordered: bool = False,
    ) -> Tuple[List[Step], _ColumnState, Tuple[object, ...]]:
        if self.optimize and not preordered:
            body = self._order_body(body, scope)
        line = stmt.line if stmt is not None else 0
        try:
            analyze_bindings(body)
        except BindingError as exc:
            raise CompileError(f"line {line}: {exc}") from exc

        est_of = self._body_estimates(body, scope)
        state = _ColumnState()
        plan: List[Step] = []
        for pos, subgoal in enumerate(body):
            step = self._compile_subgoal(subgoal, scope, state, line)
            if isinstance(step, (ScanStep, NegScanStep)):
                step.est_rows = est_of.get(pos)
            plan.append(step)
        return plan, state, tuple(body)

    def _order_body(self, body: List[object], scope: Scope) -> List[object]:
        """Choose the body's evaluation order per ``order_mode``.

        ``"cost"`` runs the shared :mod:`repro.opt` pass pipeline;
        ``"program"`` keeps the written order.  Both fall back to the
        heuristic :func:`reorder_body` when their order does not
        bind-check -- some bodies only compile reordered, and program
        mode must not reject programs that cost mode accepts.
        """
        call_fix = self._call_fixedness(scope)
        call_ba = self._call_bound_arity(scope)
        if self.order_mode == "cost":
            planned = plan_body(
                tuple(body),
                stats=self._scoped_stats(scope),
                call_fixedness=call_fix,
                call_bound_arity=call_ba,
            )
            candidate = list(planned.ordered_body)
        else:
            candidate = list(body)
        try:
            analyze_bindings(candidate)
            return candidate
        except BindingError:
            pass
        return reorder_body(
            body,
            initially_bound=set(),
            call_fixedness=call_fix,
            call_bound_arity=call_ba,
        )

    def _scoped_stats(self, scope: Scope):
        """The compile-time statistics source, scope-aware.

        SPECIAL relations (``in``/``return``) are sized at one tuple -- the
        unit-seed default for per-invocation relations -- so an unknowable
        input does not turn every downstream estimate unknown."""
        if self.stats_source is None:
            return None
        stats_source = self.stats_source

        def source(pred, arity):
            info = self._try_resolve(pred, arity, scope)
            if info is not None and info.klass is PredClass.SPECIAL:
                return 1
            return stats_source(pred, arity)

        return source

    def _body_estimates(self, body: Sequence[object], scope: Scope) -> Dict[int, object]:
        """Planner row estimates for ``body`` in its final order, keyed by
        position.  Empty without a statistics source (estimates are then
        unknown, not zero)."""
        stats = self._scoped_stats(scope)
        if stats is None:
            return {}
        annotated = plan_body(
            tuple(body),
            stats=stats,
            order_mode="program",
            call_fixedness=self._call_fixedness(scope),
            call_bound_arity=self._call_bound_arity(scope),
        )
        return {pos: step.est_rows for pos, step in enumerate(annotated.steps)}

    def _compile_subgoal(self, subgoal, scope: Scope, state: _ColumnState, line: int) -> Step:
        colindex = state.colindex
        known = set(state.columns)

        if isinstance(subgoal, PredSubgoal):
            return self._compile_pred_subgoal(subgoal, scope, state, line)
        if isinstance(subgoal, CompareSubgoal):
            return self._compile_compare(subgoal, state, line)
        if isinstance(subgoal, UpdateSubgoal):
            ref, name_fn = self._relation_ref(subgoal.pred, len(subgoal.args), scope, colindex)
            if ref.info is not None and not ref.info.is_relation:
                raise CompileError(
                    f"line {line}: {subgoal.op}{subgoal.pred} must target a relation"
                )
            return UpdateStep(
                op=subgoal.op,
                ref=ref,
                pattern_fn=compile_pattern(subgoal.args, colindex),
                name_fn=name_fn,
                columns_out=tuple(state.columns),
            )
        if isinstance(subgoal, GroupBySubgoal):
            names = [t.name for t in subgoal.terms]  # safety checked these are Vars
            for name in names:
                if name not in state.group_cols:
                    state.group_cols.append(name)
            return GroupByStep(
                group_cols=tuple(state.group_cols), columns_out=tuple(state.columns)
            )
        if isinstance(subgoal, EmptyCond):
            ref, name_fn = self._relation_ref(subgoal.pred, len(subgoal.args), scope, colindex)
            return EmptyStep(
                ref=ref,
                pattern_fn=compile_pattern(subgoal.args, colindex),
                name_fn=name_fn,
                columns_out=tuple(state.columns),
            )
        if isinstance(subgoal, UnchangedCond):
            ref, name_fn = self._relation_ref(subgoal.pred, subgoal.arity, scope, colindex)
            if name_fn is not None:
                raise CompileError(f"line {line}: unchanged() needs a static predicate")
            return UnchangedStep(ref=ref, columns_out=tuple(state.columns))
        if isinstance(subgoal, UnionSubgoal):
            return self._compile_union(subgoal, scope, state, line)
        raise CompileError(f"line {line}: cannot compile subgoal {subgoal!r}")

    def _compile_union(
        self, subgoal: UnionSubgoal, scope: Scope, state: _ColumnState, line: int
    ) -> Step:
        """Compile a body disjunction: one sub-plan per alternative, all
        binding the same new variables (checked by safety analysis)."""
        call_fix = self._call_fixedness(scope)
        for alt in subgoal.alternatives:
            for inner in alt:
                if is_fixed_subgoal(inner, call_fix):
                    raise CompileError(
                        f"line {line}: fixed subgoals (updates, aggregation, I/O) "
                        "are not allowed inside a body disjunction"
                    )
        base_columns = list(state.columns)
        canonical: Optional[List[str]] = None
        compiled: List[Tuple[List[Step], Tuple[int, ...]]] = []
        for alt in subgoal.alternatives:
            alt_state = _ColumnState(
                columns=list(base_columns), group_cols=list(state.group_cols)
            )
            plan = [self._compile_subgoal(s, scope, alt_state, line) for s in alt]
            new_vars = [c for c in alt_state.columns if c not in base_columns]
            if canonical is None:
                canonical = new_vars
            elif set(new_vars) != set(canonical):
                raise CompileError(
                    f"line {line}: disjunction alternatives bind different "
                    f"variables: {sorted(canonical)} vs {sorted(new_vars)}"
                )
            extract = tuple(alt_state.columns.index(v) for v in canonical)
            compiled.append((plan, extract))
        assert canonical is not None
        state.add(canonical)
        return UnionStep(
            alternatives=compiled,
            new_vars=tuple(canonical),
            columns_out=tuple(state.columns),
        )

    def _relation_ref(
        self, pred: Term, arity: int, scope: Scope, colindex: Dict[str, int]
    ) -> Tuple[PredRef, Optional[object]]:
        """Resolve a predicate reference used as a relation (scan/update)."""
        if is_ground(pred):
            info = self._try_resolve(pred, arity, scope)
            if info is None and self.strict:
                raise CompileError(f"undeclared predicate {pred}/{arity} (strict mode)")
            return PredRef(pred=pred, arity=arity, info=info), None
        candidates = tuple(scope.candidates(arity))
        name_fn = compile_term_code(pred, colindex)
        return PredRef(pred=pred, arity=arity, info=None, candidates=candidates), name_fn

    def _compile_pred_subgoal(
        self, subgoal: PredSubgoal, scope: Scope, state: _ColumnState, line: int
    ) -> Step:
        colindex = state.colindex
        known = set(state.columns)
        arity = len(subgoal.args)

        # Literal truth values.
        if isinstance(subgoal.pred, Atom) and arity == 0 and subgoal.pred.name in ("true", "false"):
            if subgoal.negated:
                return TruthStep(
                    value=subgoal.pred.name == "false", columns_out=tuple(state.columns)
                )
            return TruthStep(
                value=subgoal.pred.name == "true", columns_out=tuple(state.columns)
            )

        if subgoal.negated:
            ref, name_fn = self._relation_ref(subgoal.pred, arity, scope, colindex)
            if ref.info is not None and ref.info.is_callable:
                raise CompileError(f"line {line}: cannot negate a procedure call")
            return NegScanStep(
                ref=ref,
                pattern_fn=compile_pattern(subgoal.args, colindex),
                name_fn=name_fn,
                columns_out=tuple(state.columns),
                flat=_flat_extract(subgoal.args, known, ()) is not None,
                join_shape=_join_shape(subgoal, known, colindex, ()),
            )

        if is_ground(subgoal.pred):
            info = self._try_resolve(subgoal.pred, arity, scope)
            if info is not None and info.is_callable:
                return self._compile_call(subgoal, info, state, line)
            if info is None and self.strict:
                raise CompileError(
                    f"line {line}: undeclared predicate {subgoal.pred}/{arity} (strict mode)"
                )
            ref = PredRef(pred=subgoal.pred, arity=arity, info=info)
            new_vars = _ordered_new_vars(subgoal.args, known)
            state.add(new_vars)
            return ScanStep(
                ref=ref,
                pattern_fn=compile_pattern(subgoal.args, colindex),
                new_vars=tuple(new_vars),
                columns_out=tuple(state.columns),
                flat_extract=_flat_extract(subgoal.args, known, new_vars),
                join_shape=_join_shape(subgoal, known, colindex, new_vars),
            )

        # Predicate-variable (HiLog) subgoal: name instantiated per row.
        candidates = tuple(scope.candidates(arity))
        name_fn = compile_term_code(subgoal.pred, colindex)
        ref = PredRef(pred=subgoal.pred, arity=arity, info=None, candidates=candidates)
        new_vars = _ordered_new_vars(subgoal.args, known)
        state.add(new_vars)
        # Builtins are a closed vocabulary that set-valued attributes never
        # name, so only user procedures/foreigns force run-time dispatch.
        any_callable = any(
            c.is_callable and c.klass is not PredClass.BUILTIN for c in candidates
        )
        if self.deref_at_compile_time and not any_callable:
            # Every candidate is a stored/derived relation: go straight to
            # storage at run time (the compile-time dereferencing win).
            return ScanStep(
                ref=ref,
                pattern_fn=compile_pattern(subgoal.args, colindex),
                new_vars=tuple(new_vars),
                name_fn=name_fn,
                columns_out=tuple(state.columns),
                flat_extract=_flat_extract(subgoal.args, known, new_vars),
                join_shape=_join_shape(subgoal, known, colindex, new_vars),
            )
        return DynamicStep(
            ref=ref,
            name_fn=name_fn,
            pattern_fn=compile_pattern(subgoal.args, colindex),
            new_vars=tuple(new_vars),
            columns_out=tuple(state.columns),
        )

    def _compile_call(
        self, subgoal: PredSubgoal, info: PredInfo, state: _ColumnState, line: int
    ) -> Step:
        colindex = state.colindex
        known = set(state.columns)
        bound_arity = info.bound_arity
        inputs = subgoal.args[:bound_arity]
        outputs = subgoal.args[bound_arity:]
        input_fns = []
        for arg in inputs:
            try:
                input_fns.append(compile_term_code(arg, colindex))
            except CompileError as exc:
                raise CompileError(
                    f"line {line}: input argument {arg} of {info.display}: {exc}"
                ) from exc
        new_vars = _ordered_new_vars(outputs, known)
        state.add(new_vars)
        ref = PredRef(pred=subgoal.pred, arity=len(subgoal.args), info=info)
        return CallStep(
            ref=ref,
            input_fns=tuple(input_fns),
            free_pattern_fn=compile_pattern(outputs, colindex),
            new_vars=tuple(new_vars),
            columns_out=tuple(state.columns),
            fixed=info.fixed,
        )

    def _compile_compare(self, subgoal: CompareSubgoal, state: _ColumnState, line: int) -> Step:
        colindex = state.colindex
        left, right, op = subgoal.left, subgoal.right, subgoal.op
        left_agg = expr_has_agg(left)
        right_agg = expr_has_agg(right)
        if left_agg and right_agg:
            raise CompileError(f"line {line}: aggregates on both sides of '{op}'")
        if left_agg:
            left, right = right, left
            op = _RELOP_FLIP[op]
            right_agg = True
        if right_agg:
            if not isinstance(right, AggCall):
                raise CompileError(
                    f"line {line}: an aggregate must be the whole right-hand side"
                )
            try:
                arg_fn = compile_expr(right.arg, colindex)
            except CompileError as exc:
                raise CompileError(f"line {line}: aggregate argument: {exc}") from exc
            group_positions = tuple(
                colindex[name] for name in state.group_cols if name in colindex
            )
            binds = (
                op == "="
                and isinstance(left, Var)
                and not left.is_anonymous
                and left.name not in colindex
            )
            if binds:
                state.add([left.name])
                return AggStep(
                    agg_op=right.op,
                    arg_fn=arg_fn,
                    binds=True,
                    group_positions=group_positions,
                    columns_out=tuple(state.columns),
                )
            left_fn = compile_expr(left, colindex)
            return AggStep(
                agg_op=right.op,
                arg_fn=arg_fn,
                binds=False,
                compare_op=op,
                left_fn=left_fn,
                group_positions=group_positions,
                columns_out=tuple(state.columns),
            )
        # No aggregates: a binding or a filter.
        if op == "=":
            if isinstance(left, Var) and not left.is_anonymous and left.name not in colindex:
                fn = compile_expr(right, colindex)
                state.add([left.name])
                return BindStep(var=left.name, fn=fn, columns_out=tuple(state.columns))
            if isinstance(right, Var) and not right.is_anonymous and right.name not in colindex:
                fn = compile_expr(left, colindex)
                state.add([right.name])
                return BindStep(var=right.name, fn=fn, columns_out=tuple(state.columns))
        left_fn = compile_expr(left, colindex)
        right_fn = compile_expr(right, colindex)
        return CompareStep(
            op=op, left_fn=left_fn, right_fn=right_fn, columns_out=tuple(state.columns)
        )


def compile_program(program: Program, **kwargs) -> CompiledProgram:
    """Convenience wrapper: compile with default settings."""
    return ProgramCompiler(**kwargs).compile_program(program)
