"""EXPLAIN: human-readable rendering of compiled plans.

Shows what the compiler decided -- subgoal order after optimization,
resolved predicate classes, pipeline barriers, column layouts -- the
information the paper's Section 9 discussion is about.
"""

from __future__ import annotations

from typing import List

from repro.analysis.scope import PredClass
from repro.opt.plan import fmt_est
from repro.vm.plan import (
    AggStep,
    BindStep,
    CallStep,
    CompareStep,
    CompiledProc,
    CompiledProgram,
    CompiledRepeat,
    CompiledStmt,
    DynamicStep,
    EmptyStep,
    GroupByStep,
    NegScanStep,
    PredRef,
    ScanStep,
    Step,
    TruthStep,
    UnchangedStep,
    UnionStep,
    UpdateStep,
)


def _ref_text(ref: PredRef) -> str:
    name = str(ref.pred)
    if ref.info is not None:
        return f"{name}/{ref.arity} [{ref.info.klass.name}]"
    if ref.candidates:
        classes = sorted({c.klass.name for c in ref.candidates})
        return f"{name}/{ref.arity} [dynamic: {'|'.join(classes)}]"
    return f"{name}/{ref.arity} [dynamic]"


def _join_text(shape) -> str:
    """The hash-join annotation of a scan: its probe-key columns (empty
    keys mean a broadcast / one-shot test, so nothing is shown)."""
    if shape is None or not shape.probe_cols:
        return ""
    return f" key@{list(shape.probe_cols)}"


def _est_text(step: Step) -> str:
    """The planner's row estimate, when one was available at plan time."""
    est = getattr(step, "est_rows", None)
    if est is None:
        return ""
    return f" est~{fmt_est(est)}"


def explain_step(step: Step) -> str:
    barrier = " <<BREAK>>" if step.is_barrier else ""
    cols = ",".join(step.columns_out) if getattr(step, "columns_out", ()) else "-"
    if isinstance(step, ScanStep):
        kind = "SCAN"
        detail = _ref_text(step.ref)
        if step.new_vars:
            detail += f" binds({','.join(step.new_vars)})"
        detail += _join_text(step.join_shape) + _est_text(step)
    elif isinstance(step, NegScanStep):
        kind = "ANTIJOIN"
        detail = "!" + _ref_text(step.ref) + _join_text(step.join_shape) + _est_text(step)
    elif isinstance(step, CompareStep):
        kind = "FILTER"
        detail = f"op '{step.op}'"
    elif isinstance(step, BindStep):
        kind = "BIND"
        detail = f"{step.var} = <expr>"
    elif isinstance(step, AggStep):
        kind = "AGGREGATE"
        mode = "bind" if step.binds else f"filter '{step.compare_op}'"
        groups = f" groups@{list(step.group_positions)}" if step.group_positions else ""
        detail = f"{step.agg_op} ({mode}){groups}"
    elif isinstance(step, GroupByStep):
        kind = "GROUP_BY"
        detail = ",".join(step.group_cols)
    elif isinstance(step, CallStep):
        kind = "CALL"
        detail = _ref_text(step.ref) + f" in/{len(step.input_fns)}"
    elif isinstance(step, DynamicStep):
        kind = "DISPATCH"
        detail = _ref_text(step.ref)
    elif isinstance(step, UpdateStep):
        kind = "UPDATE"
        detail = f"{step.op}{_ref_text(step.ref)}"
    elif isinstance(step, EmptyStep):
        kind = "EMPTY?"
        detail = _ref_text(step.ref)
    elif isinstance(step, UnchangedStep):
        kind = "UNCHANGED?"
        detail = _ref_text(step.ref)
    elif isinstance(step, TruthStep):
        kind = "CONST"
        detail = "true" if step.value else "false"
    elif isinstance(step, UnionStep):
        kind = "UNION"
        detail = f"{len(step.alternatives)} alternatives binds({','.join(step.new_vars)})"
    else:  # pragma: no cover - future step kinds
        kind = type(step).__name__
        detail = ""
    return f"{kind:10s} {detail:44s} cols=({cols}){barrier}"


def step_label(step: Step) -> str:
    """The EXPLAIN line for one step, collapsed to single spaces.

    Used as the deterministic ``name`` of ``step`` trace events so EXPLAIN
    ANALYZE output lines up with plain EXPLAIN.
    """
    return " ".join(explain_step(step).split())


def stmt_label(stmt: CompiledStmt) -> str:
    """A compact label for a compiled assignment (trace ``stmt`` events)."""
    op = stmt.op if stmt.op != "modify" else f"+=[{','.join(map(str, stmt.key_positions))}]"
    return f"{_ref_text(stmt.head_ref)} {op}"


def explain_stmt(stmt, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    if isinstance(stmt, CompiledRepeat):
        lines.append(f"{pad}REPEAT")
        for inner in stmt.body:
            lines.extend(explain_stmt(inner, indent + 1))
        for i, alt in enumerate(stmt.until_alts):
            lines.append(f"{pad}UNTIL alt#{i}")
            for step in alt:
                lines.append(f"{pad}  {explain_step(step)}")
        return lines
    assert isinstance(stmt, CompiledStmt)
    op = stmt.op if stmt.op != "modify" else f"+=[{','.join(map(str, stmt.key_positions))}]"
    fixed = " (fixed)" if stmt.fixed else ""
    lines.append(f"{pad}ASSIGN {_ref_text(stmt.head_ref)} {op}{fixed}")
    for step in stmt.plan:
        lines.append(f"{pad}  {explain_step(step)}")
    return lines


def explain_proc(proc: CompiledProc) -> str:
    header = (
        f"proc {proc.name}/{proc.arity} "
        f"(bound={list(proc.bound_params)}, free={list(proc.free_params)}, "
        f"fixed={proc.fixed})"
    )
    lines = [header]
    if proc.locals:
        lines.append(f"  locals: {', '.join(f'{n}/{a}' for n, a in proc.locals)}")
    for stmt in proc.body:
        lines.extend(explain_stmt(stmt, indent=1))
    return "\n".join(lines)


def explain_program(program: CompiledProgram) -> str:
    parts = []
    for key in sorted(program.procs, key=str):
        parts.append(explain_proc(program.procs[key]))
    if program.script:
        lines = ["script:"]
        for stmt in program.script:
            lines.extend(explain_stmt(stmt, indent=1))
        parts.append("\n".join(lines))
    if program.rules:
        parts.append(f"NAIL! rules: {len(program.rules)} (evaluated by the engine)")
    return "\n\n".join(parts)
