"""Expression and pattern compilation: AST expressions to row closures.

Because binding-time analysis fixes the supplementary relation's column
layout at compile time, every expression compiles to a closure over column
*positions* -- there is no run-time environment lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.errors import CompileError
from repro.glue.builtins import eval_function, term_arith
from repro.lang.ast import AggCall, BinOp, FunCall, UnaryOp
from repro.terms.term import Compound, Num, Term, Var

RowFn = Callable[[tuple], Term]


def compile_expr(expr, colindex: Dict[str, int]) -> RowFn:
    """Compile an aggregate-free expression to a ``row -> Term`` closure.

    Raises :class:`CompileError` on unbound variables or stray aggregate
    calls (the statement compiler extracts those first).
    """
    if isinstance(expr, Num):
        return lambda row: expr
    if isinstance(expr, Var):
        if expr.is_anonymous:
            raise CompileError("anonymous variable in expression position")
        index = colindex.get(expr.name)
        if index is None:
            raise CompileError(f"unbound variable {expr.name} in expression")
        return lambda row: row[index]
    if isinstance(expr, Term):
        return compile_term_code(expr, colindex)
    if isinstance(expr, BinOp):
        left = compile_expr(expr.left, colindex)
        right = compile_expr(expr.right, colindex)
        op = expr.op
        return lambda row: term_arith(op, left(row), right(row))
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, colindex)
        return lambda row: term_arith("-", Num(0), operand(row))
    if isinstance(expr, FunCall):
        arg_fns = tuple(compile_expr(a, colindex) for a in expr.args)
        name = expr.name
        return lambda row: eval_function(name, tuple(fn(row) for fn in arg_fns))
    if isinstance(expr, AggCall):
        raise CompileError("aggregate call in a non-aggregate position")
    raise CompileError(f"cannot compile expression {expr!r}")


def compile_term_code(term: Term, colindex: Dict[str, int]) -> RowFn:
    """Compile a data term (possibly compound, all variables bound) to a
    per-row instantiation closure."""
    if isinstance(term, Var):
        if term.is_anonymous:
            raise CompileError("anonymous variable cannot be instantiated")
        index = colindex.get(term.name)
        if index is None:
            raise CompileError(f"unbound variable {term.name}")
        return lambda row: row[index]
    if isinstance(term, Compound):
        functor_fn = compile_term_code(term.functor, colindex)
        arg_fns = tuple(compile_term_code(a, colindex) for a in term.args)
        return lambda row: Compound(functor_fn(row), tuple(fn(row) for fn in arg_fns))
    # Atoms and numbers are self-evaluating.
    return lambda row: term


def compile_pattern(
    args: Sequence[Term], colindex: Dict[str, int]
) -> Callable[[tuple], Tuple[Term, ...]]:
    """Compile subgoal argument patterns for matching against a relation.

    Variables bound in the input columns are substituted per row; unbound
    (new) variables stay as variables for the relation's matcher to bind.
    """
    fns = []
    for arg in args:
        fns.append(_compile_pattern_term(arg, colindex))
    fns = tuple(fns)
    return lambda row: tuple(fn(row) for fn in fns)


def _compile_pattern_term(term: Term, colindex: Dict[str, int]) -> RowFn:
    if isinstance(term, Var):
        if term.is_anonymous:
            return lambda row: term
        index = colindex.get(term.name)
        if index is None:
            return lambda row: term  # a new variable: left for matching
        return lambda row: row[index]
    if isinstance(term, Compound):
        functor_fn = _compile_pattern_term(term.functor, colindex)
        arg_fns = tuple(_compile_pattern_term(a, colindex) for a in term.args)
        return lambda row: Compound(functor_fn(row), tuple(fn(row) for fn in arg_fns))
    return lambda row: term
