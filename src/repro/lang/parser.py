"""Recursive-descent parser for the Glue-Nail surface language.

The grammar is reconstructed from the paper's examples (Sections 3-7 and
Figure 1).  One parser covers both languages: a head followed by ``:-`` is
a NAIL! rule, a head followed by ``:=``/``+=``/``-=``/``+=[keys]`` is a
Glue assignment statement.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.lang.ast import (
    AggCall,
    AssignStmt,
    BinOp,
    CompareSubgoal,
    CondDisjunction,
    EdbDecl,
    EmptyCond,
    ExportDecl,
    FunCall,
    GroupBySubgoal,
    ImportDecl,
    ModuleDecl,
    PredSig,
    PredSubgoal,
    ProcDecl,
    Program,
    RepeatStmt,
    RuleDecl,
    UnaryOp,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
    WatchDecl,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import AGGREGATE_OPS, BUILTIN_FUNCTIONS, Token, TokenKind
from repro.terms.term import Atom, Compound, Num, Term, Var

_RELOPS = ("=", "!=", "<", ">", "<=", ">=")
_ASSIGN_OPS = (":=", "+=", "-=")


from repro.errors import CompileError


class ParseError(CompileError):
    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{token.line}:{token.column}: {message}"
        super().__init__(message)
        self.token = token


class _Apply:
    """Private parse node: a (possibly zero-argument) predicate application.

    ``base`` is the applied term *without* the final argument list, and
    ``args`` the final argument list; a chain ``students(ID)(Name)`` parses
    to base=students(ID), args=(Name,).  Zero-argument applications are only
    legal as subgoals/heads, never inside expressions.
    """

    __slots__ = ("base", "args")

    def __init__(self, base: Term, args: Tuple[Term, ...]):
        self.base = base
        self.args = args

    def to_term(self) -> Term:
        if not self.args:
            raise ParseError("zero-argument application is not a term")
        return Compound(self.base, self.args)


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> Token:
        token = self.current
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.describe()}", token)
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.current.is_punct(text):
            self.advance()
            return True
        return False

    def expect_name(self, text: Optional[str] = None) -> str:
        token = self.current
        if token.kind is not TokenKind.NAME:
            raise ParseError(f"expected a name, found {token.describe()}", token)
        if text is not None and token.value != text:
            raise ParseError(f"expected {text!r}, found {token.describe()}", token)
        self.advance()
        return token.value

    def accept_name(self, text: str) -> bool:
        if self.current.is_name(text):
            self.advance()
            return True
        return False

    def at_eof(self) -> bool:
        return self.current.kind is TokenKind.EOF

    # ------------------------------------------------------------------ #
    # programs and modules
    # ------------------------------------------------------------------ #

    def parse_program(self) -> Program:
        modules: List[ModuleDecl] = []
        items: List[object] = []
        while not self.at_eof():
            if self.current.is_name("module"):
                modules.append(self.parse_module())
            else:
                items.append(self._parse_item())
        return Program(modules=tuple(modules), items=tuple(items))

    def parse_module(self) -> ModuleDecl:
        self.expect_name("module")
        name = self.expect_name()
        self.expect_punct(";")
        items: List[object] = []
        while True:
            if self.at_eof():
                raise ParseError(f"module {name}: missing final 'end'", self.current)
            if self.current.is_name("end") and not self._looks_like_head_start(self.peek()):
                self.advance()
                self.accept_punct(".")
                break
            items.append(self._parse_item())
        return ModuleDecl(name=name, items=tuple(items))

    @staticmethod
    def _looks_like_head_start(token: Token) -> bool:
        # ``end`` at item position terminates the module; an ``end(`` would
        # be a predicate named end, which we do not allow.
        return token.is_punct("(")

    def _parse_item(self):
        token = self.current
        if token.kind is TokenKind.NAME:
            if token.value == "export":
                return self._parse_export()
            if token.value == "from":
                return self._parse_import()
            if token.value == "edb":
                return self._parse_edb()
            if token.value in ("proc", "procedure"):
                return self._parse_proc()
            if token.value in ("repeat",):
                return self._parse_repeat()
            if token.value == "watch" and not self.peek().is_punct("("):
                # ``watch(`` would be a predicate named watch; the keyword
                # is contextual, like ``end``.
                return self._parse_watch()
        return self._parse_rule_or_statement()

    def _parse_export(self) -> ExportDecl:
        self.expect_name("export")
        sigs = [self._parse_pred_sig()]
        while self.accept_punct(","):
            sigs.append(self._parse_pred_sig())
        self.expect_punct(";")
        return ExportDecl(sigs=tuple(sigs))

    def _parse_import(self) -> ImportDecl:
        self.expect_name("from")
        module = self.expect_name()
        self.expect_name("import")
        sigs = [self._parse_pred_sig()]
        while self.accept_punct(","):
            sigs.append(self._parse_pred_sig())
        self.expect_punct(";")
        return ImportDecl(module=module, sigs=tuple(sigs))

    def _parse_watch(self) -> WatchDecl:
        """``watch pred(Args...) call [module.]proc;`` -- an active rule."""
        start = self.current
        self.expect_name("watch")
        head = self._parse_head()
        if head.bound is not None:
            raise ParseError("watch heads cannot use ':'", start)
        self.expect_name("call")
        module: Optional[str] = None
        name = self.expect_name()
        if self.current.is_punct("."):
            self.advance()
            module = name
            name = self.expect_name()
        self.expect_punct(";")
        return WatchDecl(
            pred=head.pred,
            args=head.args,
            proc=name,
            module=module,
            line=start.line,
        )

    def _parse_edb(self) -> List[EdbDecl]:
        """``edb a(X, Y), b(Z);`` -- returns a list; the caller flattens."""
        self.expect_name("edb")
        decls = [self._parse_edb_item()]
        while self.accept_punct(","):
            decls.append(self._parse_edb_item())
        self.expect_punct(";")
        # A single edb keyword may declare several relations; we return a
        # tuple wrapped in ExportDecl-like fashion is unnecessary -- the
        # module item list simply holds each EdbDecl.
        if len(decls) == 1:
            return decls[0]
        return _EdbGroup(tuple(decls))

    def _parse_edb_item(self) -> EdbDecl:
        name = self.expect_name()
        attrs: List[str] = []
        self.expect_punct("(")
        if not self.accept_punct(")"):
            attrs.append(self._expect_attr_name())
            while self.accept_punct(","):
                attrs.append(self._expect_attr_name())
            self.expect_punct(")")
        return EdbDecl(name=name, attrs=tuple(attrs))

    def _expect_attr_name(self) -> str:
        token = self.current
        if token.kind in (TokenKind.VARIABLE, TokenKind.NAME):
            self.advance()
            return str(token.value)
        raise ParseError(f"expected attribute name, found {token.describe()}", token)

    def _parse_pred_sig(self) -> PredSig:
        name = self.expect_name()
        bound: List[str] = []
        free: List[str] = []
        self.expect_punct("(")
        seen_colon = False
        while not self.current.is_punct(")"):
            if self.accept_punct(":"):
                if seen_colon:
                    raise ParseError("duplicate ':' in signature", self.current)
                seen_colon = True
                continue
            token = self.current
            if token.kind not in (TokenKind.VARIABLE, TokenKind.NAME):
                raise ParseError(
                    f"expected argument name in signature, found {token.describe()}", token
                )
            self.advance()
            (free if seen_colon else bound).append(str(token.value))
            if self.current.is_punct(","):
                self.advance()
        self.expect_punct(")")
        if not seen_colon:
            # No colon: treat every argument as free (a pure result
            # signature); EDB imports use this form.
            free = bound + free
            bound = []
        return PredSig(name=name, bound=tuple(bound), free=tuple(free))

    # ------------------------------------------------------------------ #
    # procedures
    # ------------------------------------------------------------------ #

    def _parse_proc(self) -> ProcDecl:
        start = self.current
        if not (self.accept_name("proc") or self.accept_name("procedure")):
            raise ParseError("expected 'proc' or 'procedure'", self.current)
        name = self.expect_name()
        bound, free = self._parse_param_list()
        locals_: List[EdbDecl] = []
        while self.current.is_name("rels"):
            self.advance()
            locals_.append(self._parse_edb_item())
            while self.accept_punct(","):
                locals_.append(self._parse_edb_item())
            self.expect_punct(";")
        body: List[object] = []
        while not self.current.is_name("end"):
            if self.at_eof():
                raise ParseError(f"procedure {name}: missing 'end'", self.current)
            body.append(self._parse_statement())
        self.expect_name("end")
        self.accept_punct(".")
        return ProcDecl(
            name=name,
            bound_params=tuple(bound),
            free_params=tuple(free),
            locals=tuple(locals_),
            body=tuple(body),
            line=start.line,
        )

    def _parse_param_list(self) -> Tuple[List[Var], List[Var]]:
        self.expect_punct("(")
        bound: List[Var] = []
        free: List[Var] = []
        seen_colon = False
        while not self.current.is_punct(")"):
            if self.accept_punct(":"):
                if seen_colon:
                    raise ParseError("duplicate ':' in parameter list", self.current)
                seen_colon = True
                continue
            token = self.current
            if token.kind is not TokenKind.VARIABLE:
                raise ParseError(
                    f"expected parameter variable, found {token.describe()}", token
                )
            self.advance()
            (free if seen_colon else bound).append(Var(token.value))
            if self.current.is_punct(","):
                self.advance()
        self.expect_punct(")")
        if not seen_colon:
            raise ParseError("procedure parameter list needs a ':'", self.current)
        return bound, free

    # ------------------------------------------------------------------ #
    # statements and rules
    # ------------------------------------------------------------------ #

    def _parse_statement(self):
        if self.current.is_name("repeat"):
            return self._parse_repeat()
        stmt = self._parse_rule_or_statement()
        if isinstance(stmt, RuleDecl):
            raise ParseError("NAIL! rules are not allowed inside procedures", self.current)
        return stmt

    def _parse_repeat(self) -> RepeatStmt:
        start = self.current
        self.expect_name("repeat")
        body: List[object] = []
        while not self.current.is_name("until"):
            if self.at_eof():
                raise ParseError("repeat: missing 'until'", self.current)
            body.append(self._parse_statement())
        self.expect_name("until")
        until = self._parse_until_condition()
        self.expect_punct(";")
        return RepeatStmt(body=tuple(body), until=until, line=start.line)

    def _parse_until_condition(self) -> CondDisjunction:
        if self.accept_punct("{"):
            alternatives = [self._parse_cond_conjunction(stop=("|", "}"))]
            while self.accept_punct("|"):
                alternatives.append(self._parse_cond_conjunction(stop=("|", "}")))
            self.expect_punct("}")
            return CondDisjunction(alternatives=tuple(alternatives))
        return CondDisjunction(alternatives=(self._parse_cond_conjunction(stop=(";",)),))

    def _parse_cond_conjunction(self, stop: Tuple[str, ...]) -> Tuple[object, ...]:
        subgoals = [self._parse_subgoal()]
        while self.accept_punct("&"):
            subgoals.append(self._parse_subgoal())
        token = self.current
        if not any(token.is_punct(s) for s in stop):
            raise ParseError(
                f"expected one of {stop} after condition, found {token.describe()}", token
            )
        return tuple(subgoals)

    def _parse_rule_or_statement(self):
        start = self.current
        head = self._parse_head()
        token = self.current
        if token.is_punct("."):
            # A unit clause ``head.`` -- a NAIL! fact schema (ground unit
            # clauses are plain facts; ones with variables, like the
            # paper's ``tc(E, X, X).``, need demand bindings to evaluate).
            self.advance()
            if head.bound is not None:
                raise ParseError("unit clauses cannot use ':'", start)
            return RuleDecl(
                head_pred=head.pred,
                head_args=head.args,
                body=(PredSubgoal(pred=Atom("true"), args=()),),
                line=start.line,
            )
        if token.is_punct(":-"):
            self.advance()
            body = self._parse_body()
            self.expect_punct(".")
            if head.bound is not None:
                raise ParseError("NAIL! rule heads cannot use ':'", start)
            return RuleDecl(
                head_pred=head.pred, head_args=head.args, body=body, line=start.line
            )
        op = None
        keys: Tuple[Var, ...] = ()
        for candidate in _ASSIGN_OPS:
            if token.is_punct(candidate):
                op = candidate
                self.advance()
                break
        if op is None:
            raise ParseError(
                f"expected ':-', ':=', '+=' or '-=', found {token.describe()}", token
            )
        if op == "+=" and self.current.is_punct("["):
            self.advance()
            key_vars: List[Var] = []
            while not self.current.is_punct("]"):
                key_token = self.current
                if key_token.kind is not TokenKind.VARIABLE:
                    raise ParseError(
                        f"expected key variable, found {key_token.describe()}", key_token
                    )
                self.advance()
                key_vars.append(Var(key_token.value))
                if self.current.is_punct(","):
                    self.advance()
            self.expect_punct("]")
            op = "modify"
            keys = tuple(key_vars)
        body = self._parse_body()
        self.expect_punct(".")
        return AssignStmt(
            head_pred=head.pred,
            head_args=head.args,
            op=op,
            body=body,
            keys=keys,
            head_bound=head.bound,
            line=start.line,
        )

    class _Head:
        __slots__ = ("pred", "args", "bound")

        def __init__(self, pred: Term, args: Tuple[Term, ...], bound: Optional[int]):
            self.pred = pred
            self.args = args
            self.bound = bound

    def _parse_head(self) -> "_Parser._Head":
        """Parse a head: an applied term whose final argument list may use a
        ``:`` separator (``return(X:Y)``)."""
        base = self._parse_primary_term()
        applications: List[Tuple[Tuple[Term, ...], Optional[int]]] = []
        while self.current.is_punct("("):
            applications.append(self._parse_head_arglist())
        if not applications:
            raise ParseError("a head must be a predicate application", self.current)
        pred = base
        for args, bound in applications[:-1]:
            if bound is not None:
                raise ParseError("':' is only allowed in the final argument list")
            if not args:
                raise ParseError("inner application needs arguments")
            pred = Compound(pred, args)
        final_args, final_bound = applications[-1]
        return self._Head(pred=pred, args=final_args, bound=final_bound)

    def _parse_head_arglist(self) -> Tuple[Tuple[Term, ...], Optional[int]]:
        self.expect_punct("(")
        args: List[Term] = []
        bound: Optional[int] = None
        while not self.current.is_punct(")"):
            if self.accept_punct(":"):
                if bound is not None:
                    raise ParseError("duplicate ':' in head", self.current)
                bound = len(args)
                continue
            args.append(self._parse_data_term())
            if self.current.is_punct(","):
                self.advance()
        self.expect_punct(")")
        return tuple(args), bound

    def _parse_body(self) -> Tuple[object, ...]:
        subgoals = [self._parse_subgoal()]
        while self.accept_punct("&"):
            subgoals.append(self._parse_subgoal())
        return tuple(subgoals)

    # ------------------------------------------------------------------ #
    # subgoals
    # ------------------------------------------------------------------ #

    def _parse_subgoal(self):
        token = self.current
        if token.is_punct("{"):
            # Body disjunction: { conj | conj | ... } (footnote 5).
            self.advance()
            alternatives = [self._parse_cond_conjunction(stop=("|", "}"))]
            while self.accept_punct("|"):
                alternatives.append(self._parse_cond_conjunction(stop=("|", "}")))
            self.expect_punct("}")
            return UnionSubgoal(alternatives=tuple(alternatives))
        if token.is_punct("!"):
            self.advance()
            inner = self._parse_subgoal()
            if not isinstance(inner, PredSubgoal):
                raise ParseError("'!' may only negate a predicate subgoal", token)
            if inner.negated:
                raise ParseError("double negation is not supported", token)
            return PredSubgoal(pred=inner.pred, args=inner.args, negated=True)
        if token.is_punct("++") or token.is_punct("--"):
            op = token.value
            self.advance()
            applied = self._parse_applied_or_expr()
            if not isinstance(applied, _Apply):
                raise ParseError("update subgoal needs a predicate application", token)
            pred, args = _split_apply(applied)
            return UpdateSubgoal(op=op, pred=pred, args=args)
        expr = self._parse_applied_or_expr()
        for relop in _RELOPS:
            if self.current.is_punct(relop):
                # Longest-match guard: '<=' lexes as one token, so no issue.
                self.advance()
                left = _expr_of(expr)
                right = _expr_of(self._parse_applied_or_expr())
                return CompareSubgoal(op=relop, left=left, right=right)
        return self._subgoal_from_expr(expr, token)

    def _subgoal_from_expr(self, expr, token: Token):
        if isinstance(expr, _Apply):
            pred, args = _split_apply(expr)
            if isinstance(pred, Atom):
                if pred.name == "group_by":
                    return GroupBySubgoal(terms=args)
                if pred.name == "unchanged":
                    return _make_unchanged(args, token)
                if pred.name == "empty":
                    return _make_empty(args, token)
            return PredSubgoal(pred=pred, args=args)
        if isinstance(expr, Atom) and expr.name in ("true", "false"):
            return PredSubgoal(pred=expr, args=())
        raise ParseError(
            f"expected a subgoal, found expression {expr!r}", token
        )

    # ------------------------------------------------------------------ #
    # terms and expressions
    # ------------------------------------------------------------------ #

    def _parse_data_term(self) -> Term:
        """A data term: no arithmetic, no aggregators (argument position)."""
        expr = self._parse_applied_or_expr()
        if isinstance(expr, _Apply):
            return expr.to_term()
        if isinstance(expr, Term):
            return expr
        raise ParseError("arithmetic is not allowed in argument position", self.current)

    def _parse_applied_or_expr(self):
        """Parse an expression; a pure predicate application is returned as
        an :class:`_Apply` node so the caller can treat it as a subgoal."""
        return self._parse_additive()

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self.current.is_punct("+") or self.current.is_punct("-"):
            op = self.current.value
            self.advance()
            right = self._parse_multiplicative()
            left = BinOp(op=op, left=_expr_of(left), right=_expr_of(right))
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while (
            self.current.is_punct("*")
            or self.current.is_punct("/")
            or self.current.is_name("mod")
        ):
            op = "mod" if self.current.is_name("mod") else self.current.value
            self.advance()
            right = self._parse_unary()
            left = BinOp(op=op, left=_expr_of(left), right=_expr_of(right))
        return left

    def _parse_unary(self):
        if self.current.is_punct("-"):
            self.advance()
            if self.current.kind is TokenKind.NUMBER:
                # A negative literal; it may be a (HiLog) functor: -1(a).
                value = self.current.value
                self.advance()
                return self._parse_applications(Num(-value))
            operand = self._parse_unary()
            if isinstance(operand, Num):
                return Num(-operand.value)
            return UnaryOp(op="-", operand=_expr_of(operand))
        return self._parse_primary()

    def _parse_primary(self):
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            # HiLog allows arbitrary terms as functors, numbers included.
            return self._parse_applications(Num(token.value))
        if token.kind is TokenKind.VARIABLE:
            self.advance()
            base: Term = Var(token.value)
            return self._parse_applications(base)
        if token.kind is TokenKind.NAME:
            name = token.value
            if token.quoted:
                # Quoted names are plain atoms, never builtin functions.
                self.advance()
                return self._parse_applications(Atom(name))
            if name in AGGREGATE_OPS and self.peek().is_punct("("):
                self.advance()
                self.expect_punct("(")
                arg = _expr_of(self._parse_applied_or_expr())
                self.expect_punct(")")
                return AggCall(op=name, arg=arg)
            if name in BUILTIN_FUNCTIONS and self.peek().is_punct("("):
                self.advance()
                self.expect_punct("(")
                args = [_expr_of(self._parse_applied_or_expr())]
                while self.accept_punct(","):
                    args.append(_expr_of(self._parse_applied_or_expr()))
                self.expect_punct(")")
                return FunCall(name=name, args=tuple(args))
            self.advance()
            return self._parse_applications(Atom(name))
        if token.is_punct("("):
            self.advance()
            inner = self._parse_applied_or_expr()
            self.expect_punct(")")
            return _expr_of(inner) if not isinstance(inner, Term) else inner
        raise ParseError(f"unexpected token {token.describe()}", token)

    def _parse_applications(self, base: Term):
        """Parse zero or more application suffixes ``(args)`` after a term."""
        result: object = base
        while self.current.is_punct("("):
            self.advance()
            args: List[Term] = []
            if not self.current.is_punct(")"):
                args.append(self._parse_data_term())
                while self.accept_punct(","):
                    args.append(self._parse_data_term())
            self.expect_punct(")")
            prev_base = result.to_term() if isinstance(result, _Apply) else result
            result = _Apply(base=prev_base, args=tuple(args))
        return result

    def _parse_primary_term(self) -> Term:
        token = self.current
        if token.kind is TokenKind.NAME:
            self.advance()
            return Atom(token.value)
        if token.kind is TokenKind.VARIABLE:
            self.advance()
            return Var(token.value)
        raise ParseError(f"expected a predicate name, found {token.describe()}", token)


class _EdbGroup(tuple):
    """Internal: several EdbDecls introduced by one ``edb`` keyword."""

    def __new__(cls, decls):
        return super().__new__(cls, decls)


def _split_apply(applied: _Apply) -> Tuple[Term, Tuple[Term, ...]]:
    return applied.base, applied.args


def _expr_of(value):
    """Convert a parse result into an expression node (reject zero-arg
    applications, flatten _Apply into compound terms)."""
    if isinstance(value, _Apply):
        return value.to_term()
    return value


def _make_unchanged(args: Tuple[Term, ...], token: Token) -> UnchangedCond:
    if len(args) != 1 or not isinstance(args[0], Compound):
        raise ParseError("unchanged(...) needs a predicate pattern argument", token)
    pattern = args[0]
    return UnchangedCond(pred=pattern.functor, arity=len(pattern.args))


def _make_empty(args: Tuple[Term, ...], token: Token) -> EmptyCond:
    if len(args) != 1 or not isinstance(args[0], Compound):
        raise ParseError("empty(...) needs a predicate application argument", token)
    pattern = args[0]
    return EmptyCond(pred=pattern.functor, args=pattern.args)


# --------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------- #


def _flatten_items(items) -> Tuple[object, ...]:
    out: List[object] = []
    for item in items:
        if isinstance(item, _EdbGroup):
            out.extend(item)
        else:
            out.append(item)
    return tuple(out)


def parse_program(text: str) -> Program:
    parser = _Parser(text)
    program = parser.parse_program()
    modules = tuple(
        ModuleDecl(name=m.name, items=_flatten_items(m.items)) for m in program.modules
    )
    return Program(modules=modules, items=_flatten_items(program.items))


def parse_module(text: str) -> ModuleDecl:
    program = parse_program(text)
    if len(program.modules) != 1 or program.items:
        raise ParseError("expected exactly one module")
    return program.modules[0]


def parse_statement(text: str):
    parser = _Parser(text)
    stmt = parser._parse_statement()
    if not parser.at_eof():
        raise ParseError("trailing input after statement", parser.current)
    return stmt


def parse_rule(text: str) -> RuleDecl:
    parser = _Parser(text)
    item = parser._parse_rule_or_statement()
    if not parser.at_eof():
        raise ParseError("trailing input after rule", parser.current)
    if not isinstance(item, RuleDecl):
        raise ParseError("expected a NAIL! rule (':-')")
    return item


def parse_term(text: str) -> Term:
    parser = _Parser(text)
    term = parser._parse_data_term()
    if not parser.at_eof():
        raise ParseError("trailing input after term", parser.current)
    return term


def parse_query(text: str) -> PredSubgoal:
    """Parse an ad-hoc query ``p(args)?`` (trailing '?' optional)."""
    parser = _Parser(text)
    expr = parser._parse_applied_or_expr()
    parser.accept_punct("?")
    parser.accept_punct(".")
    if not parser.at_eof():
        raise ParseError("trailing input after query", parser.current)
    if not isinstance(expr, _Apply):
        raise ParseError("a query must be a predicate application")
    pred, args = _split_apply(expr)
    return PredSubgoal(pred=pred, args=args)


def parse_ground_fact(text: str) -> Tuple[Term, Tuple[Term, ...]]:
    """Parse one fact line ``name(args).`` into (name term, ground row)."""
    parser = _Parser(text)
    expr = parser._parse_applied_or_expr()
    parser.accept_punct(".")
    if not parser.at_eof():
        raise ParseError("trailing input after fact", parser.current)
    if not isinstance(expr, _Apply):
        raise ParseError("a fact must be a predicate application")
    pred, args = _split_apply(expr)
    from repro.terms.term import is_ground

    if not is_ground(pred) or not all(is_ground(a) for a in args):
        raise ParseError("facts must be ground")
    return pred, args


_REL_DIRECTIVE = re.compile(r"%\s*rel\s+(.+?)\s*/\s*(\d+)\s*\Z")


def parse_directive_rel(line: str) -> Optional[Tuple[Term, int]]:
    """Parse a ``% rel name / arity`` catalog directive, or return None."""
    matched = _REL_DIRECTIVE.match(line.strip())
    if not matched:
        return None
    name = parse_term(matched.group(1))
    return name, int(matched.group(2))
