"""Hand-written lexer for the Glue-Nail surface language.

Comment syntax: ``%`` to end of line (the Prolog tradition the paper's
examples follow) and ``/* ... */`` block comments.
"""

from __future__ import annotations

from typing import List

from repro.lang.tokens import OPERATORS, Token, TokenKind


from repro.errors import CompileError


class LexError(CompileError):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() and ch.islower()


def _is_var_start(ch: str) -> bool:
    return ch == "_" or (ch.isalpha() and ch.isupper())


def _is_ident(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    col = 1
    size = len(text)

    def advance(n: int) -> None:
        nonlocal pos, line, col
        for _ in range(n):
            if pos < size and text[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < size:
        ch = text[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "%":
            while pos < size and text[pos] != "\n":
                advance(1)
            continue
        if text.startswith("/*", pos):
            start_line, start_col = line, col
            advance(2)
            while pos < size and not text.startswith("*/", pos):
                advance(1)
            if pos >= size:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch == "'":
            tokens.append(_lex_quoted(text, pos, line, col))
            advance(_quoted_length(text, pos, line, col))
            continue
        if ch.isdigit():
            token, length = _lex_number(text, pos, line, col)
            tokens.append(token)
            advance(length)
            continue
        if _is_name_start(ch):
            end = pos
            while end < size and _is_ident(text[end]):
                end += 1
            tokens.append(Token(TokenKind.NAME, text[pos:end], line, col))
            advance(end - pos)
            continue
        if _is_var_start(ch):
            end = pos
            while end < size and _is_ident(text[end]):
                end += 1
            tokens.append(Token(TokenKind.VARIABLE, text[pos:end], line, col))
            advance(end - pos)
            continue
        matched = None
        for op in OPERATORS:
            if text.startswith(op, pos):
                matched = op
                break
        if matched is not None:
            tokens.append(Token(TokenKind.PUNCT, matched, line, col))
            advance(len(matched))
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenKind.EOF, None, line, col))
    return tokens


def _quoted_length(text: str, pos: int, line: int, col: int) -> int:
    """Length in source characters of the quoted atom starting at ``pos``."""
    i = pos + 1
    size = len(text)
    while i < size:
        ch = text[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "'":
            return i - pos + 1
        if ch == "\n":
            break
        i += 1
    raise LexError("unterminated quoted atom", line, col)


def _lex_quoted(text: str, pos: int, line: int, col: int) -> Token:
    length = _quoted_length(text, pos, line, col)
    raw = text[pos + 1 : pos + length - 1]
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt == "t":
                out.append("\t")
            elif nxt == "r":
                out.append("\r")
            else:
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return Token(TokenKind.NAME, "".join(out), line, col, quoted=True)


def _lex_number(text: str, pos: int, line: int, col: int):
    size = len(text)
    end = pos
    while end < size and text[end].isdigit():
        end += 1
    is_float = False
    # A float needs a digit after the dot; otherwise the dot is the
    # statement terminator (``matrix(X, 2).``).
    if end < size and text[end] == "." and end + 1 < size and text[end + 1].isdigit():
        is_float = True
        end += 1
        while end < size and text[end].isdigit():
            end += 1
    if end < size and text[end] in "eE":
        exp = end + 1
        if exp < size and text[exp] in "+-":
            exp += 1
        if exp < size and text[exp].isdigit():
            is_float = True
            end = exp
            while end < size and text[end].isdigit():
                end += 1
    literal = text[pos:end]
    value = float(literal) if is_float else int(literal)
    return Token(TokenKind.NUMBER, value, line, col), end - pos
