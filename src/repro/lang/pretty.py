"""Pretty-printer: AST back to Glue-Nail surface syntax.

``parse(pretty(ast)) == ast`` is a tested invariant; the NAIL!-to-Glue
compiler also uses the printer so generated code is readable.
"""

from __future__ import annotations

from typing import Tuple

from repro.lang.ast import (
    AggCall,
    AssignStmt,
    BinOp,
    CompareSubgoal,
    CondDisjunction,
    EdbDecl,
    EmptyCond,
    ExportDecl,
    FunCall,
    GroupBySubgoal,
    ImportDecl,
    ModuleDecl,
    PredSig,
    PredSubgoal,
    ProcDecl,
    Program,
    RepeatStmt,
    RuleDecl,
    UnaryOp,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
    WatchDecl,
)
from repro.terms.printer import term_to_str
from repro.terms.term import Term, Var

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "mod": 2}


def pretty_expr(expr, parent_prec: int = 0) -> str:
    if isinstance(expr, Term):
        return term_to_str(expr)
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        text = f"{pretty_expr(expr.left, prec)} {expr.op} {pretty_expr(expr.right, prec + 1)}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, UnaryOp):
        return f"-{pretty_expr(expr.operand, 3)}"
    if isinstance(expr, FunCall):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, AggCall):
        return f"{expr.op}({pretty_expr(expr.arg)})"
    raise TypeError(f"not an expression: {expr!r}")


def _pretty_application(pred: Term, args: Tuple[Term, ...]) -> str:
    head = term_to_str(pred)
    inner = ", ".join(term_to_str(a) for a in args)
    return f"{head}({inner})"


def pretty_subgoal(subgoal) -> str:
    if isinstance(subgoal, PredSubgoal):
        if not subgoal.args and not subgoal.negated:
            name = term_to_str(subgoal.pred)
            if name in ("true", "false"):
                return name
            return f"{name}()"
        text = _pretty_application(subgoal.pred, subgoal.args)
        return f"!{text}" if subgoal.negated else text
    if isinstance(subgoal, CompareSubgoal):
        return f"{pretty_expr(subgoal.left)} {subgoal.op} {pretty_expr(subgoal.right)}"
    if isinstance(subgoal, UpdateSubgoal):
        return f"{subgoal.op}{_pretty_application(subgoal.pred, subgoal.args)}"
    if isinstance(subgoal, GroupBySubgoal):
        inner = ", ".join(term_to_str(t) for t in subgoal.terms)
        return f"group_by({inner})"
    if isinstance(subgoal, UnchangedCond):
        wildcards = ", ".join("_" for _ in range(subgoal.arity))
        return f"unchanged({term_to_str(subgoal.pred)}({wildcards}))"
    if isinstance(subgoal, EmptyCond):
        return f"empty({_pretty_application(subgoal.pred, subgoal.args)})"
    if isinstance(subgoal, UnionSubgoal):
        alts = [" & ".join(pretty_subgoal(s) for s in alt) for alt in subgoal.alternatives]
        return "{ " + " | ".join(alts) + " }"
    raise TypeError(f"not a subgoal: {subgoal!r}")


def _pretty_head(stmt: AssignStmt) -> str:
    head = term_to_str(stmt.head_pred)
    if stmt.head_bound is None:
        inner = ", ".join(term_to_str(a) for a in stmt.head_args)
        return f"{head}({inner})"
    bound = stmt.head_args[: stmt.head_bound]
    free = stmt.head_args[stmt.head_bound :]
    inner = ", ".join(term_to_str(a) for a in bound)
    inner += ":" + ", ".join(term_to_str(a) for a in free)
    return f"{head}({inner})"


def pretty_statement(stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, AssignStmt):
        op = stmt.op
        if op == "modify":
            keys = ", ".join(v.name for v in stmt.keys)
            op = f"+=[{keys}]"
        body = " & ".join(pretty_subgoal(s) for s in stmt.body)
        return f"{pad}{_pretty_head(stmt)} {op} {body}."
    if isinstance(stmt, RepeatStmt):
        lines = [f"{pad}repeat"]
        for inner in stmt.body:
            lines.append(pretty_statement(inner, indent + 1))
        lines.append(f"{pad}until {pretty_condition(stmt.until)};")
        return "\n".join(lines)
    raise TypeError(f"not a statement: {stmt!r}")


def pretty_condition(cond: CondDisjunction) -> str:
    rendered = [" & ".join(pretty_subgoal(s) for s in alt) for alt in cond.alternatives]
    if len(rendered) == 1:
        return rendered[0]
    return "{ " + " | ".join(rendered) + " }"


def pretty_rule(rule: RuleDecl, indent: int = 0) -> str:
    pad = "  " * indent
    head = _pretty_application(rule.head_pred, rule.head_args)
    body = " & ".join(pretty_subgoal(s) for s in rule.body)
    return f"{pad}{head} :- {body}."


def _pretty_sig(sig: PredSig) -> str:
    inner = ", ".join(sig.bound)
    inner += ":"
    if sig.free:
        inner += ", ".join(sig.free)
    return f"{sig.name}({inner})"


def _pretty_edb_item(decl: EdbDecl) -> str:
    return f"{decl.name}({', '.join(decl.attrs)})"


def pretty_proc(proc: ProcDecl, indent: int = 0) -> str:
    pad = "  " * indent
    params = ", ".join(v.name for v in proc.bound_params)
    params += ":"
    params += ", ".join(v.name for v in proc.free_params)
    lines = [f"{pad}proc {proc.name}({params})"]
    if proc.locals:
        rels = ", ".join(_pretty_edb_item(decl) for decl in proc.locals)
        lines.append(f"{pad}rels {rels};")
    for stmt in proc.body:
        lines.append(pretty_statement(stmt, indent + 1))
    lines.append(f"{pad}end")
    return "\n".join(lines)


def pretty_item(item, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(item, ExportDecl):
        sigs = ", ".join(_pretty_sig(s) for s in item.sigs)
        return f"{pad}export {sigs};"
    if isinstance(item, ImportDecl):
        sigs = ", ".join(_pretty_sig(s) for s in item.sigs)
        return f"{pad}from {item.module} import {sigs};"
    if isinstance(item, EdbDecl):
        return f"{pad}edb {_pretty_edb_item(item)};"
    if isinstance(item, ProcDecl):
        return pretty_proc(item, indent)
    if isinstance(item, RuleDecl):
        return pretty_rule(item, indent)
    if isinstance(item, (AssignStmt, RepeatStmt)):
        return pretty_statement(item, indent)
    if isinstance(item, WatchDecl):
        args = ", ".join(term_to_str(a) for a in item.args)
        handler = f"{item.module}.{item.proc}" if item.module else item.proc
        return f"{pad}watch {term_to_str(item.pred)}({args}) call {handler};"
    raise TypeError(f"not a module item: {item!r}")


def pretty_module(module: ModuleDecl) -> str:
    lines = [f"module {module.name};"]
    for item in module.items:
        lines.append(pretty_item(item, 1))
    lines.append("end")
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    parts = [pretty_module(m) for m in program.modules]
    parts.extend(pretty_item(item) for item in program.items)
    return "\n\n".join(parts) + "\n"
