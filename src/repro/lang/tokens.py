"""Token definitions for the Glue-Nail lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    NAME = auto()       # lower-case identifier or quoted atom
    VARIABLE = auto()   # upper-case or underscore identifier
    NUMBER = auto()     # int or float literal
    PUNCT = auto()      # one of the punctuation / operator strings
    EOF = auto()


# Multi-character operators, longest first so the lexer matches greedily.
OPERATORS = (
    ":=",
    "+=",
    "-=",
    ":-",
    "!=",
    "<=",
    ">=",
    "++",
    "--",
    "(",
    ")",
    ",",
    ".",
    ";",
    ":",
    "&",
    "|",
    "!",
    "{",
    "}",
    "[",
    "]",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "?",
)

# Structural keywords.  They are *contextual*: the parser recognises them by
# value at statement positions, so user predicates may still reuse the names
# where no ambiguity arises (e.g. a relation called ``in``).
KEYWORDS = frozenset(
    {
        "module",
        "export",
        "import",
        "from",
        "edb",
        "proc",
        "procedure",
        "rels",
        "repeat",
        "until",
        "end",
        "watch",
    }
)

# Aggregate operators (paper Section 3.3).
AGGREGATE_OPS = frozenset(
    {"min", "max", "mean", "sum", "product", "arbitrary", "std_dev", "count"}
)

# Built-in functions usable inside expressions (paper Section 2: string
# concatenation, length and substring are built in; arithmetic helpers are
# the obvious complements).
BUILTIN_FUNCTIONS = frozenset(
    {"concat", "length", "substring", "abs", "mod", "to_string", "to_number"}
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: object
    line: int
    column: int
    quoted: bool = False  # a quoted atom never acts as a keyword/function

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == text

    def is_name(self, text: str) -> bool:
        """Keyword test: quoted atoms never behave as keywords."""
        return self.kind is TokenKind.NAME and self.value == text and not self.quoted

    def describe(self) -> str:
        if self.kind is TokenKind.EOF:
            return "end of input"
        return repr(self.value)
