"""The Glue-Nail surface language: lexer, AST, parser, pretty-printer.

One grammar covers both languages: a module may contain Glue procedures and
NAIL! rules side by side (paper Section 6 -- "a module can contain both Glue
procedures and NAIL! rules, thus allowing the programmer to group predicates
by function, rather than by type").  Glue assignment statements use the
operators ``:=``, ``+=``, ``-=`` and ``+=[keys]``; NAIL! rules use ``:-``.
"""

from repro.lang.ast import (
    AggCall,
    AssignStmt,
    BinOp,
    CompareSubgoal,
    CondDisjunction,
    EdbDecl,
    EmptyCond,
    ExportDecl,
    FunCall,
    GroupBySubgoal,
    ImportDecl,
    ModuleDecl,
    PredSig,
    PredSubgoal,
    ProcDecl,
    Program,
    RepeatStmt,
    RuleDecl,
    UnaryOp,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import (
    ParseError,
    parse_directive_rel,
    parse_ground_fact,
    parse_module,
    parse_program,
    parse_query,
    parse_rule,
    parse_statement,
    parse_term,
)
from repro.lang.pretty import pretty_program, pretty_statement, pretty_subgoal

__all__ = [
    "AggCall",
    "AssignStmt",
    "BinOp",
    "CompareSubgoal",
    "CondDisjunction",
    "EdbDecl",
    "EmptyCond",
    "ExportDecl",
    "FunCall",
    "GroupBySubgoal",
    "ImportDecl",
    "LexError",
    "ModuleDecl",
    "ParseError",
    "PredSig",
    "PredSubgoal",
    "ProcDecl",
    "Program",
    "RepeatStmt",
    "RuleDecl",
    "UnaryOp",
    "UnchangedCond",
    "UnionSubgoal",
    "UpdateSubgoal",
    "parse_directive_rel",
    "parse_ground_fact",
    "parse_module",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_statement",
    "parse_term",
    "pretty_program",
    "pretty_statement",
    "pretty_subgoal",
    "tokenize",
]
