"""Abstract syntax for Glue-Nail programs.

All nodes are frozen dataclasses so ASTs are hashable and structurally
comparable; the parser/pretty-printer round-trip test relies on this.

Expressions (the right-hand sides of comparison subgoals) are trees over
``Term`` leaves with :class:`BinOp` / :class:`UnaryOp` / :class:`FunCall`
(built-in functions such as ``concat``) and :class:`AggCall` (the aggregate
operators of paper Section 3.3) as interior nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.terms.term import Term, Var

# --------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class BinOp:
    op: str  # one of + - * / mod
    left: object
    right: object


@dataclass(frozen=True, slots=True)
class UnaryOp:
    op: str  # -
    operand: object


@dataclass(frozen=True, slots=True)
class FunCall:
    """A built-in function application inside an expression."""

    name: str
    args: Tuple[object, ...]


@dataclass(frozen=True, slots=True)
class AggCall:
    """An aggregate operator application, e.g. ``min(T)``.

    The argument is an expression over variables bound earlier in the body;
    the operator ranges over the tuples of the preceding supplementary
    relation (per group once ``group_by`` has partitioned it).
    """

    op: str  # min max mean sum product arbitrary std_dev count
    arg: object


Expr = object  # Term | BinOp | UnaryOp | FunCall | AggCall


# --------------------------------------------------------------------- #
# subgoals
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class PredSubgoal:
    """An ordinary subgoal ``p(args)``.

    ``pred`` is a term: an atom for a plain predicate, a variable for a
    HiLog predicate-variable subgoal (``E_set(Emp)``), or a compound term
    for a parameterized predicate (``students(ID)(Name)``).
    """

    pred: Term
    args: Tuple[Term, ...]
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)


@dataclass(frozen=True, slots=True)
class CompareSubgoal:
    """``left op right`` with op in = != < > <= >=.

    ``Var = expr`` acts as a binding when the variable is unbound and as a
    filter when it is bound; other comparisons are filters.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UpdateSubgoal:
    """An EDB-updating subgoal in a body: ``++p(args)`` inserts the current
    binding's instantiation, ``--p(args)`` deletes all matching tuples.
    Update subgoals are *fixed* (paper Section 3.1) and force a pipeline
    break (Section 9)."""

    op: str  # "++" or "--"
    pred: Term
    args: Tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class GroupBySubgoal:
    """``group_by(T1, ..., Tk)``: partitions the supplementary relation into
    maximal groups agreeing on the argument terms; cascades."""

    terms: Tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class UnchangedCond:
    """``unchanged(p(...))``: true when p has not changed since the last time
    this syntactic occurrence was evaluated; always false on first use."""

    pred: Term
    arity: int


@dataclass(frozen=True, slots=True)
class EmptyCond:
    """``empty(p(args))``: true when no tuple of p matches the args."""

    pred: Term
    args: Tuple[Term, ...]


@dataclass(frozen=True, slots=True)
class UnionSubgoal:
    """A body disjunction ``{ c1 | c2 | ... }``.

    The paper's footnote 5 notes that bodies "may contain control
    operators other than conjunction" without specifying them; this
    reproduction provides disjunction as that extension.  Every
    alternative must bind the same set of new variables, and alternatives
    may not contain fixed subgoals (their execution count would be
    ambiguous).
    """

    alternatives: Tuple[Tuple[object, ...], ...]


Subgoal = object  # one of the subgoal classes above


@dataclass(frozen=True, slots=True)
class CondDisjunction:
    """An until-condition: ``{ c1 | c2 | ... }`` -- true when any alternative
    holds; each alternative is a conjunction of condition subgoals."""

    alternatives: Tuple[Tuple[Subgoal, ...], ...]


# --------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class AssignStmt:
    """A Glue assignment statement (paper Section 3).

    ``head_bound`` carries the position of the ``:`` in a ``return(X:Y)``
    head (the number of input-extension arguments); it is ``None`` for
    ordinary heads.  ``keys`` holds the key variables of a modify
    assignment ``+=[Z1,...]`` and is empty otherwise.
    """

    head_pred: Term
    head_args: Tuple[Term, ...]
    op: str  # ":=", "+=", "-=", "modify"
    body: Tuple[Subgoal, ...]
    keys: Tuple[Var, ...] = ()
    head_bound: Optional[int] = None
    line: int = field(default=0, compare=False)

    @property
    def is_return(self) -> bool:
        from repro.terms.term import Atom

        return self.head_pred == Atom("return")


@dataclass(frozen=True, slots=True)
class RepeatStmt:
    """``repeat <statements> until <condition>;``"""

    body: Tuple[object, ...]
    until: CondDisjunction
    line: int = field(default=0, compare=False)


Statement = object  # AssignStmt | RepeatStmt


# --------------------------------------------------------------------- #
# declarations
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class PredSig:
    """A predicate signature with a binding pattern: ``tc_e(X:Y)`` has one
    bound and one free argument; ``select(:Key)`` has zero bound."""

    name: str
    bound: Tuple[str, ...]
    free: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.bound) + len(self.free)


@dataclass(frozen=True, slots=True)
class EdbDecl:
    """``edb element(Key, Origin, ...)``: declares an EDB relation."""

    name: str
    attrs: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.attrs)


@dataclass(frozen=True, slots=True)
class WatchDecl:
    """``watch path(X, Y) call handler;`` -- a Glue-level active rule.

    Runs procedure ``proc`` on every committed delta of ``pred``/len(args)
    with ``(op, row...)`` input tuples (``op`` is the atom ``insert`` or
    ``delete``).  Ground head arguments double as a row filter; variables
    are wildcards.  ``module`` qualifies the handler (``call m.p``).
    """

    pred: Term
    args: Tuple[Term, ...]
    proc: str
    module: Optional[str] = None
    line: int = field(default=0, compare=False)

    @property
    def arity(self) -> int:
        return len(self.args)


@dataclass(frozen=True, slots=True)
class ImportDecl:
    module: str
    sigs: Tuple[PredSig, ...]


@dataclass(frozen=True, slots=True)
class ExportDecl:
    sigs: Tuple[PredSig, ...]


@dataclass(frozen=True, slots=True)
class RuleDecl:
    """A NAIL! rule ``head :- body.`` -- purely declarative, no side effects."""

    head_pred: Term
    head_args: Tuple[Term, ...]
    body: Tuple[Subgoal, ...]
    line: int = field(default=0, compare=False)


@dataclass(frozen=True, slots=True)
class ProcDecl:
    """A Glue procedure (paper Section 4)."""

    name: str
    bound_params: Tuple[Var, ...]
    free_params: Tuple[Var, ...]
    locals: Tuple[EdbDecl, ...]  # local relations: name + attribute names
    body: Tuple[Statement, ...]
    line: int = field(default=0, compare=False)

    @property
    def arity(self) -> int:
        return len(self.bound_params) + len(self.free_params)

    @property
    def bound_arity(self) -> int:
        return len(self.bound_params)


ModuleItem = object  # ExportDecl | ImportDecl | EdbDecl-list | ProcDecl | RuleDecl


@dataclass(frozen=True, slots=True)
class ModuleDecl:
    """A compile-time module (paper Section 6)."""

    name: str
    items: Tuple[ModuleItem, ...]

    @property
    def exports(self) -> Tuple[PredSig, ...]:
        out = []
        for item in self.items:
            if isinstance(item, ExportDecl):
                out.extend(item.sigs)
        return tuple(out)

    @property
    def imports(self) -> Tuple[ImportDecl, ...]:
        return tuple(item for item in self.items if isinstance(item, ImportDecl))

    @property
    def edb_decls(self) -> Tuple[EdbDecl, ...]:
        return tuple(item for item in self.items if isinstance(item, EdbDecl))

    @property
    def procs(self) -> Tuple[ProcDecl, ...]:
        return tuple(item for item in self.items if isinstance(item, ProcDecl))

    @property
    def rules(self) -> Tuple[RuleDecl, ...]:
        return tuple(item for item in self.items if isinstance(item, RuleDecl))


@dataclass(frozen=True, slots=True)
class Program:
    """A parsed compilation unit: modules plus loose top-level items (rules,
    procedures and declarations outside any module, for scripts/tests)."""

    modules: Tuple[ModuleDecl, ...] = ()
    items: Tuple[ModuleItem, ...] = field(default=())

    def statement_count(self) -> int:
        """Number of Glue statements and NAIL! rules -- the unit of the
        paper's 'two statements per Mips-second' compile-speed figure."""

        def count_stmts(stmts) -> int:
            total = 0
            for stmt in stmts:
                if isinstance(stmt, RepeatStmt):
                    total += count_stmts(stmt.body)
                else:
                    total += 1
            return total

        total = 0
        for module in self.modules:
            for item in module.items:
                if isinstance(item, ProcDecl):
                    total += count_stmts(item.body)
                elif isinstance(item, RuleDecl):
                    total += 1
        for item in self.items:
            if isinstance(item, ProcDecl):
                total += count_stmts(item.body)
            elif isinstance(item, RuleDecl):
                total += 1
        return total
