"""An interactive Glue-Nail read-eval-print loop.

Accepts, line by line (multi-line input accumulates until a terminator):

* facts              ``edge(1, 2).``        -> inserted into the EDB
* NAIL! rules        ``p(X) :- q(X).``      -> added to the rule set
* Glue statements    ``out(X) := q(X).``    -> executed immediately
* procedures/modules ``proc f(X:Y) ... end``-> defined
* queries            ``p(1, X)?``           -> answered and printed
* commands           ``.help .rels .dump p/2 .stats .explain .magic p(1,X)?
                       .strategy pipelined|materialized .save F .load F .quit``

The REPL is line-oriented and stream-based (injectable input/output), so
it is fully testable without a TTY.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO

from repro.core.query import rows_to_python
from repro.core.system import GlueNailSystem
from repro.errors import GlueNailError
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse_program, parse_query
from repro.terms.printer import tuple_to_str

_HELP = """\
Glue-Nail REPL.  Enter facts, rules, Glue statements, procedures or
queries.  Input accumulates until it parses (procedures end with 'end').
  p(1, 2).             insert a fact (ground) / add a unit rule
  p(X) :- q(X).        add a NAIL! rule
  out(X) := q(X).      execute a Glue statement now
  proc f(X:Y) ... end  define a procedure
  f(1, Y)?             query (relations, NAIL! predicates, procedures)
Commands:
  .help                this text
  .rels                list EDB relations
  .dump NAME/ARITY     print a relation's tuples
  .magic QUERY?        answer a query demand-driven
  .explain             show the compiled plans
  .analyze QUERY?      run a query, print the plan with actual rows/costs
  .profile on|off      trace queries (`.last` then shows the trace tree)
  .last                stats (and trace, with .profile on) of the last query
  .strategy NAME       pipelined | materialized
  .batch columnar|row  columnar batch kernels or the row baseline
  .workers N           partition-parallel evaluation across N threads (1 = serial)
  .stats               cost counters since the last .stats
  .save FILE / .load FILE   EDB persistence
  .begin / .commit / .rollback   transaction boundaries
  .checkpoint          compact the durable store's WAL (with --db)
  .watch NAME/ARITY    print committed deltas of a predicate (.watch lists)
  .unwatch ID          stop a watch
  .quit                leave
"""


class Repl:
    """The REPL engine: feed lines, observe output."""

    def __init__(
        self,
        system: Optional[GlueNailSystem] = None,
        out: Optional[TextIO] = None,
    ):
        self.out = out if out is not None else sys.stdout
        self.system = system if system is not None else GlueNailSystem(out=self.out)
        self._pending: List[str] = []
        self._watches: dict = {}  # sub id -> Subscription (.watch command)
        self.done = False

    # ------------------------------------------------------------------ #

    def _print(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def feed(self, line: str) -> None:
        """Process one input line."""
        stripped = line.strip()
        if not self._pending and not stripped:
            return
        if not self._pending and stripped.startswith("."):
            self._command(stripped)
            return
        self._pending.append(line)
        text = "\n".join(self._pending)
        if self._try_complete(text):
            self._pending.clear()

    def run(self, inp: TextIO, banner: bool = True) -> None:
        if banner:
            self._print("Glue-Nail 1.0 -- .help for help, .quit to leave")
        for line in inp:
            self.feed(line)
            if self.done:
                return

    # ------------------------------------------------------------------ #
    # input classification
    # ------------------------------------------------------------------ #

    def _try_complete(self, text: str) -> bool:
        """Attempt to interpret accumulated input; True when consumed."""
        stripped = text.strip()
        if stripped.endswith("?"):
            self._query(stripped)
            return True
        try:
            program = parse_program(text)
        except (ParseError, LexError) as exc:
            if self._looks_incomplete(text):
                return False  # keep accumulating
            self._print(f"parse error: {exc}")
            return True
        try:
            self._execute(program, text)
        except GlueNailError as exc:
            self._print(f"error: {exc}")
        return True

    @staticmethod
    def _looks_incomplete(text: str) -> bool:
        stripped = text.strip()
        if not stripped:
            return False
        # Procedures/modules continue until 'end'; statements until '.'.
        opens = any(
            stripped.startswith(k) for k in ("proc", "procedure", "module")
        )
        if opens and not stripped.endswith("end"):
            return True
        return not (stripped.endswith(".") or stripped.endswith("end"))

    def _execute(self, program, text: str) -> None:
        from repro.lang.ast import AssignStmt, PredSubgoal, RepeatStmt, RuleDecl
        from repro.terms.term import Atom, is_ground

        def is_ground_fact(item) -> bool:
            return (
                isinstance(item, RuleDecl)
                and item.body == (PredSubgoal(pred=Atom("true"), args=()),)
                and is_ground(item.head_pred)
                and all(is_ground(a) for a in item.head_args)
            )

        # Ground unit clauses become EDB facts directly; everything else
        # loads into the program (rules, procs, modules) or runs (scripts).
        immediate = []
        to_load_items = []
        for item in program.items:
            if is_ground_fact(item):
                self.system.db.relation(item.head_pred, len(item.head_args)).insert(
                    item.head_args
                )
                immediate.append("fact")
            elif isinstance(item, (AssignStmt, RepeatStmt)):
                runner = GlueNailSystem(db=self.system.db, out=self.out)
                runner._programs = list(self.system._programs)
                runner._foreign = list(self.system._foreign)
                from repro.lang.ast import Program

                runner._programs.append(Program(items=(item,)))
                runner.run_script()
                immediate.append("ran")
            else:
                to_load_items.append(item)
        if to_load_items or program.modules:
            from repro.lang.ast import Program

            self.system._programs.append(
                Program(modules=program.modules, items=tuple(to_load_items))
            )
            self.system._invalidate()
            try:
                self.system.compile()
                self._print(
                    f"ok ({len(to_load_items)} item(s), {len(program.modules)} module(s))"
                )
            except GlueNailError as exc:
                self.system._programs.pop()
                self.system._invalidate()
                self._print(f"rejected: {exc}")
        elif immediate:
            self._print("ok")

    def _query(self, text: str) -> None:
        try:
            rows = self.system.query(text)
        except GlueNailError as exc:
            self._print(f"error: {exc}")
            return
        self._emit_rows(rows)

    def _emit_rows(self, rows) -> None:
        if not rows:
            self._print("no")
            return
        for row in sorted(rows, key=str):
            self._print(tuple_to_str(row))
        self._print(f"({len(rows)} tuple(s))")

    # ------------------------------------------------------------------ #
    # dot commands
    # ------------------------------------------------------------------ #

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        handlers = {
            ".help": self._cmd_help,
            ".quit": self._cmd_quit,
            ".exit": self._cmd_quit,
            ".rels": self._cmd_rels,
            ".dump": self._cmd_dump,
            ".magic": self._cmd_magic,
            ".explain": self._cmd_explain,
            ".analyze": self._cmd_analyze,
            ".profile": self._cmd_profile,
            ".last": self._cmd_last,
            ".strategy": self._cmd_strategy,
            ".batch": self._cmd_batch,
            ".workers": self._cmd_workers,
            ".stats": self._cmd_stats,
            ".save": self._cmd_save,
            ".load": self._cmd_load,
            ".begin": self._cmd_begin,
            ".commit": self._cmd_commit,
            ".rollback": self._cmd_rollback,
            ".checkpoint": self._cmd_checkpoint,
            ".watch": self._cmd_watch,
            ".unwatch": self._cmd_unwatch,
        }
        handler = handlers.get(command)
        if handler is None:
            self._print(f"unknown command {command}; .help for help")
            return
        try:
            handler(arg)
        except (GlueNailError, OSError) as exc:
            self._print(f"error: {exc}")

    def _cmd_help(self, _arg: str) -> None:
        self._print(_HELP.rstrip())

    def _cmd_quit(self, _arg: str) -> None:
        self.done = True

    def _cmd_rels(self, _arg: str) -> None:
        keys = self.system.db.sorted_keys()
        if not keys:
            self._print("(empty database)")
            return
        for name, arity in keys:
            relation = self.system.db.get(name, arity)
            self._print(f"  {name}/{arity}  {len(relation)} tuple(s)")

    def _cmd_dump(self, arg: str) -> None:
        from repro.lang.parser import parse_term

        if "/" not in arg:
            self._print("usage: .dump name/arity")
            return
        name_text, _, arity_text = arg.rpartition("/")
        try:
            name = parse_term(name_text.strip())
            arity = int(arity_text)
        except (ParseError, LexError, ValueError):
            self._print("usage: .dump name/arity")
            return
        relation = self.system.db.get(name, arity)
        if relation is None:
            self._print("no such relation")
            return
        self._emit_rows(relation.sorted_rows())

    def _cmd_magic(self, arg: str) -> None:
        if not arg:
            self._print("usage: .magic query?")
            return
        try:
            rows = self.system.query_magic(arg)
        except GlueNailError as exc:
            self._print(f"error: {exc}")
            return
        self._emit_rows(rows)

    def _cmd_explain(self, _arg: str) -> None:
        from repro.vm.explain import explain_program

        self._print(explain_program(self.system.compile()))

    def _cmd_analyze(self, arg: str) -> None:
        if not arg:
            self._print("usage: .analyze query?")
            return
        self._print(self.system.explain_analyze(arg))

    def _cmd_profile(self, arg: str) -> None:
        if arg == "on":
            self.system.enable_tracing()
            parallel = self.system.parallel
            workers = parallel.workers if parallel is not None else 1
            self._print(f"profiling on (workers = {workers})")
        elif arg == "off":
            self.system.disable_tracing()
            self._print("profiling off")
        else:
            self._print("usage: .profile on|off")

    def _cmd_last(self, _arg: str) -> None:
        from repro.obs.report import render_profile

        result = self.system.last_result
        if result is None or result.stats is None:
            self._print("(no query has run yet)")
            return
        self._print(render_profile(result.stats, result.trace))

    def _cmd_strategy(self, arg: str) -> None:
        if arg not in ("pipelined", "materialized"):
            self._print("usage: .strategy pipelined|materialized")
            return
        self.system.strategy = arg
        self.system._invalidate()
        self._print(f"strategy = {arg}")

    def _cmd_batch(self, arg: str) -> None:
        if not arg:
            self._print(f"batch mode = {self.system.batch_mode}")
            return
        if arg not in ("columnar", "row"):
            self._print("usage: .batch columnar|row")
            return
        self.system.batch_mode = arg
        self.system._invalidate()
        self._print(f"batch mode = {arg}")

    def _cmd_workers(self, arg: str) -> None:
        if not arg:
            parallel = self.system.parallel
            if parallel is None:
                self._print("workers = 1 (serial)")
            else:
                stats = parallel.stats()
                self._print(
                    f"workers = {stats['workers']} (partition mode, "
                    f"{stats['parallel_joins']} parallel join(s), "
                    f"{stats['parallel_tasks']} task(s))"
                )
            return
        try:
            workers = int(arg)
        except ValueError:
            self._print("usage: .workers N")
            return
        self.system.set_workers(workers)
        mode = self.system.parallel_mode
        self._print(f"workers = {max(1, workers)} ({mode} mode)")

    def _cmd_stats(self, _arg: str) -> None:
        snapshot = {k: v for k, v in self.system.counters.snapshot().items() if v}
        if not snapshot:
            self._print("(no work recorded)")
        for key, value in sorted(snapshot.items()):
            self._print(f"  {key:22s} {value}")
        self.system.reset_counters()

    def _cmd_save(self, arg: str) -> None:
        if not arg:
            self._print("usage: .save file")
            return
        count = self.system.save_edb(arg)
        self._print(f"saved {count} fact(s)")

    def _cmd_load(self, arg: str) -> None:
        if not arg:
            self._print("usage: .load file")
            return
        self.system.load_edb(arg)
        self._print("loaded")

    def _cmd_begin(self, _arg: str) -> None:
        self.system.begin()
        self._print("transaction open")

    def _cmd_commit(self, _arg: str) -> None:
        self.system.commit()
        self._print("transaction committed")

    def _cmd_rollback(self, _arg: str) -> None:
        self.system.rollback()
        self._print("transaction rolled back")

    def _cmd_checkpoint(self, _arg: str) -> None:
        count = self.system.checkpoint()
        self._print(f"checkpointed {count} fact(s)")

    def _cmd_watch(self, arg: str) -> None:
        from repro.lang.parser import parse_term

        if not arg:
            if not self._watches:
                self._print("(no watches)")
            for sub_id, sub in sorted(self._watches.items()):
                self._print(f"  [{sub_id}] {sub.predicate}")
            return
        if "/" not in arg:
            self._print("usage: .watch name/arity")
            return
        name_text, _, arity_text = arg.rpartition("/")
        try:
            name = parse_term(name_text.strip())
            arity = int(arity_text)
        except (ParseError, LexError, ValueError):
            self._print("usage: .watch name/arity")
            return

        def show(note) -> None:
            if note.op == "resync":
                self._print(
                    f"watch[{note.sub_id}] {note.predicate} resync"
                    f" (dropped {note.dropped})"
                )
                return
            sign = "+" if note.op == "insert" else "-"
            for row in note.rows:
                self._print(
                    f"watch[{note.sub_id}] {sign}{note.predicate} {tuple_to_str(row)}"
                )

        sub = self.system.subscribe(name, arity, callback=show)
        self._watches[sub.id] = sub
        self._print(f"watching {sub.predicate} [{sub.id}]")

    def _cmd_unwatch(self, arg: str) -> None:
        try:
            sub_id = int(arg)
        except ValueError:
            self._print("usage: .unwatch ID")
            return
        sub = self._watches.pop(sub_id, None)
        if sub is None:
            self._print(f"no watch {sub_id}")
            return
        self.system.subscriptions.unsubscribe(sub_id)
        self._print(f"unwatched {sub.predicate} [{sub_id}]")


def main() -> int:  # pragma: no cover - interactive entry point
    repl = Repl()
    try:
        repl.run(sys.stdin)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
