"""The public Glue-Nail API: the system facade, query helpers, and CLI."""

from repro.core.system import GlueNailSystem
from repro.core.query import rows_to_python, term_to_python

__all__ = ["GlueNailSystem", "rows_to_python", "term_to_python"]
