"""Query results: rows plus execution metadata.

:class:`QueryResult` is the return type of every facade entry point
(``query``, ``query_magic``, ``call``, ``rows``, ``idb_rows``).  It is a
``list`` subclass, so every existing call site -- indexing, ``len``,
iteration, equality against a plain list -- keeps working unchanged,
while new code can read ``.stats``, ``.plan``, ``.trace`` and
``.resolution`` off the same object.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.query import rows_to_python
from repro.obs.query_stats import QueryStats
from repro.obs.tracer import TraceEvent
from repro.terms.term import Term

Row = Tuple[Term, ...]


class QueryResult(list):
    """Rows of a query plus how they were produced.

    Attributes
    ----------
    stats:      :class:`QueryStats` for this entry point (counter deltas,
                wall-clock, resolution), or ``None``.
    resolution: how the query was answered -- ``"nail"``, ``"magic"``,
                ``"edb"``, ``"procedure"`` or ``"none"``.
    trace:      the :class:`TraceEvent` slice for this query when tracing
                was enabled, else ``[]``.
    plan:       lazily rendered static plan text (NAIL! rules or the
                compiled procedure's EXPLAIN), ``""`` when unavailable.
    """

    def __init__(
        self,
        rows=(),
        stats: Optional[QueryStats] = None,
        resolution: Optional[str] = None,
        trace: Optional[List[TraceEvent]] = None,
        plan_fn: Optional[Callable[[], str]] = None,
    ):
        super().__init__(rows)
        self.stats = stats
        self.resolution = resolution
        self.trace: List[TraceEvent] = trace if trace is not None else []
        self._plan_fn = plan_fn
        self._plan: Optional[str] = None

    @property
    def rows(self) -> List[Row]:
        """The rows as a plain list (a copy)."""
        return list(self)

    @property
    def plan(self) -> str:
        if self._plan is None:
            self._plan = self._plan_fn() if self._plan_fn is not None else ""
        return self._plan

    @property
    def joins(self) -> List[dict]:
        """The query's join steps, in execution order, as dicts.

        One entry per traced ``join`` event (requires tracing), with the
        unified schema both engines emit: ``strategy``, ``key`` (probe
        columns), ``bindings``/``source`` input sizes, and ``est_rows``
        vs ``actual_rows`` -- the chosen join order made observable.
        """
        out = []
        for event in sorted(self.trace, key=lambda e: e.seq):
            if event.kind != "join":
                continue
            entry = {"name": event.name, "rows": event.rows}
            entry.update(event.attrs)
            out.append(entry)
        return out

    def to_python(self) -> List[tuple]:
        """Rows lowered to plain Python values (atoms -> str, nums -> int)."""
        return rows_to_python(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" via {self.resolution}" if self.resolution else ""
        return f"<QueryResult {len(self)} rows{tag}>"
