"""Command-line interface: ``gluenail`` (or ``python -m repro.core.cli``).

Subcommands::

    gluenail check  program.glue              # parse + compile only
    gluenail run    program.glue [options]    # run the script / a procedure
    gluenail query  program.glue "p(1, X)?"   # ad-hoc query
    gluenail nail2glue program.glue           # print the generated Glue code
    gluenail serve  --db DIR [options]        # concurrent TCP query server
    gluenail connect [--host H --port P]      # REPL against a live server

Common options: ``--edb facts.gnd`` loads an EDB dump before running,
``--db DIR`` opens a durable database directory (WAL + checkpoint, with
crash recovery), ``--save facts.gnd`` persists the EDB afterwards,
``--strategy pipelined|materialized`` picks the execution strategy,
``--stats`` prints the cost counters, ``--trace-json FILE`` streams the
execution trace as JSON lines.  ``query --explain-analyze`` prints the
plan annotated with actual rows, counter deltas and timings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.system import GlueNailSystem
from repro.errors import GlueNailError
from repro.terms.printer import tuple_to_str


def _build_system(args) -> GlueNailSystem:
    workers = getattr(args, "workers", None)
    options = dict(
        strict=args.strict,
        optimize=not args.no_optimize,
        strategy=args.strategy,
        dedup_on_break=not args.no_dedup,
        join_mode=getattr(args, "join_mode", "hash"),
        order_mode=getattr(args, "order_mode", "cost"),
        batch_mode=getattr(args, "batch_mode", "columnar"),
        parallel_mode="partition" if workers is not None and workers > 1 else "serial",
        workers=workers,
    )
    if getattr(args, "db", None):
        system = GlueNailSystem.open(args.db, **options)
    else:
        system = GlueNailSystem(**options)
    if getattr(args, "trace_json", None):
        from repro.obs.tracer import JsonLinesSink

        stream = open(args.trace_json, "w", encoding="utf-8")
        system.tracer.add_sink(JsonLinesSink(stream))
    system.load_file(args.program)
    if args.edb:
        system.load_edb(args.edb)
    if getattr(args, "facts_dir", None):
        system.load_facts_dir(args.facts_dir)
    return system


def _print_stats(system: GlueNailSystem) -> None:
    for key, value in system.counters.snapshot().items():
        if value:
            print(f"  {key} = {value}")


def cmd_check(args) -> int:
    system = _build_system(args)
    compiled = system.compile()
    print(
        f"ok: {compiled.statement_count} statements, "
        f"{len(compiled.procs)} procedures, {len(compiled.rules)} rules"
    )
    return 0


def cmd_run(args) -> int:
    system = _build_system(args)
    system.compile()
    if args.call:
        from repro.lang.parser import parse_term

        inputs = [()] if not args.input else [tuple(parse_term(v) for v in args.input)]
        rows = system.call(args.call, inputs)
        for row in sorted(rows, key=str):
            print(tuple_to_str(row))
    else:
        system.run_script()
    if args.save:
        count = system.save_edb(args.save)
        print(f"saved {count} facts to {args.save}", file=sys.stderr)
    if args.save_facts:
        count = system.save_facts_dir(args.save_facts)
        print(f"saved {count} facts under {args.save_facts}", file=sys.stderr)
    if args.stats:
        _print_stats(system)
    return 0


def cmd_query(args) -> int:
    system = _build_system(args)
    if args.explain_analyze:
        print(system.explain_analyze(args.query, magic=args.magic))
        return 0
    rows = system.query_magic(args.query) if args.magic else system.query(args.query)
    for row in sorted(rows, key=str):
        print(tuple_to_str(row))
    if args.stats:
        _print_stats(system)
    return 0


def cmd_nail2glue(args) -> int:
    from repro.nail.nail2glue import compile_rules_to_glue

    system = _build_system(args)
    compiled = system.compile()
    result = compile_rules_to_glue(compiled.rules)
    print(result.source)
    return 0


def cmd_explain(args) -> int:
    from repro.vm.explain import explain_program

    system = _build_system(args)
    print(explain_program(system.compile()))
    return 0


def cmd_fmt(args) -> int:
    from repro.lang.parser import parse_program
    from repro.lang.pretty import pretty_program

    with open(args.program, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read())
    print(pretty_program(program), end="")
    return 0


def cmd_repl(args) -> int:
    from repro.core.repl import Repl
    from repro.core.system import GlueNailSystem

    workers = getattr(args, "workers", None)
    options = dict(
        parallel_mode="partition" if workers is not None and workers > 1 else "serial",
        workers=workers,
        batch_mode=getattr(args, "batch_mode", "columnar"),
    )
    if getattr(args, "db", None):
        system = GlueNailSystem.open(args.db, **options)
    else:
        system = GlueNailSystem(**options)
    if args.program:
        system.load_file(args.program)
    if args.edb:
        system.load_edb(args.edb)
    repl = Repl(system=system)
    repl.run(sys.stdin)
    system.close()
    return 0


def cmd_serve(args) -> int:
    from repro.server.server import GlueNailServer

    program = None
    if args.program:
        with open(args.program, "r", encoding="utf-8") as handle:
            program = handle.read()
    server = GlueNailServer(
        db_dir=args.db,
        program=program,
        host=args.host,
        port=args.port,
        sync=not args.no_sync,
        workers=args.workers,
        batch_mode=getattr(args, "batch_mode", "columnar"),
        mvcc=not args.no_mvcc,
    )
    if args.edb:
        from repro.storage.persist import load_database

        load_database(args.edb, server.db)
    where = "durable store " + args.db if args.db else "in-memory EDB"
    print(f"gluenail: serving {where} on {server.host}:{server.port}",
          file=sys.stderr)
    if server.store is not None and server.store.recovered_txns:
        print(f"gluenail: recovered {server.store.recovered_txns} committed "
              f"transaction(s) from the WAL", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.close()
    return 0


def cmd_connect(args) -> int:
    from repro.server.client import Client, RemoteError

    try:
        client = Client(host=args.host, port=args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    session = client.ping()
    print(f"connected to {args.host}:{args.port} as {session} -- "
          ".help for help, .quit to leave")
    try:
        for line in sys.stdin:
            try:
                out = client.repl(line)
            except RemoteError as exc:
                print(f"error: {exc}")
                continue
            except ConnectionError:
                print("server closed the connection", file=sys.stderr)
                return 1
            sys.stdout.write(out)
            sys.stdout.flush()
            if line.strip() in (".quit", ".exit"):
                break
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        client.close()
    return 0


def cmd_watch(args) -> int:
    from repro.server.client import Client, ConnectionClosed, RemoteError

    if "/" not in args.predicate:
        print("error: predicate must be NAME/ARITY", file=sys.stderr)
        return 1
    name, _, arity_text = args.predicate.rpartition("/")
    try:
        arity = int(arity_text)
    except ValueError:
        print("error: predicate must be NAME/ARITY", file=sys.stderr)
        return 1
    source = None
    if args.program:
        with open(args.program, "r", encoding="utf-8") as handle:
            source = handle.read()
    try:
        client = Client(host=args.host, port=args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    try:
        try:
            sub = client.subscribe(name, arity, source=source,
                                   snapshot=args.snapshot)
        except RemoteError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"watching {sub.predicate} ({sub.kind}) -- ^C to stop",
              file=sys.stderr)
        if sub.snapshot is not None:
            for row in sub.snapshot:
                print(f"= {sub.predicate} {row}")
        for note in sub:
            if note.op == "resync":
                print(f"! {note.predicate} resync (dropped {note.dropped})")
                continue
            sign = "+" if note.op == "insert" else "-"
            for row in note.rows:
                print(f"{sign} {note.predicate} {row}  [txn {note.txn}]")
            sys.stdout.flush()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    except ConnectionClosed:
        print("server closed the connection", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="Glue-Nail source file")
    parser.add_argument("--edb", help="EDB dump to load before running")
    parser.add_argument(
        "--db",
        metavar="DIR",
        help="durable database directory (WAL + checkpoint, recovered on open)",
    )
    parser.add_argument("--facts-dir", help="directory of .facts TSV files to load")
    parser.add_argument("--strict", action="store_true", help="require declarations")
    parser.add_argument("--no-optimize", action="store_true", help="disable reordering")
    parser.add_argument("--no-dedup", action="store_true",
                        help="disable duplicate elimination at pipeline breaks")
    parser.add_argument(
        "--strategy", choices=("pipelined", "materialized"), default="pipelined"
    )
    parser.add_argument(
        "--join-mode", choices=("hash", "nested"), default="hash",
        help="how bodies join: planned hash joins or the nested-loop baseline",
    )
    parser.add_argument(
        "--order-mode", choices=("cost", "program"), default="cost",
        help="how bodies are ordered: the cost-based planner or program order",
    )
    parser.add_argument(
        "--batch-mode", choices=("columnar", "row"), default="columnar",
        help="how bodies execute: columnar batch kernels or the row baseline",
    )
    parser.add_argument(
        "--workers", type=int, metavar="N",
        help="evaluate large joins across N worker threads "
             "(partition-parallel mode; 1 or unset = serial)",
    )
    parser.add_argument("--stats", action="store_true", help="print cost counters")
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help="write the execution trace as one JSON event per line",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="gluenail", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="parse and compile only")
    _add_common(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_run = sub.add_parser("run", help="run the script or a procedure")
    _add_common(p_run)
    p_run.add_argument("--call", help="procedure to call instead of the script")
    p_run.add_argument(
        "--input", nargs="*", help="input tuple values for --call (strings)"
    )
    p_run.add_argument("--save", help="save the EDB to this dump afterwards")
    p_run.add_argument("--save-facts", help="save the EDB as a .facts directory")
    p_run.set_defaults(fn=cmd_run)

    p_query = sub.add_parser("query", help="answer an ad-hoc query")
    _add_common(p_query)
    p_query.add_argument("query", help="query text, e.g. 'path(1, X)?'")
    p_query.add_argument("--magic", action="store_true", help="demand-driven evaluation")
    p_query.add_argument(
        "--explain-analyze",
        action="store_true",
        help="run the query and print the plan annotated with actual "
             "rows, counter deltas and timings",
    )
    p_query.set_defaults(fn=cmd_query)

    p_n2g = sub.add_parser("nail2glue", help="print generated Glue for the rules")
    _add_common(p_n2g)
    p_n2g.set_defaults(fn=cmd_nail2glue)

    p_explain = sub.add_parser("explain", help="show the compiled plans")
    _add_common(p_explain)
    p_explain.set_defaults(fn=cmd_explain)

    p_fmt = sub.add_parser("fmt", help="pretty-print a program canonically")
    p_fmt.add_argument("program", help="Glue-Nail source file")
    p_fmt.set_defaults(fn=cmd_fmt)

    p_repl = sub.add_parser("repl", help="interactive session")
    p_repl.add_argument("program", nargs="?", help="program to preload")
    p_repl.add_argument("--edb", help="EDB dump to load first")
    p_repl.add_argument("--db", metavar="DIR",
                        help="durable database directory (recovered on open)")
    p_repl.add_argument("--workers", type=int, metavar="N",
                        help="partition-parallel evaluation across N threads")
    p_repl.add_argument("--batch-mode", choices=("columnar", "row"),
                        default="columnar",
                        help="columnar batch kernels or the row baseline")
    p_repl.set_defaults(fn=cmd_repl)

    p_serve = sub.add_parser("serve", help="run the concurrent TCP query server")
    p_serve.add_argument("--db", metavar="DIR",
                         help="durable database directory (recovered on open)")
    p_serve.add_argument("--program", help="Glue-Nail source preloaded per session")
    p_serve.add_argument("--edb", help="EDB dump loaded into the shared database")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7411)
    p_serve.add_argument("--no-sync", action="store_true",
                         help="skip fsync on commit (faster, less durable)")
    p_serve.add_argument("--workers", type=int, metavar="N",
                        help="partition-parallel evaluation across N threads")
    p_serve.add_argument("--batch-mode", choices=("columnar", "row"),
                        default="columnar",
                        help="columnar batch kernels or the row baseline")
    p_serve.add_argument("--no-mvcc", action="store_true",
                         help="serve reads under the read/write lock instead "
                              "of MVCC snapshots (the serialized baseline)")
    p_serve.set_defaults(fn=cmd_serve)

    p_connect = sub.add_parser("connect", help="REPL against a live server")
    p_connect.add_argument("--host", default="127.0.0.1")
    p_connect.add_argument("--port", type=int, default=7411)
    p_connect.add_argument("--timeout", type=float, default=None,
                           help="socket timeout in seconds (default: none)")
    p_connect.set_defaults(fn=cmd_connect)

    p_watch = sub.add_parser(
        "watch", help="stream a predicate's committed deltas from a server"
    )
    p_watch.add_argument("predicate", help="NAME/ARITY, e.g. path/2")
    p_watch.add_argument("--program", help="rules to load server-side first "
                                           "(needed for new IDB predicates)")
    p_watch.add_argument("--snapshot", action="store_true",
                         help="print the current extension before the deltas")
    p_watch.add_argument("--host", default="127.0.0.1")
    p_watch.add_argument("--port", type=int, default=7411)
    p_watch.add_argument("--timeout", type=float, default=None,
                         help="socket timeout in seconds (default: none)")
    p_watch.set_defaults(fn=cmd_watch)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (GlueNailError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
