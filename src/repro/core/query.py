"""Conversions between Glue-Nail terms and plain Python values."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.terms.term import Atom, Compound, Num, Term


def term_to_python(term: Term):
    """Lower a ground term to a Python value.

    Atoms become strings, numbers become int/float, and compound terms
    become nested tuples ``(functor, arg, ...)`` -- the inverse of
    :func:`repro.terms.term.mk`.
    """
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Num):
        return term.value
    if isinstance(term, Compound):
        return (term_to_python(term.functor), *(term_to_python(a) for a in term.args))
    raise TypeError(f"cannot lower non-ground term {term!r}")


def rows_to_python(rows: Iterable[Tuple[Term, ...]]) -> List[tuple]:
    return [tuple(term_to_python(v) for v in row) for row in rows]
