"""The Glue-Nail system facade.

Typical use::

    from repro import GlueNailSystem

    system = GlueNailSystem()
    system.load('''
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y) & edge(Y, Z).
    ''')
    system.facts("edge", [(1, 2), (2, 3)])
    system.query("path(1, Y)?")        # -> [(Num(1), Num(2)), (Num(1), Num(3))]

The facade owns the EDB, the compiled program, the virtual machine and the
NAIL! engine, and keeps them consistent: loading more source invalidates
the compilation; EDB changes invalidate derived relations (handled by the
engine's version check).
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.analysis.scope import pred_skeleton
from repro.core.result import QueryResult
from repro.errors import GlueNailError, GlueRuntimeError
from repro.lang.ast import Program
from repro.lang.parser import parse_program, parse_query
from repro.nail.engine import NailEngine, magic_query
from repro.obs.query_stats import QueryStats
from repro.obs.tracer import CollectingSink, TraceSink, Tracer
from repro.storage.database import Database
from repro.storage.persist import load_database, save_database
from repro.storage.stats import CostCounters, counter_delta
from repro.terms.matching import match_tuple
from repro.terms.term import Term, is_ground, mk
from repro.vm.compiler import ForeignSig, ProgramCompiler
from repro.vm.machine import ExecContext, ForeignProc, Machine
from repro.vm.plan import CompiledProc, CompiledProgram

Row = Tuple[Term, ...]


class GlueNailSystem:
    """A complete Glue-Nail instance: EDB + compiler + VM + NAIL! engine."""

    def __init__(
        self,
        db: Optional[Database] = None,
        strict: bool = False,
        optimize: bool = True,
        strategy: str = "pipelined",
        dedup_on_break: bool = True,
        deref_at_compile_time: bool = True,
        nail_strategy: str = "seminaive",
        out=None,
        inp=None,
        max_loop_iterations: int = 1_000_000,
        adaptive_reorder: bool = False,
        join_mode: str = "hash",
        order_mode: str = "cost",
        batch_mode: str = "columnar",
        parallel_mode: str = "serial",
        workers: Optional[int] = None,
        parallel: Optional[object] = None,
        trace: Union[bool, TraceSink] = False,
    ):
        self.db = db if db is not None else Database()
        self.strict = strict
        self.optimize = optimize
        self.strategy = strategy
        self.dedup_on_break = dedup_on_break
        self.deref_at_compile_time = deref_at_compile_time
        self.nail_strategy = nail_strategy
        self.out = out
        self.inp = inp
        self.max_loop_iterations = max_loop_iterations
        self.adaptive_reorder = adaptive_reorder
        # One join optimizer for the whole program: the mode drives both
        # the NAIL! rule evaluator and the Glue VM's statement bodies
        # ("nested" is the differential/costing baseline).
        if join_mode not in ("hash", "nested"):
            raise ValueError(f"unknown join mode {join_mode!r}")
        self.join_mode = join_mode
        # One body-ordering mode for the whole program, mirroring
        # join_mode: "cost" plans through repro.opt, "program" keeps the
        # written subgoal order (the differential baseline).
        if order_mode not in ("cost", "program"):
            raise ValueError(f"unknown order mode {order_mode!r}")
        self.order_mode = order_mode
        # One batch-execution mode for the whole program: "columnar" runs
        # rule bodies and Glue probes through the repro.col batch kernels,
        # "row" keeps the binding-dict engine (the differential baseline).
        if batch_mode not in ("columnar", "row"):
            raise ValueError(f"unknown batch mode {batch_mode!r}")
        self.batch_mode = batch_mode
        # Partition-parallel evaluation (repro.par): "partition" runs
        # seminaive joins and Glue statement bodies across a worker pool,
        # hash-partitioned on the planner's probe keys; "serial" is the
        # single-threaded baseline with zero parallel machinery attached.
        if parallel_mode not in ("serial", "partition"):
            raise ValueError(f"unknown parallel mode {parallel_mode!r}")
        self.parallel_mode = parallel_mode
        self.parallel = None
        if parallel is not None:
            # An externally owned ParallelContext (the query server shares
            # one across sessions); adopt it without taking ownership.
            self.parallel_mode = "partition"
            self.parallel = parallel
            self.parallel.adopt(self.db)
            self._owns_parallel = False
        elif parallel_mode == "partition":
            from repro.par import ParallelContext

            self.parallel = ParallelContext(workers=workers, db=self.db)
            self._owns_parallel = True
        else:
            self._owns_parallel = False

        self._programs: List[Program] = []
        self._foreign: List[Tuple[ForeignSig, ForeignProc]] = []
        self._compiled: Optional[CompiledProgram] = None
        self._machine: Optional[Machine] = None
        self._ctx: Optional[ExecContext] = None
        self._engine: Optional[NailEngine] = None

        self._collector: Optional[CollectingSink] = None
        self._collector_local = False
        self._subscriptions = None  # lazy SubscriptionManager (repro.sub)
        self.last_result: Optional[QueryResult] = None
        # Durable store / transaction manager (see repro.txn); attached by
        # GlueNailSystem.open() or enable_transactions().
        self.store = None
        self._txn = None
        if trace:
            self.enable_tracing(trace if isinstance(trace, TraceSink) else None)

    @classmethod
    def open(cls, directory: str, sync: bool = True, **kwargs) -> "GlueNailSystem":
        """Open (or create) a durable database directory, with recovery.

        The directory holds a checkpoint dump plus a write-ahead log (see
        :mod:`repro.txn`); opening replays the committed WAL suffix over
        the last checkpoint, so the system always starts from exactly the
        committed state.  EDB mutations made through the returned system
        are autocommitted to the WAL; :meth:`begin`/:meth:`commit`/
        :meth:`rollback` group them, and :meth:`checkpoint` compacts.
        """
        from repro.txn.store import DurableStore

        db = kwargs.pop("db", None)
        store = DurableStore(directory, db=db, sync=sync)
        system = cls(db=store.db, **kwargs)
        system.store = store
        return system

    # ------------------------------------------------------------------ #
    # loading and compilation
    # ------------------------------------------------------------------ #

    def load(self, source: str) -> "GlueNailSystem":
        """Parse and stage Glue-Nail source; returns self for chaining."""
        self._programs.append(parse_program(source))
        self._invalidate()
        return self

    def load_file(self, path: str) -> "GlueNailSystem":
        with open(path, "r", encoding="utf-8") as handle:
            return self.load(handle.read())

    def register_foreign(
        self,
        module: str,
        name: str,
        arity: int,
        bound_arity: int,
        fn: Callable[[ExecContext, List[Row]], List[Row]],
        fixed: bool = True,
    ) -> "GlueNailSystem":
        """Register a Python function as a Glue procedure (the foreign
        interface of paper Section 10).  Must happen before compilation so
        import resolution sees the signature."""
        sig = ForeignSig(module=module, name=name, arity=arity, bound_arity=bound_arity,
                         fixed=fixed)
        proc = ForeignProc(module=module, name=name, arity=arity, bound_arity=bound_arity,
                           fn=fn, fixed=fixed)
        self._foreign.append((sig, proc))
        self._invalidate()
        return self

    def _invalidate(self) -> None:
        self._compiled = None
        self._machine = None
        self._ctx = None
        self._engine = None

    @property
    def program(self) -> Program:
        modules: List = []
        items: List = []
        for program in self._programs:
            modules.extend(program.modules)
            items.extend(program.items)
        return Program(modules=tuple(modules), items=tuple(items))

    def compile(self) -> CompiledProgram:
        """(Re)compile everything loaded; idempotent until the next load."""
        if self._compiled is not None:
            return self._compiled
        db = self.db

        def stats_source(pred, arity):
            # Live EDB statistics for the planner; resolved at plan time so
            # the adaptive recompile path sees current cardinalities.
            return db.get(pred, arity)

        compiler = ProgramCompiler(
            strict=self.strict,
            optimize=self.optimize,
            deref_at_compile_time=self.deref_at_compile_time,
            foreign_sigs=[sig for sig, _ in self._foreign],
            order_mode=self.order_mode,
            stats_source=stats_source,
        )
        compiled = compiler.compile_program(self.program)
        ctx = ExecContext(
            db=self.db,
            strategy=self.strategy,
            dedup_on_break=self.dedup_on_break,
            out=self.out,
            inp=self.inp,
            max_loop_iterations=self.max_loop_iterations,
            adaptive_reorder=self.adaptive_reorder,
            join_mode=self.join_mode,
            order_mode=self.order_mode,
            parallel=self.parallel,
            batch_mode=self.batch_mode,
        )
        for _, proc in self._foreign:
            ctx.register_foreign(proc)
        # Safety is checked lazily per stratum: rules that need demand
        # bindings (magic evaluation) are legal until someone asks for
        # their full extension.
        engine = NailEngine(
            self.db, compiled.rules, strategy=self.nail_strategy, check_safety=False,
            join_mode=self.join_mode, order_mode=self.order_mode,
            parallel=self.parallel, batch_mode=self.batch_mode,
        )
        ctx.nail_engine = engine
        for name, arity in compiled.edb_decls:
            self.db.declare(name, arity)
        self._compiled = compiled
        self._ctx = ctx
        self._engine = engine
        self._machine = Machine(compiled, ctx)
        # Register the program's ``watch`` declarations as active rules;
        # a recompile replaces the previous set (and clears it when the
        # new program has none).
        watches = getattr(compiled, "watches", ())
        if watches:
            self.subscriptions.set_watch_rules(watches)
        elif self._subscriptions is not None and self._subscriptions._watch_sub_ids:
            self._subscriptions.set_watch_rules(())
        return compiled

    @property
    def machine(self) -> Machine:
        self.compile()
        return self._machine

    @property
    def engine(self) -> NailEngine:
        self.compile()
        return self._engine

    @property
    def ctx(self) -> ExecContext:
        self.compile()
        return self._ctx

    @property
    def counters(self) -> CostCounters:
        return self.db.counters

    def reset_counters(self) -> None:
        self.db.counters.reset()

    def idb_cache_info(self) -> dict:
        """The engine's incremental-maintenance state, for observability.

        ``strata`` lists, per stratum, whether a cached extension is
        currently held (``computed``), its invalidation ``epoch`` (bumped
        whenever a supporting relation changed), and the size of its
        transitive EDB ``support`` set; ``demand_entries`` counts live
        demand-cache answers.  The ``idb_*`` fields of
        :class:`~repro.storage.stats.CostCounters` say how those caches
        have been doing (hits, delta repairs, rounds, invalidations).
        """
        engine = self.engine
        return {
            "strata": [
                {
                    "index": stratum.index,
                    "computed": engine._stratum_computed[stratum.index],
                    "epoch": engine._stratum_epoch[stratum.index],
                    "support": len(engine.supports[stratum.index].transitive),
                    "universal": engine.supports[stratum.index].universal,
                }
                for stratum in engine.strata
            ],
            "demand_entries": len(engine._demand_cache),
        }

    # ------------------------------------------------------------------ #
    # transactions and durability (see repro.txn)
    # ------------------------------------------------------------------ #

    @property
    def txn(self):
        """The transaction manager, or None until transactions are enabled."""
        if self.store is not None:
            return self.store.txn
        return self._txn

    def enable_transactions(self):
        """Attach an (in-memory) transaction manager to the database.

        Systems created by :meth:`open` already have a durable one; this
        gives the embedded, non-durable case begin/commit/rollback too.
        """
        if self.store is not None:
            return self.store.txn
        if self._txn is None:
            from repro.txn.manager import TransactionManager

            self._txn = TransactionManager(self.db)
            self.db.attach_journal(self._txn)
        return self._txn

    def begin(self) -> None:
        """Start a transaction (enabling the subsystem on first use)."""
        self.enable_transactions().begin()

    def commit(self) -> None:
        manager = self.txn
        if manager is None:
            raise GlueRuntimeError("no transaction is active")
        manager.commit()

    def rollback(self) -> None:
        manager = self.txn
        if manager is None:
            raise GlueRuntimeError("no transaction is active")
        manager.rollback()

    def transaction(self):
        """``with system.transaction():`` -- commit on success, else roll back."""
        return self.enable_transactions().transaction()

    # ------------------------------------------------------------------ #
    # MVCC snapshot reads (see repro.mvcc and docs/PERFORMANCE.md)
    # ------------------------------------------------------------------ #

    def enable_snapshots(self, store=None):
        """Give this system an MVCC snapshot read path; returns the store.

        Wraps ``self.db`` in a :class:`~repro.mvcc.SnapshotRouter` (a
        ``Database``-shaped facade), so every layer that reaches storage
        through the system's database handle -- the NAIL! engine, the Glue
        VM, the optimizer, the columnar kernels -- evaluates against a
        pinned immutable snapshot whenever one is active on the calling
        thread.  Pass ``store`` to share one :class:`VersionStore` across
        systems over the same database (the query server does this so all
        sessions pin the same published versions).  Idempotent.
        """
        from repro.mvcc import SnapshotRouter

        if isinstance(self.db, SnapshotRouter):
            return self.db.store
        router = SnapshotRouter(self.db, store=store)
        self.db = router
        # Compiled state closed over the bare database handle; recompile
        # lazily so evaluation resolves rows through the router.
        self._invalidate()
        return router.store

    def snapshot(self):
        """Pin the latest published snapshot (enabling snapshots on first
        use): ``with system.snapshot() as snap: system.query(...)`` runs
        the block's queries against one immutable version, regardless of
        concurrent writers."""
        store = self.enable_snapshots()
        snapshot = store.pin()
        if snapshot is None:
            raise GlueRuntimeError(
                "no published snapshot available (a write window is open "
                "and nothing was published yet)"
            )
        return self.db.pinned(snapshot)

    # ------------------------------------------------------------------ #
    # subscriptions (see repro.sub and docs/SUBSCRIPTIONS.md)
    # ------------------------------------------------------------------ #

    @property
    def subscriptions(self):
        """The push-subscription manager (created on first use).

        Creating it enables transactions: delivery is transaction-
        consistent, so committed batches are the unit of notification.
        """
        if self._subscriptions is None:
            from repro.sub.manager import SubscriptionManager

            self._subscriptions = SubscriptionManager(self)
        return self._subscriptions

    def subscribe(self, name, arity: int, **kwargs):
        """Subscribe to committed deltas of ``name/arity``.

        Convenience for ``system.subscriptions.subscribe(...)``; see
        :meth:`repro.sub.manager.SubscriptionManager.subscribe`.
        """
        return self.subscriptions.subscribe(name, arity, **kwargs)

    def checkpoint(self) -> int:
        """Compact the durable store's WAL into its checkpoint dump."""
        if self.store is None:
            raise GlueRuntimeError(
                "no durable store attached; open one with GlueNailSystem.open(directory)"
            )
        return self.store.checkpoint()

    def close(self) -> None:
        """Release the durable store and worker pool (if any); idempotent."""
        if self.store is not None:
            self.store.close()
            self.store = None
        if self.parallel is not None and self._owns_parallel:
            self.parallel.shutdown()

    def set_workers(self, workers: Optional[int]) -> "GlueNailSystem":
        """Resize (or enable/disable) the partition-parallel worker pool.

        ``workers`` <= 1 (or None with one core) drops back to serial
        evaluation; anything larger builds a fresh :class:`ParallelContext`
        and recompiles so the engine and VM pick it up.  The REPL's
        ``.workers N`` and the CLI's ``--workers`` land here.
        """
        if self.parallel is not None and self._owns_parallel:
            self.parallel.shutdown()
        self.parallel = None
        self._owns_parallel = False
        if workers is not None and workers <= 1:
            self.parallel_mode = "serial"
        else:
            from repro.par import ParallelContext

            context = ParallelContext(workers=workers, db=self.db)
            if context.workers > 1:
                self.parallel = context
                self._owns_parallel = True
                self.parallel_mode = "partition"
            else:
                context.shutdown()
                self.parallel_mode = "serial"
        self._invalidate()
        return self

    # ------------------------------------------------------------------ #
    # tracing
    # ------------------------------------------------------------------ #

    @property
    def tracer(self) -> Tracer:
        """The database's tracing hub (shared by VM, engine and storage)."""
        return self.db.tracer

    def enable_tracing(
        self, sink: Optional[TraceSink] = None, local: bool = False
    ) -> CollectingSink:
        """Turn on tracing; every subsequent entry point carries ``.trace``.

        A persistent :class:`CollectingSink` backs the per-query trace
        slices; an extra ``sink`` (e.g. :class:`JsonLinesSink`) is fanned
        out alongside it.  Returns the collector.

        ``local=True`` installs the collector as a *thread-local* sink: it
        sees only events produced by the calling thread.  The query server
        uses this so each session's ``.trace`` stays its own even though
        every session shares the database's tracer hub.
        """
        if self._collector is None:
            self._collector = CollectingSink()
            self._collector_local = local
            if local:
                self.tracer.add_local_sink(self._collector)
            else:
                self.tracer.add_sink(self._collector)
        if sink is not None:
            self.tracer.add_sink(sink)
        return self._collector

    def disable_tracing(self) -> None:
        """Remove the collector installed by :meth:`enable_tracing`.

        Sinks added explicitly (``tracer.add_sink``) stay installed.
        """
        if self._collector is not None:
            if self._collector_local:
                self.tracer.remove_local_sink(self._collector)
            else:
                self.tracer.remove_sink(self._collector)
            self._collector = None
            self._collector_local = False

    def _instrumented_entry(self, kind: str, label: str, runner) -> QueryResult:
        """Run one entry point, diffing counters and slicing the trace.

        ``runner`` returns ``(rows, resolution, plan_fn)``; the resulting
        :class:`QueryResult` carries rows plus :class:`QueryStats`, the
        query's own trace-event slice, and the lazily rendered plan.
        """
        tracer = self.tracer
        collector = self._collector
        start = len(collector.events) if collector is not None else 0
        before = self.db.counters.as_tuple()
        if getattr(self.db, "snapshot_active", False):
            # Charged after ``before`` so the read shows up in this query's
            # counter delta (and hence EXPLAIN ANALYZE).
            self.db.counters.snapshot_reads += 1
        t0 = perf_counter()
        if tracer.enabled:
            with tracer.span(kind, label) as span:
                rows, resolution, plan_fn = runner()
                span.rows = len(rows)
                span.attrs["resolution"] = resolution
        else:
            rows, resolution, plan_fn = runner()
        elapsed = perf_counter() - t0
        stats = QueryStats(
            query=label,
            resolution=resolution,
            rows=len(rows),
            elapsed_s=elapsed,
            counters=counter_delta(before, self.db.counters.as_tuple()),
        )
        trace = collector.events[start:] if collector is not None else []
        result = QueryResult(
            rows, stats=stats, resolution=resolution, trace=trace, plan_fn=plan_fn
        )
        self.last_result = result
        return result

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def call(
        self,
        name: str,
        inputs: Sequence[Sequence[object]] = ((),),
        module: Optional[str] = None,
        arity: Optional[int] = None,
    ) -> QueryResult:
        """Call a Glue procedure once on a set of input tuples.

        ``inputs`` is a sequence of tuples matching the procedure's bound
        arity; plain Python values are lifted to terms.  Returns the
        procedure's return relation as a :class:`QueryResult`.
        """
        self.compile()
        lifted = [tuple(mk(v) for v in row) for row in inputs]
        if arity is None:
            # Only procedures visible under the requested module count as
            # arity candidates; without the filter an unrelated same-name
            # procedure elsewhere made the arity "ambiguous".
            candidates = sorted(
                {
                    key[2]
                    for key in self._compiled.procs
                    if key[1] == name and (module is None or key[0] == module)
                }
            )
            if not candidates:
                where = f" in module {module}" if module is not None else ""
                raise GlueRuntimeError(f"no procedure named {name}{where}")
            if len(candidates) > 1:
                raise GlueRuntimeError(
                    f"procedure {name} has several arities {candidates}; pass arity="
                )
            arity = candidates[0]
        proc = self._compiled.find_proc(name, arity, module=module)
        label = f"{proc.module + '.' if proc.module else ''}{name}/{arity}"

        def runner():
            return self._machine.call_proc(proc, lifted), "procedure", (
                lambda: self._proc_plan(proc)
            )

        return self._instrumented_entry("call", label, runner)

    def run_script(self) -> None:
        """Execute the loose top-level statements of the loaded program."""
        self.compile()
        self._machine.run_script()

    def query(self, text: str) -> QueryResult:
        """Answer an ad-hoc query ``p(args)?`` against NAIL!, the EDB, or a
        Glue procedure, in that resolution order."""
        self.compile()
        subgoal = parse_query(text)

        def runner():
            return self._resolve_query(subgoal)

        return self._instrumented_entry("query", text.strip(), runner)

    def _resolve_query(self, subgoal):
        """The resolution chain: NAIL! -> EDB -> exported procedure -> [].

        Returns ``(rows, resolution, plan_fn)``.
        """
        pred, args = subgoal.pred, subgoal.args
        if not is_ground(pred):
            raise GlueNailError("the query predicate itself must be ground")
        skeleton = pred_skeleton(pred, len(args))
        if self._engine.defines(skeleton):
            rows = self._engine.query(pred, args)
            return rows, "nail", lambda: self._nail_plan(skeleton)
        relation = self.db.get(pred, len(args))
        if relation is not None:
            rows = self._match_rows(relation, args)
            return rows, "edb", lambda: f"scan {pred}/{len(args)} (EDB relation)"
        # Fall back to a procedure call with the bound prefix as input.
        if skeleton[0] is not None:
            key = (skeleton[0], len(args))
            proc = self._compiled.exported.get(key)
            if proc is None:
                matches = [
                    p
                    for pkey, p in self._compiled.procs.items()
                    if pkey[1] == skeleton[0] and pkey[2] == len(args)
                ]
                proc = matches[0] if len(matches) == 1 else None
            if proc is not None:
                bound = args[: proc.bound_arity]
                if not all(is_ground(a) for a in bound):
                    raise GlueNailError(
                        f"procedure query {skeleton[0]} needs its first "
                        f"{proc.bound_arity} argument(s) bound"
                    )
                rows = self._machine.call_proc(proc, [tuple(bound)])
                filtered = [row for row in rows if match_tuple(args, row) is not None]
                return filtered, "procedure", lambda: self._proc_plan(proc)
        return [], "none", None

    def _nail_plan(self, skeleton) -> str:
        """The NAIL! 'plan': the defining rules plus their stratum."""
        from repro.lang.pretty import pretty_rule

        lines = []
        index = self._engine._stratum_of.get(skeleton)
        head = f"{skeleton[0]}/{skeleton[-1]}"
        if index is not None:
            lines.append(f"NAIL! predicate {head} (stratum {index}, "
                         f"{self.nail_strategy} evaluation)")
        for info in self._engine.rule_infos:
            if info.head_skeleton == skeleton:
                lines.append("  " + pretty_rule(info.rule).strip())
                plan = getattr(info.planner, "last_plan", None)
                if plan is not None:
                    lines.extend("    " + line for line in plan.describe())
        return "\n".join(lines)

    @staticmethod
    def _proc_plan(proc: CompiledProc) -> str:
        from repro.vm.explain import explain_proc

        return explain_proc(proc)

    @staticmethod
    def _match_rows(relation, args) -> List[Row]:
        out = []
        for row in relation.rows():
            if match_tuple(tuple(args), row) is not None:
                out.append(row)
        return out

    def query_magic(self, text: str) -> QueryResult:
        """Answer a NAIL! query demand-driven (magic sets).

        Queries outside the magic fragment (aggregates, negated IDB
        literals, compound-named predicates on the demand path) fall back
        to ordinary evaluation transparently.
        """
        from repro.nail.magic import MagicTransformError

        self.compile()
        subgoal = parse_query(text)

        def runner():
            try:
                answers, _engine = magic_query(
                    self.db, self._compiled.rules, subgoal.pred, subgoal.args,
                    strategy=self.nail_strategy, join_mode=self.join_mode,
                    order_mode=self.order_mode, parallel=self.parallel,
                    batch_mode=self.batch_mode,
                )
            except MagicTransformError:
                return self._resolve_query(subgoal)
            skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
            return answers, "magic", lambda: self._nail_plan(skeleton)

        return self._instrumented_entry("query_magic", text.strip(), runner)

    def explain_analyze(self, text: str, magic: bool = False) -> str:
        """Run a query with tracing forced on and render the full report:
        static plan, per-step actual rows, per-unit counter deltas and
        wall-clock timings (the EXPLAIN ANALYZE of paper-cost accounting).
        """
        from repro.obs.report import render_explain_analyze

        sink = CollectingSink()
        self.tracer.add_sink(sink)
        try:
            result = self.query_magic(text) if magic else self.query(text)
        finally:
            self.tracer.remove_sink(sink)
        return render_explain_analyze(text, result.stats, sink.events,
                                      plan=result.plan)

    # ------------------------------------------------------------------ #
    # EDB convenience
    # ------------------------------------------------------------------ #

    def fact(self, name, *values) -> bool:
        return self.db.fact(name, *values)

    def facts(self, name, rows) -> int:
        return self.db.facts(name, rows)

    def rows(self, name, arity: int) -> QueryResult:
        """All rows of ``name/arity`` in canonical (sorted) order.

        One accessor for both worlds: a NAIL!-defined predicate is
        materialized (forcing evaluation); otherwise the EDB relation is
        read; unknown names give an empty result.  ``.resolution`` on the
        returned :class:`QueryResult` says which path answered.
        """
        self.compile()
        name_term = name if isinstance(name, Term) else mk(name)
        skeleton = pred_skeleton(name_term, arity)
        label = f"{name_term}/{arity}"

        def runner():
            if self._engine.defines(skeleton):
                out = self._engine.materialize(name_term, arity).sorted_rows()
                return out, "nail", lambda: self._nail_plan(skeleton)
            relation = self.db.get(name_term, arity)
            if relation is None:
                return [], "none", None
            return (
                relation.sorted_rows(),
                "edb",
                lambda: f"scan {name_term}/{arity} (EDB relation)",
            )

        return self._instrumented_entry("rows", label, runner)

    def relation_rows(self, name, arity: int) -> List[Row]:
        """Deprecated: use :meth:`rows`.  Reads the EDB only (no compile)."""
        warnings.warn(
            "GlueNailSystem.relation_rows() is deprecated; use rows()",
            DeprecationWarning,
            stacklevel=2,
        )
        relation = self.db.get(name, arity)
        if relation is None:
            return []
        return relation.sorted_rows()

    def idb_rows(self, name, arity: int) -> QueryResult:
        """Deprecated: use :meth:`rows`.

        The current extension of a NAIL! predicate (forces evaluation);
        raises for names no rule defines, as it always has.
        """
        warnings.warn(
            "GlueNailSystem.idb_rows() is deprecated; use rows()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.compile()
        name_term = mk(name) if not isinstance(name, Term) else name
        skeleton = pred_skeleton(name_term, arity)

        def runner():
            out = self._engine.materialize(name_term, arity).sorted_rows()
            return out, "nail", lambda: self._nail_plan(skeleton)

        return self._instrumented_entry("rows", f"{name_term}/{arity}", runner)

    def save_edb(self, path: str) -> int:
        return save_database(self.db, path)

    def load_edb(self, path: str) -> "GlueNailSystem":
        load_database(path, self.db)
        return self

    def save_facts_dir(self, directory: str) -> int:
        """Write the EDB as a directory of per-relation .facts TSV files."""
        from repro.storage.tsvdir import save_tsv_dir

        return save_tsv_dir(self.db, directory)

    def load_facts_dir(self, directory: str) -> "GlueNailSystem":
        from repro.storage.tsvdir import load_tsv_dir

        load_tsv_dir(directory, self.db)
        return self
