"""Transactions and durability for the Glue-Nail EDB.

The paper's storage manager (Section 10) is single-user and persists the
EDB only as a full dump between runs.  This package upgrades it to a
durable, transactional store:

* :mod:`repro.txn.manager` -- :class:`TransactionManager`:
  begin/commit/rollback with an in-memory undo log, hooked into every
  :class:`~repro.storage.relation.Relation` mutation path through the
  database's journal interface.
* :mod:`repro.txn.wal` -- :class:`WriteAheadLog`: an append-only,
  human-readable redo log of committed mutations (fact syntax, one line
  per op) plus :func:`replay_wal` for crash recovery.
* :mod:`repro.txn.store` -- :class:`DurableStore`: a database directory
  (checkpoint dump + WAL) with open-time recovery and checkpoint
  compaction.
"""

from repro.txn.manager import TransactionError, TransactionManager
from repro.txn.store import CHECKPOINT_FILE, WAL_FILE, DurableStore
from repro.txn.wal import WAL_HEADER, WriteAheadLog, apply_op, format_op, replay_wal

__all__ = [
    "CHECKPOINT_FILE",
    "DurableStore",
    "TransactionError",
    "TransactionManager",
    "WAL_FILE",
    "WAL_HEADER",
    "WriteAheadLog",
    "apply_op",
    "format_op",
    "replay_wal",
]
