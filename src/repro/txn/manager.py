"""Transactions over the EDB: begin/commit/rollback with undo logging.

The paper's Glue update semantics interleave EDB mutation with evaluation;
this module adds the transactional boundaries LDL++ grew into and
U-Datalog formalizes -- updates take effect immediately (so a transaction
reads its own writes) but become *permanent* only at commit, and roll back
exactly on abort.

The :class:`TransactionManager` is the mutation journal a
:class:`~repro.storage.database.Database` dispatches to
(``db.attach_journal(manager)``):

* outside a transaction, every mutation is **autocommitted**: forwarded
  straight to the write-ahead log as a single-op batch;
* inside a transaction, mutations accumulate an in-memory **undo log**
  (applied in reverse on rollback) and a **redo batch** that reaches the
  WAL -- in one durable append -- only on commit.

The manager is single-writer by design: the query server serializes
writers behind a write lock, and the embedded single-user case has no
concurrency at all.  ``begin`` while a transaction is open is an error
(no nesting), matching the flat transaction model of the era.

A transaction belongs to the thread that began it.  Mutations arriving
from any *other* thread (a reader session's compile declaring a relation
on the shared catalog, say) are autocommitted instead of joining the open
transaction -- otherwise a foreign rollback would silently undo them, and
the undo/redo lists would be mutated across threads without a lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import List, Optional

from repro.errors import GlueRuntimeError
from repro.storage.database import Database
from repro.txn.wal import Op, WriteAheadLog


class TransactionError(GlueRuntimeError):
    """Misuse of transaction boundaries (nested begin, commit w/o begin)."""


class TransactionManager:
    """Undo/redo journaling for one :class:`Database`.

    ``wal`` is optional: without it the manager still provides atomic
    in-memory transactions (begin/commit/rollback); with it, committed
    batches are durably appended.
    """

    def __init__(self, db: Database, wal: Optional[WriteAheadLog] = None):
        self.db = db
        self.wal = wal
        self._active = False
        self._owner: Optional[int] = None  # thread ident of the begin() caller
        self._undo: List[Op] = []
        self._redo: List[Op] = []
        self._suspended = False
        self.commits = 0
        self.rollbacks = 0
        # Commit observers (subscription managers).  Each observer gets
        # ``on_commit(txn_id, ops)`` with the committed batch -- after the
        # transaction state is torn down, so an observer may itself mutate
        # the database (active rules) without tripping over the open txn.
        # Rolled-back transactions notify nothing.
        self._observers: List[object] = []
        self._txn_lock = threading.Lock()
        self.last_txn_id = 0

    # ------------------------------------------------------------------ #
    # commit observers
    # ------------------------------------------------------------------ #

    def add_observer(self, observer) -> None:
        """Register ``observer.on_commit(txn_id, ops)`` for committed batches."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def _notify(self, ops: List[Op]) -> None:
        """Deliver a committed batch to observers with a fresh monotone id.

        Catalog ``declare`` ops carry no subscriber-visible data (they can
        arrive from reader threads during compile) and are filtered out; a
        batch that nets to nothing relevant is not delivered at all.
        """
        if not self._observers:
            return
        data_ops = [op for op in ops if op[0] in ("insert", "delete", "drop")]
        if not data_ops:
            return
        with self._txn_lock:
            self.last_txn_id += 1
            txn_id = self.last_txn_id
        for observer in list(self._observers):
            observer.on_commit(txn_id, data_ops)

    def _owns_open_txn(self) -> bool:
        """True when the calling thread's mutations belong to the open txn."""
        return self._active and threading.get_ident() == self._owner

    # ------------------------------------------------------------------ #
    # journal interface (called from Relation/Database mutation paths)
    # ------------------------------------------------------------------ #

    def record_insert(self, relation, row) -> None:
        if self._suspended:
            return
        self._record(("insert", relation.name, row))

    def record_delete(self, relation, row) -> None:
        if self._suspended:
            return
        self._record(("delete", relation.name, row))

    def record_declare(self, name, arity: int) -> None:
        if self._suspended:
            return
        self._record(("declare", name, arity))

    def record_drop(self, name, arity: int, rows) -> None:
        if self._suspended:
            return
        if self._owns_open_txn():
            self._undo.append(("drop", name, arity, list(rows)))
        self._emit(("drop", name, arity))

    def _record(self, op: Op) -> None:
        if self._owns_open_txn():
            self._undo.append(op)
        self._emit(op)

    def _emit(self, op: Op) -> None:
        if self._owns_open_txn():
            self._redo.append(op)
        else:
            # Autocommit: each standalone mutation is its own batch.
            if self.wal is not None:
                self.wal.append_commit([op])
            self._notify([op])

    # ------------------------------------------------------------------ #
    # transaction boundaries
    # ------------------------------------------------------------------ #

    @property
    def in_transaction(self) -> bool:
        return self._active

    def begin(self) -> None:
        if self._active:
            raise TransactionError("a transaction is already active")
        self._owner = threading.get_ident()
        self._active = True
        self._undo = []
        self._redo = []

    def commit(self) -> None:
        """Make the open transaction permanent (durable, with a WAL)."""
        if not self._active:
            raise TransactionError("no transaction is active")
        if self.wal is not None and self._redo:
            self.wal.append_commit(self._redo)
        batch = self._redo
        self._active = False
        self._owner = None
        self._undo = []
        self._redo = []
        self.commits += 1
        if batch:
            self._notify(batch)

    def rollback(self) -> None:
        """Undo the open transaction's mutations, newest first."""
        if not self._active:
            raise TransactionError("no transaction is active")
        self._suspended = True
        try:
            for op in reversed(self._undo):
                self._apply_undo(op)
        finally:
            self._suspended = False
            self._active = False
            self._owner = None
            self._undo = []
            self._redo = []
            self.rollbacks += 1

    def _apply_undo(self, op) -> None:
        """Reverse one journaled op through the normal mutation paths.

        Going through ``Relation.insert``/``delete`` (not raw row storage)
        matters for cache coherence: the relation's version and row-level
        change journal record the compensation, so the NAIL! engine's
        incremental maintenance sees the insert/delete pairs cancel and
        keeps every derived relation cached across a rollback.
        """
        kind = op[0]
        if kind == "insert":
            relation = self.db.get(op[1], len(op[2]))
            if relation is not None:
                relation.delete(op[2])
        elif kind == "delete":
            self.db.relation(op[1], len(op[2])).insert(op[2])
        elif kind == "declare":
            self.db.drop(op[1], op[2])
        elif kind == "drop":
            # Bulk restore: one version bump and one change-journal batch
            # for the whole extension instead of one per row.
            self.db.declare(op[1], op[2]).insert_new(op[3])
        else:  # pragma: no cover - vocabulary is closed
            raise ValueError(f"unknown undo op {kind!r}")

    @contextmanager
    def transaction(self):
        """``with manager.transaction():`` -- commit on success, roll back
        on any exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()
