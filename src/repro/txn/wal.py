"""The write-ahead log: committed EDB mutations, one line per operation.

The paper's back end persists the EDB as a full dump between runs; the WAL
upgrades that to incremental durability.  Only *committed* work reaches the
log (a redo log -- rollbacks never touch disk), and the line syntax reuses
the dump format's fact syntax, so a WAL is human-readable and greppable:

.. code-block:: text

    % Glue-Nail WAL (format 1)
    % txn 1
    + edge(1, 2).
    + edge(2, 3).
    % commit 1
    % txn 2
    - edge(1, 2).
    % rel marker / 0
    % drop scratch / 2
    % commit 2

Operation lines: ``+ fact.`` insert, ``- fact.`` delete, ``% rel name /
arity`` catalog declare, ``% drop name / arity`` catalog drop.  A commit is
the batch between a ``% txn N`` and its matching ``% commit N`` marker;
:func:`replay_wal` applies only complete batches, so a crash mid-append
(torn tail, missing commit marker) loses at most the transaction that was
still committing -- exactly the atomicity contract.

Replay is idempotent (re-inserting an existing tuple, re-deleting an absent
one, re-declaring and re-dropping are all no-ops), which lets recovery
tolerate a crash between the checkpoint dump and the WAL truncation.
"""

from __future__ import annotations

import os
import re
import threading
from typing import List, Optional, Tuple

from repro.storage.database import Database
from repro.storage.persist import fact_to_line, fsync_directory
from repro.terms.printer import term_to_str

WAL_HEADER = "% Glue-Nail WAL (format 1)"

# Op tuples: ("insert", name, row) | ("delete", name, row)
#          | ("declare", name, arity) | ("drop", name, arity)
Op = tuple

_TXN_RE = re.compile(r"%\s*txn\s+(\d+)\s*\Z")
_COMMIT_RE = re.compile(r"%\s*commit\s+(\d+)\s*\Z")
_DROP_RE = re.compile(r"%\s*drop\s+(.+?)\s*/\s*(\d+)\s*\Z")


def format_op(op: Op) -> str:
    """Render one journal op as its WAL line."""
    kind = op[0]
    if kind == "insert":
        return "+ " + fact_to_line(op[1], op[2])
    if kind == "delete":
        return "- " + fact_to_line(op[1], op[2])
    if kind == "declare":
        return f"% rel {term_to_str(op[1])} / {op[2]}"
    if kind == "drop":
        return f"% drop {term_to_str(op[1])} / {op[2]}"
    raise ValueError(f"unknown journal op {kind!r}")


class WriteAheadLog:
    """An append-only log of committed transactions.

    ``sync=True`` (the default) fsyncs after every commit batch -- the
    durability point; ``sync=False`` trades that for speed (data still
    survives a process crash, but not an OS crash).

    Appends are internally serialized by a mutex, so the log stays
    consistent (no interleaved batches, no racing tids) regardless of the
    caller's own locking -- e.g. a write-lock holder's commit overlapping
    an autocommitted catalog declare from a reader thread.

    Transaction ids are monotone: reopening an existing log continues past
    the highest tid already on disk instead of restarting at 1, so a tid
    stays a unique identifier for tooling across restarts.

    Commits *group* their fsyncs: a committing thread appends its batch
    under the mutex (buffered write + flush only), then waits for the log
    to be synced past its own append.  The first waiter becomes the group
    leader, issues one fsync covering every batch appended so far, and
    wakes the rest -- so N sessions committing concurrently pay ~1 fsync,
    not N, while each still returns only once its own batch is durable.
    The serial case degenerates to exactly one fsync per commit.
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = os.path.abspath(path)
        self.sync = sync
        directory = os.path.dirname(self.path)
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._next_tid = 1 if fresh else _last_tid(self.path) + 1
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self.commits = 0
        # Group-commit state: appends are numbered (``_write_seq``);
        # ``_synced_seq`` trails it, advanced by whichever committer is
        # elected sync leader under ``_sync_cond``.
        self.fsyncs = 0
        self._write_seq = 0
        self._synced_seq = 0
        self._syncing = False
        self._sync_cond = threading.Condition(threading.Lock())
        if fresh:
            self._handle.write(WAL_HEADER + "\n")
            self._flush()

    def _flush(self) -> None:
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
            self.fsyncs += 1

    def append_commit(self, ops: List[Op]) -> Optional[int]:
        """Durably append one committed batch; returns its txn id.

        Returns once the batch is on disk (``sync=True``); the fsync may
        have been issued by a concurrently committing thread's group
        leader rather than this one.
        """
        if not ops:
            return None
        with self._lock:
            if self._handle is None:
                raise ValueError("write-ahead log is closed")
            tid = self._next_tid
            self._next_tid += 1
            lines = [f"% txn {tid}"]
            lines.extend(format_op(op) for op in ops)
            lines.append(f"% commit {tid}")
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            self._write_seq += 1
            my_seq = self._write_seq
            self.commits += 1
        if self.sync:
            self._sync_to(my_seq)
        return tid

    def _sync_to(self, seq: int) -> None:
        """Block until the log is fsynced at least past append ``seq``.

        Leader-follower group commit: one waiter at a time holds the sync
        baton, captures the current append high-water mark, fsyncs once
        outside both locks, and publishes the new synced mark -- covering
        every follower whose append landed before the capture.
        """
        with self._sync_cond:
            while True:
                if self._synced_seq >= seq:
                    return
                if not self._syncing:
                    self._syncing = True
                    break
                self._sync_cond.wait()
        try:
            with self._lock:
                handle = self._handle
                target = self._write_seq
                fd = handle.fileno() if handle is not None else None
            if fd is not None:
                os.fsync(fd)
        finally:
            with self._sync_cond:
                self._syncing = False
                if fd is not None:
                    self.fsyncs += 1
                # A closed handle (fd None) can't be synced any further;
                # advance the mark anyway so waiters don't spin forever.
                self._synced_seq = max(self._synced_seq, target)
                self._sync_cond.notify_all()

    def reset(self) -> None:
        """Truncate to an empty log (after a checkpoint), atomically.

        Tids keep counting up -- a post-checkpoint batch never reuses an
        id from the compacted-away prefix.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(WAL_HEADER + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            fsync_directory(os.path.dirname(self.path))
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _last_tid(path: str) -> int:
    """The highest transaction id recorded in an existing log (0 if none)."""
    last = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                marker = _TXN_RE.match(raw.strip()) or _COMMIT_RE.match(raw.strip())
                if marker:
                    last = max(last, int(marker.group(1)))
    except OSError:
        return 0
    return last


def _parse_op(line: str) -> Optional[Op]:
    """Parse one WAL op line; None for unrecognized/comment lines.

    Raises on a syntactically broken ``+``/``-`` line (a torn tail), which
    the replay loop treats as "abandon this batch".
    """
    from repro.lang.parser import parse_directive_rel, parse_ground_fact

    if line.startswith("+ ") or line.startswith("- "):
        name, row = parse_ground_fact(line[2:].strip())
        return ("insert" if line[0] == "+" else "delete", name, row)
    if line.startswith("%"):
        dropped = _DROP_RE.match(line.strip())
        if dropped:
            from repro.lang.parser import parse_term

            return ("drop", parse_term(dropped.group(1)), int(dropped.group(2)))
        declared = parse_directive_rel(line)
        if declared is not None:
            return ("declare", declared[0], declared[1])
    return None


def apply_op(db: Database, op: Op) -> None:
    """Apply one redo op to ``db``; every case is idempotent."""
    kind = op[0]
    if kind == "insert":
        db.relation(op[1], len(op[2])).insert(op[2])
    elif kind == "delete":
        relation = db.get(op[1], len(op[2]))
        if relation is not None:
            relation.delete(op[2])
    elif kind == "declare":
        db.declare(op[1], op[2])
    elif kind == "drop":
        db.drop(op[1], op[2])
    else:  # pragma: no cover - format_op and _parse_op share the vocabulary
        raise ValueError(f"unknown journal op {kind!r}")


def replay_wal(path: str, db: Database) -> Tuple[int, int]:
    """Replay every *complete* committed batch of ``path`` into ``db``.

    Returns ``(transactions_applied, ops_applied)``.  Incomplete batches --
    a ``% txn`` with no matching ``% commit``, or a torn final line -- are
    skipped silently: they are precisely the uncommitted work a crash is
    allowed to lose.  Any journal attached to ``db`` is suspended for the
    duration so recovery does not re-log itself.
    """
    journal = db.journal
    if journal is not None:
        db.attach_journal(None)
    txns = ops_applied = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            pending_tid: Optional[int] = None
            pending_ops: List[Op] = []
            for raw in handle:
                line = raw.strip()
                if not line or line == WAL_HEADER:
                    continue
                started = _TXN_RE.match(line)
                if started:
                    pending_tid = int(started.group(1))
                    pending_ops = []
                    continue
                committed = _COMMIT_RE.match(line)
                if committed:
                    if pending_tid is not None and int(committed.group(1)) == pending_tid:
                        for op in pending_ops:
                            apply_op(db, op)
                        txns += 1
                        ops_applied += len(pending_ops)
                    pending_tid = None
                    pending_ops = []
                    continue
                if pending_tid is None:
                    continue  # op outside any batch: stale tail, skip
                try:
                    op = _parse_op(line)
                except Exception:
                    # A torn line can only be the crash-interrupted tail;
                    # its batch has no commit marker, so drop it.
                    pending_tid = None
                    pending_ops = []
                    continue
                if op is not None:
                    pending_ops.append(op)
    finally:
        if journal is not None:
            db.attach_journal(journal)
    return txns, ops_applied
