"""A durable EDB directory: checkpoint dump + write-ahead log + recovery.

Layout of a store directory::

    DIR/checkpoint.gnd   last full EDB dump (save_database format)
    DIR/wal.log          committed mutations since that checkpoint

Opening a store recovers: load the checkpoint (if any), then replay every
complete committed batch of the WAL over it.  :meth:`DurableStore.checkpoint`
compacts -- it atomically rewrites ``checkpoint.gnd`` from the live
database and truncates the WAL.  Both steps are individually atomic and
replay is idempotent, so a crash at any point between them recovers to the
same committed state.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import GlueRuntimeError
from repro.storage.database import Database
from repro.storage.persist import load_database, save_database
from repro.txn.manager import TransactionManager
from repro.txn.wal import WriteAheadLog, replay_wal

CHECKPOINT_FILE = "checkpoint.gnd"
WAL_FILE = "wal.log"


class DurableStore:
    """A :class:`Database` whose committed mutations survive crashes.

    Typical embedded use::

        store = DurableStore("state/")       # recovers if needed
        store.db.fact("edge", 1, 2)          # autocommitted to the WAL
        with store.transaction():
            store.db.fact("edge", 2, 3)      # atomic as a unit
        store.checkpoint()                   # compact WAL into the dump
        store.close()
    """

    def __init__(self, directory: str, db: Optional[Database] = None, sync: bool = True):
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.checkpoint_path = os.path.join(self.directory, CHECKPOINT_FILE)
        self.wal_path = os.path.join(self.directory, WAL_FILE)
        self.db = db if db is not None else Database()

        # Recovery: checkpoint first, then the committed WAL suffix.
        self.recovered_txns = 0
        self.recovered_ops = 0
        if os.path.exists(self.checkpoint_path):
            load_database(self.checkpoint_path, self.db)
        if os.path.exists(self.wal_path):
            self.recovered_txns, self.recovered_ops = replay_wal(self.wal_path, self.db)

        self.wal = WriteAheadLog(self.wal_path, sync=sync)
        self.txn = TransactionManager(self.db, self.wal)
        self.db.attach_journal(self.txn)

    # ------------------------------------------------------------------ #
    # transaction passthrough
    # ------------------------------------------------------------------ #

    def begin(self) -> None:
        self.txn.begin()

    def commit(self) -> None:
        self.txn.commit()

    def rollback(self) -> None:
        self.txn.rollback()

    def transaction(self):
        return self.txn.transaction()

    @property
    def in_transaction(self) -> bool:
        return self.txn.in_transaction

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> int:
        """Compact: dump the live EDB, then truncate the WAL.

        Returns the number of facts in the new checkpoint.  Must not run
        inside a transaction (the dump would capture uncommitted state).
        """
        if self.txn.in_transaction:
            raise GlueRuntimeError("cannot checkpoint inside a transaction")
        count = save_database(self.db, self.checkpoint_path)
        self.wal.reset()
        return count

    def close(self, checkpoint: bool = False) -> None:
        """Detach from the database and close the WAL.

        ``checkpoint=True`` compacts first (a clean shutdown); otherwise
        the WAL simply remains for the next open's recovery to replay.
        """
        if checkpoint and not self.txn.in_transaction:
            self.checkpoint()
        self.db.attach_journal(None)
        self.wal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DurableStore {self.directory!r} rels={len(self.db)}>"
