"""The JSON-lines wire protocol of the Glue-Nail query server.

One request per line, one response per line, UTF-8 JSON either way.

Request::

    {"op": "query", "q": "path(1, X)?", "id": 7}

``id`` is optional and echoed back verbatim.  Response::

    {"ok": true, "id": 7, "rows": [...], "values": [...],
     "stats": {...}, "resolution": "nail"}

or on failure ``{"ok": false, "id": 7, "error": "...", "kind": "..."}``.

Rows travel in two renderings: ``rows`` is the human-readable fact syntax
(one string per tuple), ``values`` is the JSON lowering of
:func:`repro.core.query.rows_to_python` (atoms as strings, numbers as
numbers, compound terms as nested arrays).  ``stats`` carries the
per-session :class:`~repro.obs.query_stats.QueryStats` -- sessions count
on thread-local counters, so concurrent queries never corrupt each
other's deltas.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.query import rows_to_python
from repro.obs.query_stats import QueryStats
from repro.terms.printer import tuple_to_str

MAX_LINE = 16 * 1024 * 1024  # defensive bound on one request/response line


class ProtocolError(ValueError):
    """A malformed request line."""


def encode(payload: dict) -> str:
    """One response (or request) as a single JSON line."""
    return json.dumps(payload, separators=(", ", ": "), default=str)


def decode(line: str) -> dict:
    if len(line) > MAX_LINE:
        raise ProtocolError(f"request line exceeds {MAX_LINE} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("a request must be a JSON object")
    return payload


def ok_response(request_id: Optional[Any] = None, **fields) -> dict:
    payload = {"ok": True}
    if request_id is not None:
        payload["id"] = request_id
    payload.update(fields)
    return payload


def error_response(
    message: str, request_id: Optional[Any] = None, kind: str = "error"
) -> dict:
    payload = {"ok": False, "error": message, "kind": kind}
    if request_id is not None:
        payload["id"] = request_id
    return payload


def stats_payload(stats: Optional[QueryStats]) -> Optional[dict]:
    """A QueryStats as wire-safe JSON (full counter delta included)."""
    if stats is None:
        return None
    return {
        "query": stats.query,
        "resolution": stats.resolution,
        "rows": stats.rows,
        "elapsed_ms": round(stats.elapsed_s * 1000.0, 3),
        "counters": dict(stats.counters),
    }


def notification_frame(note) -> dict:
    """A pushed subscription notification as a wire frame.

    Notification frames are distinguished from responses by the
    ``"event"`` key (responses carry ``"ok"`` instead); rows travel in the
    JSON lowering of :func:`rows_to_python`.  ``seq`` is monotone per
    subscription; a gap (or an explicit ``resync`` op) tells the consumer
    to re-read the predicate before trusting further deltas.
    """
    payload = note.payload()
    payload["event"] = "notification"
    payload["rows"] = rows_to_python(note.rows)
    return payload


def rows_payload(result) -> dict:
    """Rows + metadata of a QueryResult (or plain row list)."""
    payload = {
        "rows": [tuple_to_str(row) for row in result],
        "values": rows_to_python(result),
    }
    stats = getattr(result, "stats", None)
    if stats is not None:
        payload["stats"] = stats_payload(stats)
    resolution = getattr(result, "resolution", None)
    if resolution is not None:
        payload["resolution"] = resolution
    return payload
