"""The concurrent Glue-Nail query service.

Turns the embedded, single-user engine of the paper into a multi-client
server: a threaded JSON-lines TCP front end (:mod:`repro.server.server`),
a readers-writer lock that runs read-only queries concurrently while EDB
updates serialize (:mod:`repro.server.rwlock`), the wire protocol
(:mod:`repro.server.protocol`), and a small blocking client
(:mod:`repro.server.client`).  ``gluenail serve`` / ``gluenail connect``
are the CLI entry points.
"""

from repro.server.client import (
    Client,
    ClientNotification,
    ClientSubscription,
    ConnectionClosed,
    RemoteError,
    RemoteResult,
)
from repro.server.protocol import ProtocolError, decode, encode
from repro.server.rwlock import RWLock
from repro.server.server import DEFAULT_PORT, GlueNailServer, Session

__all__ = [
    "Client",
    "ClientNotification",
    "ClientSubscription",
    "ConnectionClosed",
    "DEFAULT_PORT",
    "GlueNailServer",
    "ProtocolError",
    "RWLock",
    "RemoteError",
    "RemoteResult",
    "Session",
    "decode",
    "encode",
]
