"""A readers-writer lock for the query server.

Read-only queries run concurrently; Glue procedures and fact loads that
update the EDB serialize behind the write side.  Writers are preferred:
once a writer is waiting, new readers queue behind it, so a steady stream
of cheap reads cannot starve an update.

The lock is not reentrant and read/write acquisitions do not upgrade; the
server tracks "this session already holds the write lock" itself (a
session holding a transaction keeps the write lock across requests).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Writer-preferring readers-writer lock built on one condition var."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------ #

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    @property
    def stats(self) -> dict:
        """A racy snapshot for observability (not for synchronization)."""
        return {
            "readers": self._readers,
            "writer_active": self._writer_active,
            "writers_waiting": self._writers_waiting,
        }
