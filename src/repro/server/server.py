"""A threaded JSON-lines TCP query server over one shared EDB.

The paper's back end is explicitly single-user; this server turns the
embedded engine into a multi-client service:

* one thread per connection (``socketserver.ThreadingTCPServer``), one
  :class:`Session` per connection;
* each session owns its *own* :class:`~repro.core.system.GlueNailSystem`
  (program, compiler, NAIL! engine) over the *shared*
  :class:`~repro.storage.database.Database`, so loaded rules are private
  while the EDB is common;
* a readers-writer lock lets read-only queries run concurrently while
  mutations (fact loads, procedure calls, transactions) serialize;
* per-session stats ride on thread-local cost counters
  (:class:`~repro.storage.stats.ThreadLocalCounters`) and session-tagged
  trace events, so concurrent queries never corrupt each other's deltas;
* with a durable store attached (``gluenail serve --db DIR``), committed
  mutations reach the write-ahead log and survive crashes.

A session that issues ``begin`` holds the write lock until its ``commit``
or ``rollback`` (or its disconnect, which rolls back) -- transactions are
globally serialized, the natural reading of the era's flat model.
"""

from __future__ import annotations

import itertools
import socketserver
import threading
from contextlib import contextmanager
from io import StringIO
from typing import Optional

from repro.analysis.scope import pred_skeleton
from repro.core.system import GlueNailSystem
from repro.errors import GlueNailError
from repro.lang.parser import parse_query
from repro.core.query import rows_to_python
from repro.server.protocol import (
    ProtocolError,
    decode,
    encode,
    error_response,
    notification_frame,
    ok_response,
    rows_payload,
)
from repro.server.rwlock import RWLock
from repro.storage.database import Database
from repro.storage.stats import ThreadLocalCounters
from repro.txn.manager import TransactionManager

DEFAULT_PORT = 7411

# REPL dot-commands that never mutate the shared EDB.
_READONLY_DOT = {
    ".help", ".rels", ".dump", ".explain", ".analyze",
    ".profile", ".last", ".stats", ".quit", ".exit",
}


class _NullLock:
    """Stands in for the RWLock when the session already holds the write side."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_LOCK = _NullLock()


class Session:
    """One connection's state: a private system over the shared EDB."""

    def __init__(self, server: "GlueNailServer", session_id: int):
        self.server = server
        self.id = session_id
        self.name = f"session-{session_id}"
        self.closed = False
        self._holds_write = False
        self.system = GlueNailSystem(
            db=server.db, parallel=server.parallel, batch_mode=server.batch_mode
        )
        self.system.store = server.store
        self.system._txn = server.txn
        if server.mvcc_store is not None:
            # Route this session's reads through the shared version store:
            # read-only requests pin a published snapshot instead of
            # taking the read lock (see repro.mvcc).
            self.system.enable_snapshots(store=server.mvcc_store)
        if server.base_program:
            self.system.load(server.base_program)
        self._repl = None
        self._repl_out: Optional[StringIO] = None
        # Push subscriptions: this session's registrations on the server's
        # SubscriptionManager, the transport the pusher writes frames to,
        # and the pusher thread itself (started on first subscribe).
        self._subs: dict = {}
        self._wfile = None
        self._write_lock = threading.Lock()
        self._push_event = threading.Event()
        self._pusher: Optional[threading.Thread] = None
        # Tag this connection thread's trace events with the session name.
        server.db.tracer.set_session(self.name)

    # -------------------------------------------------------------- #
    # locking
    # -------------------------------------------------------------- #

    def _locked(self, write: bool):
        if self._holds_write:
            return _NULL_LOCK
        if write:
            return self.server.write_window()
        return self.server.lock.read_locked()

    def _acquire_write(self) -> None:
        """Take the write lock and open a write window (explicit txn)."""
        self.server.lock.acquire_write()
        store = self.server.mvcc_store
        if store is not None:
            store.begin_window()

    def _release_write(self) -> None:
        """Publish the window's result and release the write lock."""
        store = self.server.mvcc_store
        if store is not None:
            store.publish()
        self.server.lock.release_write()

    @contextmanager
    def _read_context(self):
        """The read-side bracket: a pinned snapshot when the version store
        can hand one out (no lock at all), the read lock otherwise."""
        if self._holds_write:
            yield
            return
        store = self.server.mvcc_store
        snapshot = store.pin() if store is not None else None
        if snapshot is None:
            with self.server.lock.read_locked():
                yield
        else:
            with self.system.db.pinned(snapshot):
                yield

    def _run_classified(self, classify_write, run):
        """Classify a request, then run it read-side or write-side.

        With the version store (snapshot mode) classification takes no
        lock: compile-time declares are safe against concurrent writers
        (the catalog lock serializes them, and the transaction manager
        autocommits foreign-thread mutations instead of journaling them
        into another session's open transaction).  A read verdict pins a
        published snapshot and *re-validates* under the pin -- the
        classifier looked at the live catalog, and a concurrent drop can
        flip a read-only query onto the mutating procedure-fallback path,
        which must never run outside the write lock.  A write verdict (or
        a flipped one) runs inside a write window; the classifier is
        re-run there so it observes the post-upgrade catalog rather than
        whatever it compiled against before the gap.

        In lock mode (``mvcc=False``) the classifier runs under the read
        lock and a read verdict executes without releasing it, so
        classification and execution are atomic; a write verdict upgrades
        and likewise re-validates after the gap.
        """
        if self._holds_write:
            return run()
        store = self.server.mvcc_store
        if store is not None:
            if not classify_write():
                hook = self.server._classify_hook
                if hook is not None:
                    hook(self)  # test injection point: the classify->pin gap
                snapshot = store.pin()
                if snapshot is None:
                    # Mid-window with nothing published yet: fall back to
                    # the read lock (counted as snapshot_fallbacks).
                    lock = self.server.lock
                    lock.acquire_read()
                    try:
                        if not classify_write():
                            return run()
                    finally:
                        lock.release_read()
                else:
                    with self.system.db.pinned(snapshot):
                        if not classify_write():
                            return run()
                    # The verdict flipped under the pinned catalog; fall
                    # through to the write path.
        else:
            lock = self.server.lock
            lock.acquire_read()
            try:
                if not classify_write():
                    return run()
            finally:
                lock.release_read()
        with self.server.write_window():
            classify_write()  # re-validate against the post-upgrade catalog
            return run()

    def _query_is_readonly(self, text: str) -> bool:
        """True unless the query could fall back to a (mutating) procedure."""
        try:
            subgoal = parse_query(text)
            self.system.compile()
            skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
            if self.system._engine.defines(skeleton):
                return True
            return self.system.db.get(subgoal.pred, len(subgoal.args)) is not None
        except Exception:
            return True  # let the entry point raise the real error

    def _repl_is_write(self, line: str) -> bool:
        stripped = line.strip()
        if not stripped:
            return False
        if self._repl is not None and self._repl._pending:
            return True  # mid-definition: resolves to a load
        if stripped.startswith("."):
            command = stripped.split(None, 1)[0]
            if command == ".magic":
                arg = stripped.split(None, 1)[1] if " " in stripped else ""
                return not self._query_is_readonly(arg) if arg else False
            return command not in _READONLY_DOT
        if stripped.endswith("?"):
            return not self._query_is_readonly(stripped)
        return True

    # -------------------------------------------------------------- #
    # dispatch
    # -------------------------------------------------------------- #

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        request_id = request.get("id")
        handler = getattr(self, f"op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return error_response(f"unknown op {op!r}", request_id, kind="protocol")
        try:
            fields = handler(request)
        except GlueNailError as exc:
            return error_response(str(exc), request_id, kind=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return error_response(f"{type(exc).__name__}: {exc}", request_id,
                                  kind="internal")
        return ok_response(request_id, **fields)

    # -------------------------------------------------------------- #
    # read ops
    # -------------------------------------------------------------- #

    def op_ping(self, request: dict) -> dict:
        return {"pong": True, "session": self.name}

    def op_query(self, request: dict) -> dict:
        text = request.get("q", "")
        magic = bool(request.get("magic"))
        result = self._run_classified(
            lambda: not self._query_is_readonly(text),
            lambda: self.system.query_magic(text) if magic else self.system.query(text),
        )
        payload = rows_payload(result)
        if result.trace:
            payload["trace"] = [event.to_dict() for event in result.trace]
        return payload

    def op_rows(self, request: dict) -> dict:
        name = request.get("name", "")
        arity = int(request.get("arity", 0))
        with self._read_context():
            result = self.system.rows(name, arity)
        return rows_payload(result)

    def op_rels(self, request: dict) -> dict:
        db = self.system.db  # resolves through the pinned snapshot, if any
        with self._read_context():
            catalog = [
                {"name": str(name), "arity": arity,
                 "rows": len(db.get(name, arity))}
                for name, arity in db.sorted_keys()
            ]
        return {"relations": catalog}

    def op_stats(self, request: dict) -> dict:
        counters = self.system.counters
        session_counters = counters.snapshot()
        payload = {
            "session": self.name,
            "counters": {k: v for k, v in session_counters.items() if v},
            "lock": self.server.lock.stats,
            "sessions_started": self.server.sessions_started,
        }
        aggregate = getattr(counters, "aggregate", None)
        if aggregate is not None:
            payload["server_counters"] = {
                k: v for k, v in aggregate().snapshot().items() if v
            }
        if self.system._compiled is not None:
            # Only meaningful once this session has compiled rules; the
            # engine (and its stratum caches) are per-session state.
            with self._read_context():
                payload["idb_cache"] = self.system.idb_cache_info()
        if self.server.mvcc_store is not None:
            payload["mvcc"] = self.server.mvcc_store.stats()
        if self.server.store is not None:
            payload["wal_commits"] = self.server.store.wal.commits
            payload["wal_fsyncs"] = self.server.store.wal.fsyncs
        payload["subscriptions"] = self.server.subscriptions.stats()
        if self.server.parallel is not None:
            payload["parallel"] = self.server.parallel.stats()
        else:
            payload["parallel"] = {"mode": "serial", "workers": 1}
        return payload

    def op_trace(self, request: dict) -> dict:
        if request.get("on", True):
            self.system.enable_tracing(local=True)
            return {"tracing": True}
        self.system.disable_tracing()
        return {"tracing": False}

    def op_close(self, request: dict) -> dict:
        self.closed = True
        return {"closed": True}

    # -------------------------------------------------------------- #
    # write ops
    # -------------------------------------------------------------- #

    def op_facts(self, request: dict) -> dict:
        name = request.get("name", "")
        rows = request.get("rows", [])
        with self._locked(True):
            inserted = self.system.facts(name, [tuple(row) for row in rows])
        return {"inserted": inserted}

    def op_load(self, request: dict) -> dict:
        source = request.get("source", "")
        with self._locked(True):
            self.system.load(source)
            self.system.compile()
        return {"loaded": True}

    def op_call(self, request: dict) -> dict:
        name = request.get("name", "")
        inputs = [tuple(row) for row in request.get("inputs", [[]])]
        module = request.get("module")
        arity = request.get("arity")
        with self._locked(True):
            result = self.system.call(name, inputs, module=module, arity=arity)
        return rows_payload(result)

    def op_checkpoint(self, request: dict) -> dict:
        with self._locked(True):
            count = self.system.checkpoint()
        return {"checkpointed": count}

    # -------------------------------------------------------------- #
    # subscriptions: push framed notifications over this connection
    # -------------------------------------------------------------- #

    def op_subscribe(self, request: dict) -> dict:
        name = request.get("name", "")
        arity = int(request.get("arity", 0))
        pattern = request.get("pattern")
        capacity = int(request.get("capacity", 1024))
        snapshot = bool(request.get("snapshot"))
        source = request.get("source")
        # Under the write lock: registration must not interleave with a
        # commit flush, and `source` mutates the shared subscription
        # system's program (IDB watches evaluate there, not on this
        # session's private rule set).
        with self._locked(True):
            if source:
                self.server.sub_system.load(source)
                self.server.sub_system.compile()
            sub = self.server.subscriptions.subscribe(
                name,
                arity,
                pattern=pattern,
                capacity=capacity,
                owner=self,
                snapshot=snapshot,
            )
            self._subs[sub.id] = sub
            sub.notify_hook = self._push_event.set
        self._ensure_pusher()
        fields = {"sub": sub.id, "predicate": sub.predicate, "kind": sub.kind}
        if snapshot:
            fields["snapshot"] = rows_to_python(sub.snapshot_rows or [])
        return fields

    def op_unsubscribe(self, request: dict) -> dict:
        sub_id = int(request.get("sub", 0))
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            raise GlueNailError(f"no subscription {sub_id} in this session")
        self.server.subscriptions.unsubscribe(sub_id)
        return {"unsubscribed": sub_id}

    # -------------------------------------------------------------- #
    # the push path: one pusher thread per session with subscriptions
    # -------------------------------------------------------------- #

    def attach_transport(self, wfile) -> None:
        self._wfile = wfile

    def send_response(self, response: dict) -> None:
        """Write one frame; serialized against the pusher thread so
        notification and response lines never interleave mid-frame."""
        data = (encode(response) + "\n").encode("utf-8")
        with self._write_lock:
            self._wfile.write(data)
            self._wfile.flush()

    def _ensure_pusher(self) -> None:
        if self._pusher is None and self._wfile is not None:
            self._pusher = threading.Thread(
                target=self._push_loop, name=f"{self.name}-pusher", daemon=True
            )
            self._pusher.start()

    def _push_loop(self) -> None:
        # Commits wake us via notify_hook; the timeout is only a backstop
        # so teardown (closed=True) is noticed even without traffic.
        while not self.closed:
            self._push_event.wait(timeout=0.2)
            self._push_event.clear()
            for sub in list(self._subs.values()):
                for note in sub.drain():
                    try:
                        self.send_response(notification_frame(note))
                    except (ConnectionError, OSError, ValueError):
                        self.closed = True
                        return

    # -------------------------------------------------------------- #
    # transactions: the session keeps the write lock for their duration
    # -------------------------------------------------------------- #

    def op_begin(self, request: dict) -> dict:
        if self._holds_write:
            raise GlueNailError("this session already holds a transaction")
        self._acquire_write()
        try:
            self.system.begin()
        except BaseException:
            self._release_write()
            raise
        self._holds_write = True
        return {"transaction": "open"}

    def op_commit(self, request: dict) -> dict:
        if not self._holds_write:
            raise GlueNailError("no transaction is active in this session")
        try:
            self.system.commit()
        finally:
            self._holds_write = False
            self._release_write()
        return {"transaction": "committed"}

    def op_rollback(self, request: dict) -> dict:
        if not self._holds_write:
            raise GlueNailError("no transaction is active in this session")
        try:
            self.system.rollback()
        finally:
            self._holds_write = False
            self._release_write()
        return {"transaction": "rolled back"}

    # -------------------------------------------------------------- #
    # the REPL proxy: `gluenail connect` feeds raw REPL lines here
    # -------------------------------------------------------------- #

    def _ensure_repl(self):
        if self._repl is None:
            from repro.core.repl import Repl

            self._repl_out = StringIO()
            self.system.out = self._repl_out
            self._repl = Repl(system=self.system, out=self._repl_out)
        return self._repl

    def op_repl(self, request: dict) -> dict:
        line = request.get("line", "")
        stripped = line.strip()
        repl = self._ensure_repl()
        # Transaction boundaries must go through the session's lock
        # handover, not straight into the system.
        if stripped in (".begin", ".commit", ".rollback"):
            fields = getattr(self, f"op_{stripped[1:]}")(request)
            return {"out": f"transaction {fields['transaction']}\n", "done": False}
        self._run_classified(
            lambda: self._repl_is_write(line),
            lambda: repl.feed(line if line.endswith("\n") else line + "\n"),
        )
        out = self._repl_out.getvalue()
        self._repl_out.seek(0)
        self._repl_out.truncate(0)
        if repl.done:
            self.closed = True
        return {"out": out, "done": repl.done}

    # -------------------------------------------------------------- #

    def release(self) -> None:
        """Connection teardown: abort any open transaction, free the lock,
        and remove this session's subscriptions (no leaked queues)."""
        if self._holds_write:
            try:
                if self.system.txn is not None and self.system.txn.in_transaction:
                    self.system.rollback()
            finally:
                self._holds_write = False
                self._release_write()
        if self._subs:
            self.server.subscriptions.unsubscribe_owner(self)
            self._subs.clear()
        self.system.disable_tracing()
        self.server.db.tracer.set_session(None)
        self.closed = True
        self._push_event.set()  # wake the pusher so it can exit


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):  # pragma: no cover - exercised via live-server tests
        server: GlueNailServer = self.server.core
        session = server._new_session()
        session.attach_transport(self.wfile)
        try:
            while not session.closed:
                raw = self.rfile.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    response = error_response(str(exc), kind="protocol")
                else:
                    response = session.dispatch(request)
                session.send_response(response)
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        finally:
            session.release()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    core: "GlueNailServer"


class GlueNailServer:
    """The multi-client query service over one (optionally durable) EDB.

    ``db_dir`` opens a :class:`~repro.txn.store.DurableStore` under that
    directory (with crash recovery); without it the EDB is in-memory but
    still transactional.  ``program`` is Glue-Nail source preloaded into
    every session.  ``port=0`` binds an ephemeral port (see ``.port``).

    ``mvcc=True`` (the default) serves read-only requests from immutable
    published snapshots (see :mod:`repro.mvcc`): readers never touch the
    RWLock, which degenerates to writer-writer serialization; writers
    bracket their mutations in a *write window* and publish atomically on
    release.  ``mvcc=False`` is the lock-serialized baseline.
    """

    def __init__(
        self,
        db_dir: Optional[str] = None,
        program: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        sync: bool = True,
        db: Optional[Database] = None,
        workers: Optional[int] = None,
        batch_mode: str = "columnar",
        mvcc: bool = True,
    ):
        if db is None:
            db = Database(counters=ThreadLocalCounters())
        self.db = db
        # Body-execution mode for every session's system (columnar batch
        # kernels or the row baseline), mirroring the worker-pool sharing.
        self.batch_mode = batch_mode
        # One shared worker pool for every session (partition-parallel
        # evaluation); the server's counters are already thread-local, so
        # adoption is a no-op conversion.
        self.parallel = None
        if workers is not None and workers > 1:
            from repro.par import ParallelContext

            self.parallel = ParallelContext(workers=workers, db=self.db)
        if db_dir is not None:
            from repro.txn.store import DurableStore

            self.store = DurableStore(db_dir, db=self.db, sync=sync)
            self.txn = self.store.txn
        else:
            self.store = None
            self.txn = TransactionManager(self.db)
            self.db.attach_journal(self.txn)
        self.lock = RWLock()
        # The MVCC version store: one per server, shared by every session's
        # SnapshotRouter so all readers pin the same published versions.
        self.mvcc_store = None
        if mvcc:
            from repro.mvcc import VersionStore

            self.mvcc_store = VersionStore(self.db)
        # Test injection point: called (with the session) after a request
        # is classified read-only, before it pins -- the window a
        # conflicting DDL/write can race into (see tests/server).
        self._classify_hook = None
        self.base_program = program or ""
        # One shared system hosts the subscriptions: IDB watches evaluate
        # on it (sessions' private rule sets never leak into each other),
        # and its lazy ``subscriptions`` property is the same manager a
        # base-program ``watch`` declaration registers on -- one manager,
        # never two.
        self.sub_system = GlueNailSystem(db=self.db, batch_mode=batch_mode)
        self.sub_system.store = self.store
        self.sub_system._txn = self.txn
        if self.base_program:
            self.sub_system.load(self.base_program)
            try:
                self.sub_system.compile()  # activates `watch` declarations
            except GlueNailError:
                pass  # sessions surface program errors on first use
        self.subscriptions = self.sub_system.subscriptions
        self.sessions_started = 0
        self._session_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.core = self
        self.host, self.port = self._tcp.server_address[:2]

    def _new_session(self) -> Session:
        with self._session_lock:
            session_id = next(self._session_ids)
            self.sessions_started += 1
        return Session(self, session_id)

    @contextmanager
    def write_window(self):
        """The writer bracket: write lock + MVCC write window.

        Mutations inside run against the live relations (copy-on-write
        keeps pinned snapshots unaffected); on exit the result is
        published as the new read snapshot, then the lock is released --
        so a reader can never pin a half-applied window.
        """
        self.lock.acquire_write()
        if self.mvcc_store is not None:
            self.mvcc_store.begin_window()
        try:
            yield
        finally:
            if self.mvcc_store is not None:
                self.mvcc_store.publish()
            self.lock.release_write()

    # -------------------------------------------------------------- #

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Block serving requests (the CLI entry point)."""
        self._tcp.serve_forever()

    def start(self) -> "GlueNailServer":
        """Serve on a background thread; returns once the socket is live."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="gluenail-server", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving, close the socket, and release the durable store."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.store is not None:
            self.store.close()
            self.store = None
        if self.parallel is not None:
            self.parallel.shutdown()

    def __enter__(self) -> "GlueNailServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
